"""The paper's contribution: per-block-tuned Bayesian passive detection."""

from .aggregation import AggregationPlan, merge_streams_for_plan, plan_aggregation
from .belief import (
    BELIEF_CEIL,
    BELIEF_FLOOR,
    BeliefState,
    guarded_belief_pass,
    vector_belief_pass,
)
from .checkpoint import (
    CheckpointFormatError,
    detector_from_json,
    detector_to_json,
    load_checkpoint,
    save_checkpoint,
)
from .correlation import (
    CorroboratedEvent,
    corroborate_events,
    fuse_beliefs,
    fuse_timelines,
)
from .detector import BlockResult, PassiveDetector, StreamingDetector
from .drift import BlockDrift, DriftVerdict, audit_drift, refresh_model
from .events import RefinementConfig, refine_timeline, states_to_timeline
from .health import (
    BlockDataError,
    DeadLetterEntry,
    DeadLetterRegistry,
    ErrorBudget,
    ErrorBudgetExceeded,
    GuardrailCounters,
    RunHealthReport,
    StageStats,
    inputs_digest,
)
from .history import BlockHistory, train_histories, train_history
from .parameters import (
    DEFAULT_BIN_LADDER,
    BlockParameters,
    HomogeneousPlanner,
    ParameterPlanner,
    TuningPolicy,
)
from .pipeline import PassiveOutagePipeline, PipelineResult, TrainedModel
from .sentinel import SentinelConfig, VantageSentinel, suppress_quarantined
from .serialize import (
    ModelFormatError,
    atomic_write_text,
    load_model,
    model_from_json,
    model_to_json,
    save_model,
)

__all__ = [
    "AggregationPlan",
    "merge_streams_for_plan",
    "plan_aggregation",
    "BELIEF_CEIL",
    "BELIEF_FLOOR",
    "BeliefState",
    "guarded_belief_pass",
    "vector_belief_pass",
    "BlockDataError",
    "DeadLetterEntry",
    "DeadLetterRegistry",
    "ErrorBudget",
    "ErrorBudgetExceeded",
    "GuardrailCounters",
    "RunHealthReport",
    "StageStats",
    "inputs_digest",
    "CorroboratedEvent",
    "corroborate_events",
    "fuse_beliefs",
    "fuse_timelines",
    "BlockResult",
    "PassiveDetector",
    "StreamingDetector",
    "BlockDrift",
    "DriftVerdict",
    "audit_drift",
    "refresh_model",
    "RefinementConfig",
    "refine_timeline",
    "states_to_timeline",
    "BlockHistory",
    "train_histories",
    "train_history",
    "DEFAULT_BIN_LADDER",
    "BlockParameters",
    "HomogeneousPlanner",
    "ParameterPlanner",
    "TuningPolicy",
    "PassiveOutagePipeline",
    "PipelineResult",
    "TrainedModel",
    "SentinelConfig",
    "VantageSentinel",
    "suppress_quarantined",
    "CheckpointFormatError",
    "detector_from_json",
    "detector_to_json",
    "load_checkpoint",
    "save_checkpoint",
    "ModelFormatError",
    "atomic_write_text",
    "load_model",
    "model_from_json",
    "model_to_json",
    "save_model",
]

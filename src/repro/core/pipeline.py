"""End-to-end passive outage pipeline: train -> tune -> detect -> report.

This is the public API most users want::

    pipeline = PassiveOutagePipeline()
    model = pipeline.train(Family.IPV4, per_block_times, 0.0, 86400.0)
    result = pipeline.detect(model, per_block_times, 86400.0, 172800.0)
    for key, block_result in result.blocks.items():
        for event in block_result.events:
            ...

Training learns per-block histories and tunes per-block parameters;
detection runs the vectorised Bayesian filter and (optionally) the
spatial-aggregation fallback for the blocks tuning declared
unmeasurable.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from ..net.addr import Family
from ..obs.metrics import resolve_registry
from ..obs.tracing import resolve_tracer
from ..telescope.records import ObservationBatch
from ..telescope.aggregate import per_block_times
from .aggregation import (
    AggregationPlan,
    merge_streams_for_plan,
    plan_aggregation,
)
from .detector import (
    BlockResult,
    PassiveDetector,
    dead_letter_metric,
    guardrail_metric,
)
from .events import RefinementConfig
from .health import (
    DeadLetterRegistry,
    ErrorBudget,
    ErrorBudgetExceeded,
    GuardrailCounters,
    RunHealthReport,
)
from .history import BlockHistory, train_history
from .parameters import (
    BlockParameters,
    HomogeneousPlanner,
    ParameterPlanner,
    TuningPolicy,
)

__all__ = ["TrainedModel", "PipelineResult", "PassiveOutagePipeline"]


@dataclass
class TrainedModel:
    """Output of the training pass for one family.

    ``dead_letters`` records blocks quarantined during training or
    tuning (poisoned histories, parameter failures); they carry no
    history or parameters and are excluded from detection.  ``health``
    is the training run's :class:`~repro.core.health.RunHealthReport`.
    """

    family: Family
    histories: Dict[int, BlockHistory]
    parameters: Dict[int, BlockParameters]
    train_start: float
    train_end: float
    dead_letters: DeadLetterRegistry = field(
        default_factory=DeadLetterRegistry)
    health: Optional[RunHealthReport] = None

    @property
    def measurable_keys(self) -> List[int]:
        return sorted(k for k, p in self.parameters.items() if p.measurable)

    @property
    def unmeasurable_keys(self) -> List[int]:
        return sorted(k for k, p in self.parameters.items()
                      if not p.measurable)

    def coverage(self) -> float:
        """Fraction of observed blocks that are individually measurable."""
        if not self.parameters:
            return 0.0
        return len(self.measurable_keys) / len(self.parameters)


@dataclass
class PipelineResult:
    """Detection output for one family over one window."""

    family: Family
    start: float
    end: float
    blocks: Dict[int, BlockResult]
    aggregated: Dict[int, BlockResult] = field(default_factory=dict)
    aggregation_plan: Optional[AggregationPlan] = None
    #: blocks quarantined during this detection run (absent from
    #: ``blocks``), plus the run's health accounting.
    dead_letters: DeadLetterRegistry = field(
        default_factory=DeadLetterRegistry)
    health: Optional[RunHealthReport] = None

    @property
    def measurable_count(self) -> int:
        return len(self.blocks)

    @property
    def quarantined_keys(self) -> List[int]:
        return self.dead_letters.keys()

    def blocks_with_outages(self, min_duration: float = 0.0) -> List[int]:
        """Keys of blocks reporting >= 1 outage of the given length."""
        return sorted(
            key for key, result in self.blocks.items()
            if result.timeline.events(min_duration))

    def total_outage_seconds(self, min_duration: float = 0.0,
                             max_duration: float = float("inf")) -> float:
        """Summed outage duration across blocks, filtered by event length."""
        return sum(
            event.duration
            for result in self.blocks.values()
            for event in result.timeline.events()
            if min_duration <= event.duration < max_duration)


class PassiveOutagePipeline:
    """Composable train/detect pipeline with per-block tuning.

    Parameters
    ----------
    policy:
        global tuning policy (bin ladder, target empty-bin probability).
    refinement:
        exact-timestamp edge-refinement configuration.
    homogeneous_bin:
        when set, replaces the per-block tuner with a fixed-bin
        homogeneous planner — the ablation the paper argues against.
    aggregation_levels:
        prefix bits collapsed by the spatial fallback (0 disables it).
    max_quarantine_frac:
        error budget — the largest fraction of attempted blocks that
        may be quarantined before the run fails loudly with
        :class:`~repro.core.health.ErrorBudgetExceeded` (1.0 disables).
    workers:
        when >= 1, train/detect run through the sharded parallel path
        (:mod:`repro.parallel`): the keyspace splits into deterministic
        chunks, each chunk runs in a worker (in-process for 1 worker, a
        spawn-safe process pool above that), and results merge
        bit-for-bit identical to the sequential path.  0 forces the
        sequential path; None (the default) defers to the process-wide
        default set by :func:`repro.parallel.set_default_parallelism`.
    shard_chunk:
        blocks per shard for the parallel path (None picks a default
        that depends only on the population size, never on ``workers``).
    shard_checkpoint_dir:
        when set, the parallel path checkpoints each completed shard
        there, so a killed run resumes recomputing only missing shards.
    supervision:
        a :class:`~repro.parallel.SupervisionPolicy` (or None).  When
        set, the parallel path runs every shard attempt in its own
        supervised child process with a wall-clock deadline and RSS
        ceiling, retries transient crash/hang/OOM failures, and bisects
        poisoned shards down to per-block dead letters instead of dying
        wholesale — see :class:`~repro.parallel.ShardSupervisor`.
        Ignored by the sequential path (``workers=0``).
    """

    def __init__(
        self,
        policy: Optional[TuningPolicy] = None,
        refinement: Optional[RefinementConfig] = None,
        homogeneous_bin: Optional[float] = None,
        aggregation_levels: int = 4,
        learn_diurnal: bool = True,
        keep_belief_traces: bool = False,
        max_quarantine_frac: float = 0.5,
        metrics: Optional[Any] = None,
        tracer: Optional[Any] = None,
        workers: Optional[int] = None,
        shard_chunk: Optional[int] = None,
        shard_checkpoint_dir: Optional[str] = None,
        supervision: Optional[Any] = None,
    ) -> None:
        if workers is None:
            # Imported lazily: repro.parallel imports this module.
            from ..parallel import get_default_parallelism
            workers, default_chunk = get_default_parallelism()
            if shard_chunk is None:
                shard_chunk = default_chunk
        self.workers = workers
        self.shard_chunk = shard_chunk
        self.shard_checkpoint_dir = shard_checkpoint_dir
        # Typed Any to avoid a circular import: repro.parallel imports
        # this module, so the policy class cannot be named here.
        self.supervision = supervision
        self.policy = policy or TuningPolicy()
        self.refinement = refinement or RefinementConfig()
        if homogeneous_bin is not None:
            self.planner: ParameterPlanner = HomogeneousPlanner(
                homogeneous_bin, self.policy)
        else:
            self.planner = ParameterPlanner(self.policy)
        self.aggregation_levels = aggregation_levels
        self.learn_diurnal = learn_diurnal
        self.metrics = resolve_registry(metrics)
        self.tracer = resolve_tracer(tracer)
        self.detector = PassiveDetector(self.refinement, keep_belief_traces,
                                        metrics=self.metrics)
        self.budget = ErrorBudget(max_quarantine_frac)

    def _stage_seconds(self, stage: str, seconds: float) -> None:
        """Record one stage's wall-time in the shared histogram."""
        self.metrics.histogram(
            "pipeline_stage_seconds",
            "Wall-time of each batch pipeline stage, by stage",
            labelnames=("stage",)).labels(stage=stage).observe(seconds)

    # -- training --------------------------------------------------------

    def train(self, family: Family, per_block: Mapping[int, np.ndarray],
              start: float, end: float) -> TrainedModel:
        """Learn histories and tune parameters from a clean window.

        Each block trains and tunes inside a supervised scope: a
        poisoned history (non-finite timestamps, degenerate summaries)
        or a tuning failure quarantines that block into the model's
        dead-letter registry while the rest of the population trains
        normally.  Exceeding the error budget raises
        :class:`~repro.core.health.ErrorBudgetExceeded`.
        """
        if self.workers:
            from ..parallel import sharded_train
            return sharded_train(self, family, per_block, start, end,
                                 checkpoint_dir=self.shard_checkpoint_dir)
        registry = DeadLetterRegistry()
        if self.metrics.enabled:
            registry.bind(dead_letter_metric(self.metrics))
        report = RunHealthReport(
            run="train", dead_letters=registry,
            max_quarantine_frac=self.budget.max_quarantine_frac)

        histories: Dict[int, BlockHistory] = {}
        parameters: Dict[int, BlockParameters] = {}
        with self.tracer.span("train", family=family.name.lower(),
                              blocks=len(per_block)):
            train_stage = report.stage("train")
            clock = _time.perf_counter()
            with self.tracer.span("fit", blocks=len(per_block)):
                for key, times in per_block.items():
                    train_stage.attempted += 1
                    try:
                        histories[key] = train_history(times, start, end,
                                                       self.learn_diurnal)
                        train_stage.succeeded += 1
                    except Exception as error:
                        train_stage.quarantined += 1
                        registry.record("train", key, error, times)
            train_stage.seconds = _time.perf_counter() - clock
            self._stage_seconds("train", train_stage.seconds)

            tune_stage = report.stage("tune")
            clock = _time.perf_counter()
            tune_timer = (self.metrics.histogram(
                "tune_block_seconds",
                "Wall-time of one block's parameter fit (tuning)")
                if self.metrics.enabled else None)
            with self.tracer.span("tune", blocks=len(histories)):
                batch_clock = _time.perf_counter()
                planned, tune_errors = self.planner.plan_batch(histories)
                batch_seconds = _time.perf_counter() - batch_clock
                for key in histories:
                    tune_stage.attempted += 1
                    if key in planned:
                        parameters[key] = planned[key]
                        tune_stage.succeeded += 1
                    else:
                        tune_stage.quarantined += 1
                        registry.record("tune", key, tune_errors[key])
                if tune_timer is not None and tune_stage.succeeded:
                    # Only successful fits are recorded — a population
                    # of fast-failing poisoned blocks must not drag the
                    # histogram down and mask tuning regressions.  The
                    # batched fit is amortised evenly so the histogram
                    # keeps count == successful fits and
                    # sum == tune wall time.
                    share = batch_seconds / tune_stage.succeeded
                    for _ in range(tune_stage.succeeded):
                        tune_timer.observe(share)
            tune_stage.seconds = _time.perf_counter() - clock
            self._stage_seconds("tune", tune_stage.seconds)
        # A block that failed tuning has a history but no parameters;
        # drop the orphan so the model stays internally consistent.
        for key in registry.keys():
            histories.pop(key, None)

        try:
            self.budget.check("train", len(per_block), len(registry))
        except ErrorBudgetExceeded as error:
            report.budget_tripped = True
            error.report = report
            raise
        return TrainedModel(family=family, histories=histories,
                            parameters=parameters,
                            train_start=start, train_end=end,
                            dead_letters=registry, health=report)

    def train_from_batch(self, batch: ObservationBatch, start: float,
                         end: float) -> TrainedModel:
        """Train directly from an :class:`ObservationBatch`."""
        return self.train(batch.family, per_block_times(batch), start, end)

    # -- detection --------------------------------------------------------

    def detect(self, model: TrainedModel,
               per_block: Mapping[int, np.ndarray],
               start: float, end: float) -> PipelineResult:
        """Run detection over ``[start, end)`` with a trained model.

        Per-block faults (poisoned timestamps or counts, degenerate
        parameters, refinement failures) quarantine the offending block
        into ``result.dead_letters``; every other block's result is
        bit-identical to a run without the poison.  The run's health
        accounting lands on ``result.health``, and exceeding the error
        budget raises :class:`~repro.core.health.ErrorBudgetExceeded`.
        """
        if self.workers:
            from ..parallel import sharded_detect
            return sharded_detect(self, model, per_block, start, end,
                                  checkpoint_dir=self.shard_checkpoint_dir)
        registry = DeadLetterRegistry()
        guardrails = GuardrailCounters()
        if self.metrics.enabled:
            registry.bind(dead_letter_metric(self.metrics))
            guardrails.bind(guardrail_metric(self.metrics))
        report = RunHealthReport(
            run="detect", dead_letters=registry, guardrails=guardrails,
            max_quarantine_frac=self.budget.max_quarantine_frac)

        detect_stage = report.stage("detect")
        clock = _time.perf_counter()
        measurable = [key for key, params in model.parameters.items()
                      if params.measurable]
        with self.tracer.span("detect", family=model.family.name.lower(),
                              blocks=len(measurable)):
            blocks = self.detector.detect(
                model.family, per_block, model.histories, model.parameters,
                start, end, registry=registry, guardrails=guardrails)
        detect_stage.seconds = _time.perf_counter() - clock
        detect_stage.attempted = len(measurable)
        detect_stage.succeeded = len(blocks)
        detect_stage.quarantined = len(registry)
        self._stage_seconds("detect", detect_stage.seconds)

        result = PipelineResult(family=model.family, start=start, end=end,
                                blocks=blocks, dead_letters=registry,
                                health=report)
        # Budget is judged on the primary population before the
        # best-effort aggregation fallback runs.
        try:
            self.budget.check("detect", len(measurable), len(registry))
        except ErrorBudgetExceeded as error:
            report.budget_tripped = True
            error.report = report
            raise
        if self.aggregation_levels > 0 and model.unmeasurable_keys:
            aggregate_stage = report.stage("aggregate")
            clock = _time.perf_counter()
            with self.tracer.span("aggregate",
                                  family=model.family.name.lower()):
                self._detect_aggregated(model, per_block, start, end,
                                        result, registry)
            aggregate_stage.seconds = _time.perf_counter() - clock
            aggregate_stage.attempted = len(result.aggregated)
            aggregate_stage.succeeded = len(result.aggregated)
            self._stage_seconds("aggregate", aggregate_stage.seconds)
        return result

    def detect_from_batch(self, model: TrainedModel,
                          batch: ObservationBatch, start: float,
                          end: float) -> PipelineResult:
        return self.detect(model, per_block_times(batch), start, end)

    def _detect_aggregated(self, model: TrainedModel,
                           per_block: Mapping[int, np.ndarray],
                           start: float, end: float,
                           result: PipelineResult,
                           registry: Optional[DeadLetterRegistry] = None,
                           ) -> None:
        """Fallback pass over supernets of the unmeasurable blocks."""
        registry = registry if registry is not None else DeadLetterRegistry()
        plan = plan_aggregation(model.family, model.unmeasurable_keys,
                                self.aggregation_levels)
        if not plan.groups:
            return
        merged = merge_streams_for_plan(plan, per_block)
        # Supernet history: re-train over the training window by merging
        # the members' training estimate — rates add across children.
        # A supernet whose merge or tuning fails is quarantined alone.
        histories: Dict[int, BlockHistory] = {}
        parameters: Dict[int, BlockParameters] = {}
        for super_key, children in plan.groups.items():
            try:
                child_histories = [model.histories[c] for c in children
                                   if c in model.histories]
                histories[super_key] = _merge_histories(child_histories)
                parameters[super_key] = self.planner.plan_block(
                    histories[super_key])
            except Exception as error:
                histories.pop(super_key, None)
                registry.record("aggregate", super_key, error)
        result.aggregated = self.detector.detect(
            model.family, merged, histories, parameters, start, end,
            registry=registry)
        result.aggregation_plan = plan


def _merge_histories(histories: List[BlockHistory]) -> BlockHistory:
    """Combine child histories into a supernet history (rates add)."""
    if not histories:
        raise ValueError("cannot merge zero histories")
    total_rate = sum(h.mean_rate for h in histories)
    total_count = sum(h.observed_count for h in histories)
    span = max(h.training_seconds for h in histories)
    median_gap = 1.0 / total_rate if total_rate > 0 else span
    return BlockHistory(
        mean_rate=total_rate,
        observed_count=total_count,
        training_seconds=span,
        median_gap=median_gap,
        p95_gap=3.0 * median_gap,
        # The children's largest healthy gap upper-bounds the merged
        # stream's, so the gap detector stays conservative after merging.
        max_gap=max(h.max_gap for h in histories),
        burstiness=float(np.mean([h.burstiness for h in histories])),
        diurnal_profile=None,
    )

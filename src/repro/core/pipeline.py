"""End-to-end passive outage pipeline: train -> tune -> detect -> report.

This is the public API most users want::

    pipeline = PassiveOutagePipeline()
    model = pipeline.train(Family.IPV4, per_block_times, 0.0, 86400.0)
    result = pipeline.detect(model, per_block_times, 86400.0, 172800.0)
    for key, block_result in result.blocks.items():
        for event in block_result.events:
            ...

Training learns per-block histories and tunes per-block parameters;
detection runs the vectorised Bayesian filter and (optionally) the
spatial-aggregation fallback for the blocks tuning declared
unmeasurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..net.addr import Family
from ..telescope.records import ObservationBatch
from ..telescope.aggregate import per_block_times
from .aggregation import (
    AggregationPlan,
    merge_streams_for_plan,
    plan_aggregation,
)
from .detector import BlockResult, PassiveDetector
from .events import RefinementConfig
from .history import BlockHistory, train_histories
from .parameters import (
    BlockParameters,
    HomogeneousPlanner,
    ParameterPlanner,
    TuningPolicy,
)

__all__ = ["TrainedModel", "PipelineResult", "PassiveOutagePipeline"]


@dataclass
class TrainedModel:
    """Output of the training pass for one family."""

    family: Family
    histories: Dict[int, BlockHistory]
    parameters: Dict[int, BlockParameters]
    train_start: float
    train_end: float

    @property
    def measurable_keys(self) -> List[int]:
        return sorted(k for k, p in self.parameters.items() if p.measurable)

    @property
    def unmeasurable_keys(self) -> List[int]:
        return sorted(k for k, p in self.parameters.items()
                      if not p.measurable)

    def coverage(self) -> float:
        """Fraction of observed blocks that are individually measurable."""
        if not self.parameters:
            return 0.0
        return len(self.measurable_keys) / len(self.parameters)


@dataclass
class PipelineResult:
    """Detection output for one family over one window."""

    family: Family
    start: float
    end: float
    blocks: Dict[int, BlockResult]
    aggregated: Dict[int, BlockResult] = field(default_factory=dict)
    aggregation_plan: Optional[AggregationPlan] = None

    @property
    def measurable_count(self) -> int:
        return len(self.blocks)

    def blocks_with_outages(self, min_duration: float = 0.0) -> List[int]:
        """Keys of blocks reporting >= 1 outage of the given length."""
        return sorted(
            key for key, result in self.blocks.items()
            if result.timeline.events(min_duration))

    def total_outage_seconds(self, min_duration: float = 0.0,
                             max_duration: float = float("inf")) -> float:
        """Summed outage duration across blocks, filtered by event length."""
        return sum(
            event.duration
            for result in self.blocks.values()
            for event in result.timeline.events()
            if min_duration <= event.duration < max_duration)


class PassiveOutagePipeline:
    """Composable train/detect pipeline with per-block tuning.

    Parameters
    ----------
    policy:
        global tuning policy (bin ladder, target empty-bin probability).
    refinement:
        exact-timestamp edge-refinement configuration.
    homogeneous_bin:
        when set, replaces the per-block tuner with a fixed-bin
        homogeneous planner — the ablation the paper argues against.
    aggregation_levels:
        prefix bits collapsed by the spatial fallback (0 disables it).
    """

    def __init__(
        self,
        policy: Optional[TuningPolicy] = None,
        refinement: Optional[RefinementConfig] = None,
        homogeneous_bin: Optional[float] = None,
        aggregation_levels: int = 4,
        learn_diurnal: bool = True,
        keep_belief_traces: bool = False,
    ) -> None:
        self.policy = policy or TuningPolicy()
        self.refinement = refinement or RefinementConfig()
        if homogeneous_bin is not None:
            self.planner: ParameterPlanner = HomogeneousPlanner(
                homogeneous_bin, self.policy)
        else:
            self.planner = ParameterPlanner(self.policy)
        self.aggregation_levels = aggregation_levels
        self.learn_diurnal = learn_diurnal
        self.detector = PassiveDetector(self.refinement, keep_belief_traces)

    # -- training --------------------------------------------------------

    def train(self, family: Family, per_block: Mapping[int, np.ndarray],
              start: float, end: float) -> TrainedModel:
        """Learn histories and tune parameters from a clean window."""
        histories = train_histories(per_block, start, end,
                                    self.learn_diurnal)
        parameters = self.planner.plan(histories)
        return TrainedModel(family=family, histories=histories,
                            parameters=parameters,
                            train_start=start, train_end=end)

    def train_from_batch(self, batch: ObservationBatch, start: float,
                         end: float) -> TrainedModel:
        """Train directly from an :class:`ObservationBatch`."""
        return self.train(batch.family, per_block_times(batch), start, end)

    # -- detection --------------------------------------------------------

    def detect(self, model: TrainedModel,
               per_block: Mapping[int, np.ndarray],
               start: float, end: float) -> PipelineResult:
        """Run detection over ``[start, end)`` with a trained model."""
        blocks = self.detector.detect(
            model.family, per_block, model.histories, model.parameters,
            start, end)
        result = PipelineResult(family=model.family, start=start, end=end,
                                blocks=blocks)
        if self.aggregation_levels > 0 and model.unmeasurable_keys:
            self._detect_aggregated(model, per_block, start, end, result)
        return result

    def detect_from_batch(self, model: TrainedModel,
                          batch: ObservationBatch, start: float,
                          end: float) -> PipelineResult:
        return self.detect(model, per_block_times(batch), start, end)

    def _detect_aggregated(self, model: TrainedModel,
                           per_block: Mapping[int, np.ndarray],
                           start: float, end: float,
                           result: PipelineResult) -> None:
        """Fallback pass over supernets of the unmeasurable blocks."""
        plan = plan_aggregation(model.family, model.unmeasurable_keys,
                                self.aggregation_levels)
        if not plan.groups:
            return
        merged = merge_streams_for_plan(plan, per_block)
        # Supernet history: re-train over the training window by merging
        # the members' training estimate — rates add across children.
        histories: Dict[int, BlockHistory] = {}
        for super_key, children in plan.groups.items():
            child_histories = [model.histories[c] for c in children
                               if c in model.histories]
            histories[super_key] = _merge_histories(child_histories)
        parameters = self.planner.plan(histories)
        result.aggregated = self.detector.detect(
            model.family, merged, histories, parameters, start, end)
        result.aggregation_plan = plan


def _merge_histories(histories: List[BlockHistory]) -> BlockHistory:
    """Combine child histories into a supernet history (rates add)."""
    if not histories:
        raise ValueError("cannot merge zero histories")
    total_rate = sum(h.mean_rate for h in histories)
    total_count = sum(h.observed_count for h in histories)
    span = max(h.training_seconds for h in histories)
    median_gap = 1.0 / total_rate if total_rate > 0 else span
    return BlockHistory(
        mean_rate=total_rate,
        observed_count=total_count,
        training_seconds=span,
        median_gap=median_gap,
        p95_gap=3.0 * median_gap,
        # The children's largest healthy gap upper-bounds the merged
        # stream's, so the gap detector stays conservative after merging.
        max_gap=max(h.max_gap for h in histories),
        burstiness=float(np.mean([h.burstiness for h in histories])),
        diurnal_profile=None,
    )

"""Outage-event extraction with exact-timestamp edge refinement.

The belief filter yields up/down decisions at bin granularity.  A
bin-edge outage boundary carries the bin size as uncertainty; the
paper's precision advantage comes from refining the boundary with the
*exact timestamps* of the surrounding packets:

* the outage cannot have started before the **last packet** seen prior
  to the quiet run — the refined start is that timestamp plus a small
  guard (the block's expected inter-arrival gap);
* the outage ends no later than the **first packet** after the run —
  that arrival is direct evidence the block is back.

For dense blocks the guard is sub-second and the refined edges land
within one inter-arrival gap of truth, which is what lets the system
beat Trinocular's ±330 s.  For sparse blocks the backfill is clamped so
an ordinary long inter-arrival gap ahead of a detected outage does not
balloon the reported duration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..telescope.aggregate import BinGrid
from ..timeline import OutageEvent, Timeline

__all__ = ["RefinementConfig", "states_to_timeline", "refine_timeline",
           "gap_outages"]


@dataclass(frozen=True)
class RefinementConfig:
    """Edge-refinement knobs.

    ``guard_gaps`` scales the forward guard after the last packet (in
    units of the block's mean inter-arrival gap): the block most likely
    died somewhere inside the gap, not at the instant of its last
    packet.  ``max_backfill_bins`` caps how far an outage start may be
    pulled back before the first silent bin.
    """

    guard_gaps: float = 1.0
    max_backfill_bins: float = 1.0
    min_event_seconds: float = 0.0


def states_to_timeline(states: np.ndarray, grid: BinGrid) -> Timeline:
    """Convert one block's boolean up-state vector into a timeline."""
    states = np.asarray(states, dtype=bool)
    if states.shape != (grid.n_bins,):
        raise ValueError(
            f"states length {states.shape} does not match grid {grid.n_bins}")
    down: List[Tuple[float, float]] = []
    run_start: Optional[int] = None
    for index, is_up in enumerate(states):
        if not is_up and run_start is None:
            run_start = index
        elif is_up and run_start is not None:
            down.append((grid.bin_start(run_start), grid.bin_start(index)))
            run_start = None
    if run_start is not None:
        down.append((grid.bin_start(run_start), grid.end))
    return Timeline(grid.start, grid.end, down)


def refine_timeline(
    timeline: Timeline,
    times: np.ndarray,
    mean_rate: float,
    bin_seconds: float,
    config: Optional[RefinementConfig] = None,
) -> Timeline:
    """Refine a bin-granularity timeline against exact packet times.

    Parameters
    ----------
    timeline:
        bin-granularity output of :func:`states_to_timeline`.
    times:
        the block's sorted arrival timestamps over the same span.
    mean_rate:
        the block's trained mean rate (sets the start guard).
    bin_seconds:
        the block's tuned bin size (sets the backfill clamp).
    """
    config = config or RefinementConfig()
    times = np.asarray(times, dtype=float)
    mean_gap = 1.0 / mean_rate if mean_rate > 0 else bin_seconds
    guard = min(config.guard_gaps * mean_gap, bin_seconds)
    max_backfill = config.max_backfill_bins * bin_seconds

    refined: List[Tuple[float, float]] = []
    for coarse_start, coarse_end in timeline.down_intervals:
        # --- start edge: last packet before the quiet run -------------
        before = int(np.searchsorted(times, coarse_start, side="left"))
        if before > 0:
            last_packet = float(times[before - 1])
            start = max(last_packet + guard, coarse_start - max_backfill)
            start = min(start, coarse_start + bin_seconds)  # sanity clamp
        else:
            start = coarse_start
        # --- end edge: first packet after the quiet run -----------------
        after = int(np.searchsorted(times, coarse_end - bin_seconds,
                                    side="left"))
        # The detector flips up in the first bin containing traffic, so
        # the recovery packet may fall just *inside* the final down bin's
        # successor; look from one bin before the coarse end.
        while after < times.size and times[after] < start:
            after += 1
        if after < times.size:
            # The first packet trails the true recovery by one forward
            # recurrence time (~1/rate); subtract it so durations are
            # unbiased rather than systematically long.
            end = float(times[after]) - guard
            end = max(end, start)
            end = min(end, coarse_end + bin_seconds)
        else:
            end = coarse_end
        if end > start:
            refined.append((start, end))

    result = Timeline(timeline.start, timeline.end, refined)
    if config.min_event_seconds > 0:
        result = result.drop_short_outages(config.min_event_seconds)
    return result


def gap_outages(
    times: np.ndarray,
    gap_threshold: float,
    start: float,
    end: float,
    guard: float,
) -> List[Tuple[float, float]]:
    """Outage intervals from inter-arrival gaps alone.

    Any silence longer than ``gap_threshold`` (trained as a multiple of
    the block's largest healthy gap) is an outage whose edges are the
    *exact timestamps* of the flanking packets: down from ``last packet
    + guard`` until the next packet.  This is the sub-bin detection path
    that lets dense blocks resolve 5-minute outages regardless of bin
    alignment.  Leading and trailing silences against the window edges
    are included.
    """
    if not np.isfinite(gap_threshold) or gap_threshold <= 0:
        return []
    times = np.asarray(times, dtype=float)
    times = times[(times >= start) & (times < end)]
    guard = min(guard, gap_threshold / 2.0)
    intervals: List[Tuple[float, float]] = []
    if times.size == 0:
        if end - start > gap_threshold:
            intervals.append((start, end))
        return intervals
    if times[0] - start > gap_threshold:
        intervals.append((start, float(times[0]) - guard))
    if times.size >= 2:
        gaps = np.diff(times)
        for index in np.flatnonzero(gaps > gap_threshold):
            # Edges are exact packet timestamps corrected by one forward
            # recurrence time on each side, so durations are unbiased.
            intervals.append((float(times[index]) + guard,
                              float(times[index + 1]) - guard))
    if end - times[-1] > gap_threshold:
        intervals.append((float(times[-1]) + guard, end))
    return intervals


def events_from_states(
    states: np.ndarray,
    grid: BinGrid,
    times: np.ndarray,
    mean_rate: float,
    config: Optional[RefinementConfig] = None,
) -> List[OutageEvent]:
    """Convenience: states -> refined timeline -> event list."""
    coarse = states_to_timeline(states, grid)
    refined = refine_timeline(coarse, times, mean_rate, grid.bin_seconds,
                              config)
    return refined.events()

"""Checkpoint/restore for the streaming detector.

A live detector accumulates state it cannot cheaply rebuild: per-block
beliefs, hysteresis decisions, partial-bin counts, exact last-packet
timestamps, and the transition log.  Losing that state to a process
crash forces a retrain and erases in-flight outage evidence.  This
module snapshots the whole of :class:`~repro.core.detector.
StreamingDetector` (including an attached vantage sentinel) to a
versioned JSON document, following the :mod:`repro.core.serialize`
conventions: safe-to-load JSON rather than pickle, explicit format
versioning, and atomic write-temp-then-rename persistence so a crash
*during* checkpointing leaves the previous checkpoint intact.

The restore guarantee is exact: a detector restored from a checkpoint
and fed the remainder of a stream produces bit-for-bit the same events
as an uninterrupted run (pinned by the fault-injection suite).  The
trained model travels separately (it is day-scale state, already
persisted by :func:`repro.core.serialize.save_model`); the checkpoint
references it only through block keys and validates consistency on
load.
"""

from __future__ import annotations

import json
import os
import time as _time
from typing import Any, Callable, Dict, Mapping, Optional, Union

from ..net.addr import Family
from ..obs.metrics import resolve_registry
from .belief import BeliefState
from .detector import StreamingDetector
from .events import RefinementConfig
from .health import DeadLetterRegistry, ErrorBudget, GuardrailCounters
from .history import BlockHistory
from .parameters import BlockParameters
from .pipeline import TrainedModel
from .sentinel import VantageSentinel
from .serialize import (atomic_write_text, model_blocks_from_dict,
                        model_blocks_to_dict)

__all__ = ["CHECKPOINT_FORMAT_VERSION", "CheckpointFormatError",
           "detector_to_json", "detector_from_json",
           "parse_checkpoint_document", "apply_checkpoint_state",
           "save_checkpoint",
           "load_checkpoint", "save_checkpoint_rotated",
           "load_checkpoint_rotated",
           "SHARD_CHECKPOINT_FORMAT_VERSION",
           "write_shard_manifest", "read_shard_manifest",
           "save_shard_result", "load_shard_result",
           "load_shard_document", "discard_shard_result",
           "prune_stale_shards"]

CHECKPOINT_FORMAT_VERSION = 1

#: Format version of a sharded-run checkpoint directory (manifest plus
#: one JSON document per completed shard).
SHARD_CHECKPOINT_FORMAT_VERSION = 1


class CheckpointFormatError(ValueError):
    """Raised when a checkpoint document is malformed, from a newer
    format, or inconsistent with the model it is restored against."""


def _finite_or_none(value: Optional[float]) -> Optional[float]:
    return None if value is None else float(value)


def detector_to_json(detector: StreamingDetector,
                     extra: Optional[Dict[str, Any]] = None) -> str:
    """Serialise a streaming detector's mutable state to JSON.

    ``extra`` is an opaque JSON-able payload stored alongside the
    detector state and surfaced on restore as ``restored_extra`` — the
    hook the partitioned live worker uses to checkpoint companion state
    (reorder buffer, drift auditor, replay cursor) in the *same* atomic
    write, so detector and companions can never disagree about where
    the stream stopped.
    """
    refinement = detector.refinement
    blocks: Dict[str, Any] = {}
    for key, state in detector._states.items():
        blocks[str(key)] = {
            "belief": state.belief.belief,
            "is_up": state.belief.is_up,
            "guardrail_trips": state.belief.guardrail_trips,
            "next_bin_end": state.next_bin_end,
            "bin_count": state.bin_count,
            "last_packet": _finite_or_none(state.last_packet),
            "first_packet_this_bin": _finite_or_none(
                state.first_packet_this_bin),
            "transitions": [[time, up] for time, up in state.transitions],
        }
    document = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "family": int(detector.family),
        "start": detector.start,
        "last_time": detector.last_time,
        "refinement": {
            "guard_gaps": refinement.guard_gaps,
            "max_backfill_bins": refinement.max_backfill_bins,
            "min_event_seconds": refinement.min_event_seconds,
        },
        "blocks": blocks,
        "sentinel": (detector.sentinel.to_dict()
                     if detector.sentinel is not None else None),
        # Fault-containment state: quarantined blocks must stay
        # quarantined across a restart (their in-memory evidence is
        # gone; resurrecting them would fabricate clean-looking
        # verdicts), and guardrail accounting survives with them.
        "dead_letters": detector.dead_letters.as_dict(),
        "guardrails": detector.guardrails.as_dict(),
        "max_quarantine_frac": detector.budget.max_quarantine_frac,
        "windows_closed": detector.windows_closed,
    }
    # Drift hot-swap state (defaulted keys, format stays version 1):
    # retuned blocks carry their *current* histories/parameters — the
    # supplied model still has the originals, so restoring without
    # these would silently revert every hot-swap — and swaps staged but
    # not yet applied survive to land at their bin boundary.
    retuned = detector.retuned
    if retuned:
        document["retuned"] = model_blocks_to_dict(
            {key: pair[0] for key, pair in retuned.items()},
            {key: pair[1] for key, pair in retuned.items()})
    pending = detector.pending_swaps
    if pending:
        document["pending_swaps"] = model_blocks_to_dict(
            {key: pair[0] for key, pair in pending.items()},
            {key: pair[1] for key, pair in pending.items()})
    if extra is not None:
        document["extra"] = extra
    # Per-source fusion state (defaulted key, format stays version 1):
    # a fused detector carries one sentinel + reliability monitor per
    # vantage and per-block per-source bin counts.  Duck-typed so this
    # module needs no import of the fusion package; plain detectors
    # write byte-identical documents.
    fusion_state = getattr(detector, "checkpoint_fusion_state", None)
    if fusion_state is not None:
        document["fusion"] = fusion_state()
    # Telemetry rides along (defaulted key, format stays version 1):
    # cumulative counters survive kill-and-resume instead of resetting
    # to zero.  Omitted entirely when telemetry is off, so documents
    # from uninstrumented runs are byte-identical to older builds.
    if detector.metrics.enabled:
        document["metrics"] = detector.metrics.snapshot()
    return json.dumps(document, indent=1)


def detector_from_json(
    text: str,
    histories: Mapping[int, BlockHistory],
    parameters: Mapping[int, BlockParameters],
    metrics: Optional[Any] = None,
) -> StreamingDetector:
    """Rebuild a streaming detector from checkpoint JSON plus its model.

    Blocks present in the model but absent from the checkpoint start
    fresh (new blocks can join between checkpoints); blocks present in
    the checkpoint but unknown to the model are rejected — restoring
    against the wrong model silently corrupts every verdict.

    When the restoring process has telemetry on (``metrics`` or the
    process default registry), the checkpoint's embedded metrics
    snapshot — if any — is loaded into it, so cumulative counters
    continue from where the killed process left off.
    """
    document = parse_checkpoint_document(text)
    try:
        family = Family(document["family"])
        refinement = RefinementConfig(**document["refinement"])
        sentinel_data = document.get("sentinel")
        sentinel = (None if sentinel_data is None
                    else VantageSentinel.from_dict(sentinel_data))
        restore_clock = _time.perf_counter()
        detector = StreamingDetector(
            family, histories, parameters, float(document["start"]),
            refinement=refinement, sentinel=sentinel,
            max_quarantine_frac=float(
                document.get("max_quarantine_frac",
                             ErrorBudget().max_quarantine_frac)),
            metrics=resolve_registry(metrics))
        apply_checkpoint_state(detector, document,
                               restore_clock=restore_clock)
        return detector
    except CheckpointFormatError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointFormatError(
            f"malformed checkpoint document: {error}") from None


def parse_checkpoint_document(text: str) -> Dict[str, Any]:
    """Parse and version-check a v1 checkpoint document."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise CheckpointFormatError(f"not valid JSON: {error}") from None
    if not isinstance(document, dict):
        raise CheckpointFormatError(
            "checkpoint document must be a JSON object")
    version = document.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointFormatError(
            f"unsupported checkpoint format version {version!r} "
            f"(this build reads {CHECKPOINT_FORMAT_VERSION})")
    return document


def apply_checkpoint_state(detector: StreamingDetector,
                           document: Dict[str, Any],
                           restore_clock: Optional[float] = None) -> None:
    """Overwrite a freshly-constructed detector with checkpointed state.

    Shared by :func:`detector_from_json` and the fusion package's fused
    restore (which constructs its own detector subclass around the
    fused model, then applies the common state here).  The caller must
    have built ``detector`` against the same model the checkpoint was
    written with; per-block entries unknown to the model raise.
    """
    if restore_clock is None:
        restore_clock = _time.perf_counter()
    detector._last_time = float(document["last_time"])
    # Checkpoints from before fault containment lack these keys;
    # default to empty so they still load (format stays version 1).
    detector.dead_letters = DeadLetterRegistry.from_dict(
        document.get("dead_letters", []))
    detector.guardrails = GuardrailCounters.from_dict(
        document.get("guardrails", {}))
    for key in detector.dead_letters.keys():
        # Quarantined blocks must not restart fresh: their evidence
        # is gone and a fresh state would fabricate clean verdicts.
        detector._states.pop(key, None)
    detector.windows_closed = int(document.get("windows_closed", 0))
    detector.restored_extra = document.get("extra")
    # Re-apply hot-swapped models *before* the blocks loop: the
    # constructor installed the supplied (pre-drift) model, and the
    # loop below then overwrites the belief numbers and bin cursor,
    # so order here means a retuned block resumes with its retuned
    # parameters and its checkpointed belief — exactly the state it
    # was killed with.
    retuned_doc = document.get("retuned")
    if retuned_doc:
        r_histories, r_parameters = model_blocks_from_dict(retuned_doc)
        for key in sorted(r_parameters):
            state = detector._states.get(key)
            if state is None:
                continue
            params = r_parameters[key]
            state.params = params
            state.history = r_histories[key]
            state.belief = BeliefState(params)
            detector.histories[key] = r_histories[key]
            detector._retuned[key] = (r_histories[key], params)
    pending_doc = document.get("pending_swaps")
    if pending_doc:
        p_histories, p_parameters = model_blocks_from_dict(pending_doc)
        detector._pending_swaps = {
            key: (p_histories[key], p_parameters[key])
            for key in sorted(p_parameters)
            if key in detector._states}
    for key_text, entry in document["blocks"].items():
        key = int(key_text)
        state = detector._states.get(key)
        if state is None:
            if key in detector.dead_letters:
                continue
            raise CheckpointFormatError(
                f"checkpoint block {key:#x} is not a measurable "
                f"block of the supplied model")
        state.belief.belief = float(entry["belief"])
        state.belief.is_up = bool(entry["is_up"])
        state.belief.guardrail_trips = int(
            entry.get("guardrail_trips", 0))
        state.next_bin_end = float(entry["next_bin_end"])
        state.bin_count = int(entry["bin_count"])
        last_packet = entry.get("last_packet")
        state.last_packet = (None if last_packet is None
                             else float(last_packet))
        first = entry.get("first_packet_this_bin")
        state.first_packet_this_bin = (None if first is None
                                       else float(first))
        state.transitions = [(float(time), bool(up))
                             for time, up in entry["transitions"]]
    # The restore rewrote per-block params/histories in place; any
    # columnar cohorts built against the pre-restore model are stale.
    invalidate = getattr(detector, "_invalidate_cohorts", None)
    if invalidate is not None:
        invalidate()
    if detector.metrics.enabled:
        snapshot = document.get("metrics")
        if snapshot is not None:
            detector.metrics.restore(snapshot)
        # Rebind the restored health registries to the (restored)
        # metric series.  Backfill only when the checkpoint carried
        # no snapshot — a snapshot already counts those entries, so
        # backfilling again would double them.
        detector._register_metrics(backfill=snapshot is None)
        detector.metrics.histogram(
            "checkpoint_restore_seconds",
            "Wall-time of one checkpoint restore").observe(
                _time.perf_counter() - restore_clock)


PathLike = Union[str, "Any"]


def save_checkpoint(detector: StreamingDetector, path: PathLike,
                    extra: Optional[Dict[str, Any]] = None) -> None:
    """Atomically persist a detector checkpoint to ``path``."""
    clock = (_time.perf_counter() if detector.metrics.enabled else None)
    atomic_write_text(path, detector_to_json(detector, extra=extra))
    if clock is not None:
        detector.metrics.histogram(
            "checkpoint_save_seconds",
            "Wall-time of one atomic checkpoint write").observe(
                _time.perf_counter() - clock)
        detector.metrics.counter(
            "checkpoints_saved_total", "Checkpoints written").inc()


def _generation_path(base: str, generation: int) -> str:
    return base if generation == 0 else f"{base}.{generation}"


def save_checkpoint_rotated(detector: StreamingDetector, path: PathLike,
                            keep: int = 3,
                            extra: Optional[Dict[str, Any]] = None) -> None:
    """Persist a checkpoint, keeping the last ``keep`` generations.

    ``path`` is always the newest generation; older ones shift to
    ``path.1`` … ``path.{keep-1}`` and the oldest is dropped.  The
    rotation happens *before* the atomic write, so at every instant at
    least one complete previous generation exists on disk — a crash
    mid-save (or a save that lands corrupt for any reason outside the
    rename's atomicity, e.g. later bit rot) can never leave a partition
    with zero restorable state.
    """
    if keep < 1:
        raise ValueError("keep must be >= 1")
    base = os.fspath(path)
    for generation in range(keep - 1, 0, -1):
        try:
            os.replace(_generation_path(base, generation - 1),
                       _generation_path(base, generation))
        except OSError:
            pass  # newer generation absent (first saves): nothing to shift
    save_checkpoint(detector, base, extra=extra)


def load_checkpoint_rotated(path: PathLike, model: "TrainedModel",
                            metrics: Optional[Any] = None,
                            keep: int = 3,
                            loader: Optional[Callable[[str],
                                                      StreamingDetector]]
                            = None) -> StreamingDetector:
    """Restore from the newest loadable checkpoint generation.

    Tries ``path``, then ``path.1`` … ``path.{keep-1}``; a missing or
    corrupt generation falls through to the next-older one (the
    tolerance :func:`load_shard_document` gives cached shards, applied
    to the rotation chain).  Raises :class:`CheckpointFormatError` only
    when *no* generation is restorable.
    """
    base = os.fspath(path)
    last_error: Optional[Exception] = None
    for generation in range(max(1, keep)):
        candidate = _generation_path(base, generation)
        try:
            return load_checkpoint(candidate, model, metrics=metrics,
                                   loader=loader)
        except FileNotFoundError:
            continue
        except (OSError, CheckpointFormatError) as error:
            last_error = error
            continue
    if last_error is not None:
        raise CheckpointFormatError(
            f"no restorable checkpoint generation at {base} "
            f"(newest failure: {last_error})") from last_error
    raise FileNotFoundError(base)


def _unit_name(unit: Union[int, str]) -> str:
    """Canonical file-name stem of one execution unit.

    Plain shard indices render as ``00003``; supervised bisection
    lineage ids (``"00003.0.1"``) pass through unchanged, so a root
    unit and its legacy-written shard file share a name.
    """
    return unit if isinstance(unit, str) else f"{unit:05d}"


def _shard_path(directory: PathLike, unit: Union[int, str]) -> str:
    return os.path.join(os.fspath(directory),
                        f"shard-{_unit_name(unit)}.json")


def write_shard_manifest(directory: PathLike,
                         manifest: Dict[str, Any]) -> None:
    """Atomically persist a sharded run's plan manifest.

    The manifest identifies the plan (stage, window, chunking, and a
    digest of the block keyspace) so a resume can tell cached shard
    results from stale ones left by a differently-planned earlier run.
    """
    document = dict(manifest)
    document["format_version"] = SHARD_CHECKPOINT_FORMAT_VERSION
    os.makedirs(os.fspath(directory), exist_ok=True)
    atomic_write_text(os.path.join(os.fspath(directory), "manifest.json"),
                      json.dumps(document, indent=1))


def read_shard_manifest(directory: PathLike) -> Optional[Dict[str, Any]]:
    """The manifest of a sharded checkpoint directory, or None.

    Missing, unreadable, or future-versioned manifests all read as
    None — resume is best-effort, and "recompute everything" is always
    a correct answer.
    """
    path = os.path.join(os.fspath(directory), "manifest.json")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(document, dict):
        return None
    if document.get("format_version") != SHARD_CHECKPOINT_FORMAT_VERSION:
        return None
    return document


def save_shard_result(directory: PathLike, index: Union[int, str],
                      document: Dict[str, Any]) -> None:
    """Atomically persist one completed shard's result document.

    Written as each shard finishes, so a killed run resumes with every
    *completed* shard served from disk and only the remainder
    recomputed.  Atomicity matters doubly here: a torn shard file would
    otherwise poison the resume that is supposed to rescue the run.
    """
    os.makedirs(os.fspath(directory), exist_ok=True)
    atomic_write_text(_shard_path(directory, index),
                      json.dumps(document, indent=1))


def load_shard_document(directory: PathLike, unit: Union[int, str],
                        ) -> "tuple[str, Optional[Dict[str, Any]]]":
    """One cached shard document with its read status.

    Returns ``(status, document)`` where status is ``"ok"`` (document
    parsed), ``"missing"`` (no such file — the shard was simply never
    completed), or ``"corrupt"`` (a file *exists* but cannot be parsed
    — a torn write or bit rot).  The distinction matters: a missing
    shard is the normal resume case, while a corrupt one is an
    infrastructure fault the caller should count
    (``shard_cache_corrupt_total``) and delete so the resume rewrites
    it instead of tripping over it forever.
    """
    path = _shard_path(directory, unit)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        return "missing", None
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return "corrupt", None
    if not isinstance(document, dict):
        return "corrupt", None
    return "ok", document


def discard_shard_result(directory: PathLike,
                         unit: Union[int, str]) -> None:
    """Best-effort removal of one cached shard file (corrupt/stale)."""
    try:
        os.remove(_shard_path(directory, unit))
    except OSError:
        pass


def prune_stale_shards(directory: PathLike, digest: str) -> int:
    """Delete cached shard files that do not belong to ``digest``.

    A checkpoint directory reused across differently-planned runs
    accumulates ``shard-*.json`` files the new plan can never read
    (their ``plan_digest`` mismatches, or they are unparseable with no
    attributable plan at all) — without pruning they sit on disk
    forever.  Called at plan time; returns the number removed.  The
    manifest itself is left alone (the caller rewrites it).
    """
    try:
        names = os.listdir(os.fspath(directory))
    except OSError:
        return 0
    removed = 0
    for name in sorted(names):
        if not (name.startswith("shard-") and name.endswith(".json")):
            continue
        path = os.path.join(os.fspath(directory), name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            stale = (not isinstance(document, dict)
                     or document.get("plan_digest") != digest)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            stale = True
        if stale:
            try:
                os.remove(path)
                removed += 1
            except OSError:
                pass
    return removed


def load_shard_result(directory: PathLike,
                      index: Union[int, str]) -> Optional[Dict[str, Any]]:
    """One shard's cached result document, or None when absent/corrupt.

    Legacy accessor that flattens the missing/corrupt distinction; new
    callers should prefer :func:`load_shard_document` so corruption can
    be counted and cleaned up.
    """
    return load_shard_document(directory, index)[1]


def load_checkpoint(path: PathLike, model: TrainedModel,
                    metrics: Optional[Any] = None,
                    loader: Optional[Callable[[str], StreamingDetector]]
                    = None) -> StreamingDetector:
    """Restore a detector from ``path`` against a trained model.

    The checkpoint's address family must match the model's.  ``loader``
    overrides the document-to-detector step (the fused live path passes
    a closure over :func:`repro.fusion.fused_detector_from_json`);
    family validation is then the loader's job.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if loader is not None:
        return loader(text)
    detector = detector_from_json(text, model.histories, model.parameters,
                                  metrics=metrics)
    if detector.family is not model.family:
        raise CheckpointFormatError(
            f"checkpoint family {detector.family} does not match model "
            f"family {model.family}")
    return detector

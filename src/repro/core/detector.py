"""The passive outage detector: batch (vectorised) and streaming forms.

:class:`PassiveDetector` is the batch engine behind all experiments: it
takes trained histories plus tuned per-block parameters, groups blocks
by their tuned bin size, filters each group with one vectorised belief
pass, and emits refined per-block timelines.

:class:`StreamingDetector` is the deployment shape: it consumes a live,
time-ordered observation stream and emits up/down transitions with the
same refinement, using the scalar :class:`~repro.core.belief.BeliefState`
per block.  Both paths share parameters and likelihoods, and the test
suite pins them to identical decisions on identical input.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..net.addr import Family
from ..telescope.aggregate import BinGrid, binned_counts
from ..telescope.records import Observation
from ..timeline import OutageEvent, Timeline
from .belief import BeliefState, vector_belief_pass
from .events import (
    RefinementConfig,
    gap_outages,
    refine_timeline,
    states_to_timeline,
)
from .history import BlockHistory
from .parameters import BlockParameters
from .sentinel import VantageSentinel, suppress_quarantined

__all__ = ["BlockResult", "PassiveDetector", "StreamingDetector"]


@dataclass
class BlockResult:
    """Detection output for one block."""

    key: int
    family: Family
    params: BlockParameters
    history: BlockHistory
    timeline: Timeline
    coarse_timeline: Timeline
    belief_trace: Optional[np.ndarray] = None
    #: feed-quarantine windows (observer unhealthy) overlapping this
    #: block's span; down-time inside them was retracted.
    quarantined: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def events(self) -> List[OutageEvent]:
        return self.timeline.events()

    @property
    def measurable(self) -> bool:
        return self.params.measurable


class PassiveDetector:
    """Vectorised batch detection over a trained population."""

    def __init__(self, refinement: Optional[RefinementConfig] = None,
                 keep_belief_traces: bool = False) -> None:
        self.refinement = refinement or RefinementConfig()
        self.keep_belief_traces = keep_belief_traces

    def detect(
        self,
        family: Family,
        per_block: Mapping[int, np.ndarray],
        histories: Mapping[int, BlockHistory],
        parameters: Mapping[int, BlockParameters],
        start: float,
        end: float,
    ) -> Dict[int, BlockResult]:
        """Detect outages for every *measurable* block.

        ``per_block`` maps block key -> sorted arrival times covering
        the detection window ``[start, end)``; blocks present in
        ``parameters`` but missing from ``per_block`` are treated as
        silent for the whole window (which, for a measurable block, is
        one long outage).
        """
        groups: Dict[float, List[int]] = defaultdict(list)
        for key, params in parameters.items():
            if params.measurable:
                groups[params.bin_seconds].append(key)

        results: Dict[int, BlockResult] = {}
        for bin_seconds, keys in groups.items():
            keys.sort()
            grid = BinGrid(start, end, bin_seconds)
            counts = binned_counts(keys, per_block, grid)
            p_empty, noise, prior_down, prior_up = self._parameter_vectors(
                keys, parameters)
            p_empty_input: np.ndarray = p_empty
            if any(histories[key].diurnal_profile is not None
                   for key in keys):
                # Diurnal-aware likelihood: per-(block, bin) empty-bin
                # probability so nightly lulls stop counting as evidence.
                edges = grid.edges()
                p_empty_input = np.empty((len(keys), grid.n_bins))
                for row, key in enumerate(keys):
                    rates = histories[key].likelihood_rates(edges)
                    p_empty_input[row] = np.minimum(
                        np.exp(-rates * bin_seconds), 1.0 - 1e-9)
            states, beliefs = vector_belief_pass(
                counts, p_empty_input, noise, prior_down, prior_up,
                down_threshold=parameters[keys[0]].down_threshold,
                up_threshold=parameters[keys[0]].up_threshold,
                return_beliefs=self.keep_belief_traces)
            for row, key in enumerate(keys):
                times = per_block.get(key, np.empty(0))
                coarse = states_to_timeline(states[row], grid)
                refined = refine_timeline(
                    coarse, times, histories[key].mean_rate, bin_seconds,
                    self.refinement)
                params = parameters[key]
                mean_gap = (1.0 / histories[key].mean_rate
                            if histories[key].mean_rate > 0 else bin_seconds)
                gaps = gap_outages(
                    times, params.gap_threshold_seconds, start, end,
                    guard=self.refinement.guard_gaps * mean_gap)
                if gaps:
                    refined = Timeline(start, end,
                                       refined.down_intervals + gaps)
                results[key] = BlockResult(
                    key=key,
                    family=family,
                    params=parameters[key],
                    history=histories[key],
                    timeline=refined,
                    coarse_timeline=coarse,
                    belief_trace=(beliefs[row] if beliefs is not None
                                  else None),
                )
        return results

    @staticmethod
    def _parameter_vectors(keys: List[int],
                           parameters: Mapping[int, BlockParameters]
                           ) -> Tuple[np.ndarray, np.ndarray,
                                      np.ndarray, np.ndarray]:
        p_empty = np.array([parameters[k].p_empty_up for k in keys])
        noise = np.array([parameters[k].noise_nonempty for k in keys])
        prior_down = np.array([parameters[k].prior_down for k in keys])
        prior_up = np.array([parameters[k].prior_up_recovery for k in keys])
        return p_empty, noise, prior_down, prior_up


@dataclass
class _StreamBlockState:
    """Streaming bookkeeping for one block."""

    params: BlockParameters
    history: BlockHistory
    belief: BeliefState
    next_bin_end: float
    bin_count: int = 0
    last_packet: Optional[float] = None
    first_packet_this_bin: Optional[float] = None
    transitions: List[Tuple[float, bool]] = field(default_factory=list)


class StreamingDetector:
    """Online detector over a time-ordered observation stream.

    Typical use::

        detector = StreamingDetector(family, histories, parameters, start)
        for observation in stream:
            detector.observe(observation)
        results = detector.finalize(end)

    ``observe`` must be called in non-decreasing time order (a merged
    capture stream already is; a noisy feed becomes one through
    :class:`repro.telescope.reorder.ReorderBuffer`).  Between packets,
    :meth:`advance` may be called with the wall clock so silent blocks
    are judged promptly; the batch-equivalence guarantee holds either
    way because ``finalize`` flushes every pending bin.

    An optional :class:`~repro.core.sentinel.VantageSentinel` guards
    against observer-side failures: it sees every observation (any
    family, any block — feed health is a property of the tap, not the
    population), and ``finalize`` retracts per-block down-time that
    falls inside its quarantine windows.
    """

    def __init__(
        self,
        family: Family,
        histories: Mapping[int, BlockHistory],
        parameters: Mapping[int, BlockParameters],
        start: float,
        refinement: Optional[RefinementConfig] = None,
        sentinel: Optional[VantageSentinel] = None,
    ) -> None:
        self.family = family
        self.start = float(start)
        self.refinement = refinement or RefinementConfig()
        self.sentinel = sentinel
        self.histories = dict(histories)
        self._states: Dict[int, _StreamBlockState] = {}
        self._last_time = float(start)
        for key, params in parameters.items():
            if not params.measurable:
                continue
            self._states[key] = _StreamBlockState(
                params=params,
                history=self.histories[key],
                belief=BeliefState(params),
                next_bin_end=self.start + params.bin_seconds,
            )

    @property
    def last_time(self) -> float:
        """High-water mark of the stream clock (observe/advance)."""
        return self._last_time

    def observe(self, observation: Observation) -> None:
        """Feed one observation (must be time-ordered)."""
        if observation.time < self._last_time - 1e-9:
            raise ValueError(
                f"stream went backwards: {observation.time} after "
                f"{self._last_time}")
        self._last_time = max(self._last_time, observation.time)
        if self.sentinel is not None:
            self.sentinel.observe(observation.time)
        if observation.family is not self.family:
            return
        state = self._states.get(observation.block_key)
        if state is None:
            return
        self._advance_block(state, observation.time)
        # Gap detector: a silence longer than the trained threshold is an
        # outage bounded by exact packet times, regardless of bin state.
        threshold = state.params.gap_threshold_seconds
        if (state.last_packet is not None
                and observation.time - state.last_packet > threshold):
            mean_gap = (1.0 / state.history.mean_rate
                        if state.history.mean_rate > 0
                        else state.params.bin_seconds)
            guard = min(self.refinement.guard_gaps * mean_gap,
                        threshold / 2.0)
            state.transitions.append((state.last_packet + guard, False))
            state.transitions.append((observation.time - guard, True))
        if state.first_packet_this_bin is None:
            state.first_packet_this_bin = observation.time
        state.bin_count += 1
        state.last_packet = observation.time

    def advance(self, now: float) -> None:
        """Flush every block's complete bins up to wall-clock ``now``."""
        self._last_time = max(self._last_time, now)
        if self.sentinel is not None:
            self.sentinel.advance(now)
        for state in self._states.values():
            self._advance_block(state, now)

    def finalize(self, end: float) -> Dict[int, BlockResult]:
        """Close the window at ``end`` and return per-block results.

        With a sentinel attached, down-time inside feed-quarantine
        windows is retracted (the observer, not the block, was judged
        unhealthy) and the overlapping windows are recorded on each
        :class:`BlockResult`.
        """
        self.advance(end)
        quarantined = (self.sentinel.quarantined_intervals()
                       if self.sentinel is not None else [])
        results: Dict[int, BlockResult] = {}
        for key, state in self._states.items():
            coarse = Timeline.from_transitions(
                self.start, end, state.transitions, initial_up=True)
            # Streaming refinement already placed transition timestamps
            # on packet evidence, so the coarse timeline is the result.
            timeline = coarse
            overlapping = [
                (max(s, self.start), min(e, end))
                for s, e in quarantined if s < end and e > self.start]
            if overlapping:
                timeline = suppress_quarantined(coarse, overlapping)
            results[key] = BlockResult(
                key=key,
                family=self.family,
                params=state.params,
                history=state.history,
                timeline=timeline,
                coarse_timeline=coarse,
                quarantined=overlapping,
            )
        return results

    # -- internals ----------------------------------------------------------

    def _advance_block(self, state: _StreamBlockState, now: float) -> None:
        """Close every bin that ends at or before ``now``."""
        while state.next_bin_end <= now:
            self._close_bin(state)

    def _close_bin(self, state: _StreamBlockState) -> None:
        params = state.params
        was_up = state.belief.is_up
        bin_start = state.next_bin_end - params.bin_seconds
        p_empty = (state.history.empty_bin_probability_at(
            bin_start, params.bin_seconds)
            if state.history.diurnal_profile is not None else None)
        is_up = state.belief.update(state.bin_count, p_empty)
        if was_up and not is_up:
            # Refined outage start: just after the last packet seen.
            mean_gap = (1.0 / state.history.mean_rate
                        if state.history.mean_rate > 0 else params.bin_seconds)
            guard = min(self.refinement.guard_gaps * mean_gap,
                        params.bin_seconds)
            max_backfill = (self.refinement.max_backfill_bins
                            * params.bin_seconds)
            if state.last_packet is not None:
                refined = max(state.last_packet + guard,
                              bin_start - max_backfill)
            else:
                refined = bin_start
            state.transitions.append((min(refined, state.next_bin_end), False))
        elif not was_up and is_up:
            # Refined recovery: the first packet of the reviving bin,
            # pulled back one forward-recurrence time (see
            # events.refine_timeline) so durations stay unbiased.
            if state.first_packet_this_bin is not None:
                mean_gap = (1.0 / state.history.mean_rate
                            if state.history.mean_rate > 0
                            else params.bin_seconds)
                guard = min(self.refinement.guard_gaps * mean_gap,
                            params.bin_seconds)
                recovery = state.first_packet_this_bin - guard
            else:
                recovery = bin_start
            state.transitions.append((recovery, True))
        state.bin_count = 0
        state.first_packet_this_bin = None
        state.next_bin_end += params.bin_seconds

"""The passive outage detector: batch (vectorised) and streaming forms.

:class:`PassiveDetector` is the batch engine behind all experiments: it
takes trained histories plus tuned per-block parameters, groups blocks
by their tuned bin size, filters each group with one vectorised belief
pass, and emits refined per-block timelines.

:class:`StreamingDetector` is the deployment shape: it consumes a live,
time-ordered observation stream and emits up/down transitions with the
same refinement, using the scalar :class:`~repro.core.belief.BeliefState`
per block.  Both paths share parameters and likelihoods, and the test
suite pins them to identical decisions on identical input.
"""

from __future__ import annotations

import time as _time
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..net.addr import Family
from ..obs.explain import resolve_explain
from ..obs.metrics import resolve_registry
from ..telescope.aggregate import BinGrid, binned_counts
from ..telescope.records import Observation
from ..timeline import OutageEvent, Timeline
from .belief import BeliefState, guarded_belief_pass
from .columnar import (
    Cohort,
    build_cohorts,
    columnar_update,
    diurnal_p_empty,
    history_is_clean,
)
from .events import (
    RefinementConfig,
    gap_outages,
    refine_timeline,
    states_to_timeline,
)
from .health import (
    BlockDataError,
    DeadLetterRegistry,
    ErrorBudget,
    ErrorBudgetExceeded,
    GuardrailCounters,
    RunHealthReport,
)
from .history import BlockHistory
from .parameters import BlockParameters
from .sentinel import VantageSentinel, suppress_quarantined

__all__ = ["BlockResult", "PassiveDetector", "StreamingDetector",
           "dead_letter_metric", "guardrail_metric",
           "EXPLAIN_TRAJECTORY_BINS"]

#: Belief-trajectory window kept per block for the explain log: the
#: "deciding bins" an auditor sees leading into a transition.
EXPLAIN_TRAJECTORY_BINS = 8


def dead_letter_metric(metrics: Any) -> Any:
    """The shared ``dead_letters_total{stage}`` counter family.

    One definition site, so the pipeline, the streaming detector, and
    checkpoint restore all bind health registries to the *same* series.
    """
    return metrics.counter(
        "dead_letters_total",
        "Blocks quarantined into the dead-letter registry, by stage",
        labelnames=("stage",))


def guardrail_metric(metrics: Any) -> Any:
    """The shared ``guardrail_trips_total{guard}`` counter family."""
    return metrics.counter(
        "guardrail_trips_total",
        "Numerical guardrail trips (poison neutralised), by guard",
        labelnames=("guard",))


@dataclass
class BlockResult:
    """Detection output for one block."""

    key: int
    family: Family
    params: BlockParameters
    history: BlockHistory
    timeline: Timeline
    coarse_timeline: Timeline
    belief_trace: Optional[np.ndarray] = None
    #: feed-quarantine windows (observer unhealthy) overlapping this
    #: block's span; down-time inside them was retracted.
    quarantined: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def events(self) -> List[OutageEvent]:
        return self.timeline.events()

    @property
    def measurable(self) -> bool:
        return self.params.measurable


class PassiveDetector:
    """Vectorised batch detection over a trained population.

    Fault containment: every per-block computation runs inside a
    supervised scope.  A block whose detection-window timestamps are
    poisoned (non-finite), whose counts or parameters poison the
    vectorised belief pass, or whose refinement raises is quarantined
    into :attr:`last_dead_letters` — the rest of the population
    completes untouched, and the chaos suite pins clean blocks to
    bit-identical results against an unpoisoned run.
    """

    def __init__(self, refinement: Optional[RefinementConfig] = None,
                 keep_belief_traces: bool = False,
                 metrics: Optional[Any] = None,
                 explain: Optional[Any] = None) -> None:
        self.refinement = refinement or RefinementConfig()
        self.keep_belief_traces = keep_belief_traces
        #: metrics registry (``repro.obs.metrics``); defaults to the
        #: process-wide registry, which is a no-op until installed.
        self.metrics = resolve_registry(metrics)
        #: decision-provenance log; records one onset/recovery pair per
        #: finalized outage (batch detection has no bin-by-bin belief
        #: trajectory to narrate — the streaming detector carries that).
        self.explain = resolve_explain(explain)
        #: quarantine and guardrail accounting for the most recent
        #: :meth:`detect` call (callers may pass their own instead).
        self.last_dead_letters = DeadLetterRegistry()
        self.last_guardrails = GuardrailCounters()

    def detect(
        self,
        family: Family,
        per_block: Mapping[int, np.ndarray],
        histories: Mapping[int, BlockHistory],
        parameters: Mapping[int, BlockParameters],
        start: float,
        end: float,
        registry: Optional[DeadLetterRegistry] = None,
        guardrails: Optional[GuardrailCounters] = None,
    ) -> Dict[int, BlockResult]:
        """Detect outages for every *measurable* block.

        ``per_block`` maps block key -> sorted arrival times covering
        the detection window ``[start, end)``; blocks present in
        ``parameters`` but missing from ``per_block`` are treated as
        silent for the whole window (which, for a measurable block, is
        one long outage).

        ``registry``/``guardrails`` collect quarantined blocks and
        guardrail trips; when omitted, fresh collectors are created and
        exposed as :attr:`last_dead_letters`/:attr:`last_guardrails`.
        Quarantined blocks are absent from the returned mapping.
        """
        registry = registry if registry is not None else DeadLetterRegistry()
        guardrails = (guardrails if guardrails is not None
                      else GuardrailCounters())
        self.last_dead_letters = registry
        self.last_guardrails = guardrails

        # Group key is every property that steers the vectorised pass:
        # bin size, the pair of hysteresis thresholds, and whether the
        # block's own history is diurnal.  Grouping on anything coarser
        # (the old code grouped on bin size alone and let *any* diurnal
        # member switch the whole group to the matrix likelihood, with
        # ``keys[0]``'s thresholds) made a block's verdict depend on its
        # groupmates — which breaks both per-block correctness and the
        # sharded/sequential equivalence guarantee.
        groups: Dict[Tuple[float, float, float, bool], List[int]] = (
            defaultdict(list))
        for key, params in parameters.items():
            if not params.measurable:
                continue
            # Supervised scope 1: the block's own input data.  NaN/inf
            # timestamps would silently corrupt the count grid (bin_of
            # clips garbage indices into range), so they must be caught
            # here, not discovered as wrong verdicts later.
            times = per_block.get(key)
            if times is not None:
                times = np.asarray(times)
                if times.dtype.kind == "f" and not np.isfinite(times).all():
                    bad = int((~np.isfinite(np.asarray(times))).sum())
                    guardrails.trip("nonfinite_timestamp", bad)
                    registry.record(
                        "detect", key,
                        BlockDataError(
                            f"{bad} of {times.size} detection timestamps "
                            f"are non-finite"),
                        times)
                    continue
            if key not in histories:
                registry.record(
                    "detect", key,
                    BlockDataError("no trained history for this block"))
                continue
            groups[(params.bin_seconds, params.down_threshold,
                    params.up_threshold,
                    histories[key].diurnal_profile is not None)].append(key)

        results: Dict[int, BlockResult] = {}
        for (bin_seconds, _, _, has_diurnal), keys in sorted(groups.items()):
            keys.sort()
            grid = BinGrid(start, end, bin_seconds)
            if has_diurnal:
                # Diurnal-aware likelihood: per-(block, bin) empty-bin
                # probability so nightly lulls stop counting as
                # evidence.  Supervised scope 2: a poisoned diurnal
                # profile (wrong shape, NaN rates) fails only its own
                # block.
                edges = grid.edges()
                rows: Dict[int, np.ndarray] = {}
                for key in list(keys):
                    try:
                        rates = histories[key].likelihood_rates(edges)
                        rows[key] = np.minimum(
                            np.exp(-rates * bin_seconds), 1.0 - 1e-9)
                    except Exception as error:
                        registry.record("detect", key, error,
                                        histories[key].diurnal_profile)
                        keys.remove(key)
                if not keys:
                    continue
                p_empty_input = np.vstack([rows[key] for key in keys])
            else:
                p_empty_input = np.array(
                    [parameters[k].p_empty_up for k in keys])
            counts = binned_counts(keys, per_block, grid)
            _, noise, prior_down, prior_up = self._parameter_vectors(
                keys, parameters)
            # Supervised scope 3: the vectorised pass masks rows whose
            # counts or parameters are poisoned instead of letting NaN
            # spread through the recurrence; masked rows are
            # quarantined, not reported.
            states, beliefs, poisoned = guarded_belief_pass(
                counts, p_empty_input, noise, prior_down, prior_up,
                down_threshold=parameters[keys[0]].down_threshold,
                up_threshold=parameters[keys[0]].up_threshold,
                return_beliefs=self.keep_belief_traces,
                guardrails=guardrails, metrics=self.metrics)
            self.metrics.counter(
                "belief_updates_total",
                "Belief-filter updates applied, by address family",
                labelnames=("family",)).labels(
                    family=family.name.lower()).inc(counts.size)
            for row, key in enumerate(keys):
                if poisoned[row]:
                    registry.record(
                        "belief", key,
                        BlockDataError(
                            "non-finite counts or parameters poisoned "
                            "the belief pass; row masked"),
                        counts[row])
                    continue
                # Supervised scope 4: per-block refinement and the gap
                # detector.
                try:
                    results[key] = self._build_result(
                        family, key, per_block, histories[key],
                        parameters[key], states[row],
                        beliefs[row] if beliefs is not None else None,
                        grid, start, end)
                except Exception as error:
                    registry.record("refine", key, error,
                                    per_block.get(key))
        return results

    def _build_result(self, family: Family, key: int,
                      per_block: Mapping[int, np.ndarray],
                      history: BlockHistory, params: BlockParameters,
                      states: np.ndarray, belief_trace: Optional[np.ndarray],
                      grid: BinGrid, start: float, end: float) -> BlockResult:
        """Refine one block's bin-level states into its final result."""
        bin_seconds = grid.bin_seconds
        times = per_block.get(key, np.empty(0))
        coarse = states_to_timeline(states, grid)
        refined = refine_timeline(
            coarse, times, history.mean_rate, bin_seconds,
            self.refinement)
        mean_gap = (1.0 / history.mean_rate
                    if history.mean_rate > 0 else bin_seconds)
        gaps = gap_outages(
            times, params.gap_threshold_seconds, start, end,
            guard=self.refinement.guard_gaps * mean_gap)
        if gaps:
            refined = Timeline(start, end,
                               refined.down_intervals + gaps)
        if self.explain.enabled:
            for event in refined.events():
                self.explain.record({
                    "event": "onset", "block": key, "time": event.start,
                    "duration": event.duration})
                self.explain.record({
                    "event": "recovery", "block": key, "time": event.end})
        return BlockResult(
            key=key,
            family=family,
            params=params,
            history=history,
            timeline=refined,
            coarse_timeline=coarse,
            belief_trace=belief_trace,
        )

    @staticmethod
    def _parameter_vectors(keys: List[int],
                           parameters: Mapping[int, BlockParameters]
                           ) -> Tuple[np.ndarray, np.ndarray,
                                      np.ndarray, np.ndarray]:
        p_empty = np.array([parameters[k].p_empty_up for k in keys])
        noise = np.array([parameters[k].noise_nonempty for k in keys])
        prior_down = np.array([parameters[k].prior_down for k in keys])
        prior_up = np.array([parameters[k].prior_up_recovery for k in keys])
        return p_empty, noise, prior_down, prior_up


@dataclass
class _StreamBlockState:
    """Streaming bookkeeping for one block."""

    params: BlockParameters
    history: BlockHistory
    belief: BeliefState
    next_bin_end: float
    bin_count: int = 0
    last_packet: Optional[float] = None
    first_packet_this_bin: Optional[float] = None
    transitions: List[Tuple[float, bool]] = field(default_factory=list)


class StreamingDetector:
    """Online detector over a time-ordered observation stream.

    Typical use::

        detector = StreamingDetector(family, histories, parameters, start)
        for observation in stream:
            detector.observe(observation)
        results = detector.finalize(end)

    ``observe`` must be called in non-decreasing time order (a merged
    capture stream already is; a noisy feed becomes one through
    :class:`repro.telescope.reorder.ReorderBuffer`).  Between packets,
    :meth:`advance` may be called with the wall clock so silent blocks
    are judged promptly; the batch-equivalence guarantee holds either
    way because ``finalize`` flushes every pending bin.

    An optional :class:`~repro.core.sentinel.VantageSentinel` guards
    against observer-side failures: it sees every observation (any
    family, any block — feed health is a property of the tap, not the
    population), and ``finalize`` retracts per-block down-time that
    falls inside its quarantine windows.

    Fault containment mirrors the batch detector: an exception while
    processing one block's observation or closing one block's bin
    quarantines that block into :attr:`dead_letters` and the stream
    continues; ``finalize`` enforces the error budget
    (``max_quarantine_frac``) and publishes a
    :class:`~repro.core.health.RunHealthReport` as :attr:`last_health`.
    """

    def __init__(
        self,
        family: Family,
        histories: Mapping[int, BlockHistory],
        parameters: Mapping[int, BlockParameters],
        start: float,
        refinement: Optional[RefinementConfig] = None,
        sentinel: Optional[VantageSentinel] = None,
        max_quarantine_frac: float = 0.5,
        metrics: Optional[Any] = None,
        explain: Optional[Any] = None,
        columnar: Optional[bool] = None,
    ) -> None:
        self.family = family
        self.start = float(start)
        #: when True (the default), ``advance`` closes all bins sharing
        #: a boundary with one batched array update per parameter
        #: cohort; the scalar per-block loop remains the oracle (and is
        #: used automatically while decision provenance is on, which
        #: needs per-update evidence staging).
        self.columnar = True if columnar is None else bool(columnar)
        self._cohorts: Optional[List[Cohort]] = None
        self._cohort_stragglers: List[int] = []
        self.refinement = refinement or RefinementConfig()
        self.sentinel = sentinel
        self.histories = dict(histories)
        self.dead_letters = DeadLetterRegistry()
        self.guardrails = GuardrailCounters()
        self.budget = ErrorBudget(max_quarantine_frac)
        self.last_health: Optional[RunHealthReport] = None
        self._states: Dict[int, _StreamBlockState] = {}
        self._last_time = float(start)
        #: total per-block bins closed — the streaming fault hooks and
        #: the live supervisor key their "after K windows" triggers off
        #: this, so it must advance deterministically with the stream.
        self.windows_closed = 0
        #: drift hot-swap queue and application log: ``hot_swap`` parks
        #: the replacement (history, parameters) here; it is applied at
        #: the owning block's next bin close (never mid-bin, so the bin
        #: being accumulated is judged by the model that opened it).
        self._pending_swaps: Dict[int, Tuple[BlockHistory,
                                             BlockParameters]] = {}
        self._retuned: Dict[int, Tuple[BlockHistory, BlockParameters]] = {}
        #: extra payload carried by the checkpoint this detector was
        #: restored from (None for a fresh detector) — the live worker
        #: parks its replay cursor and buffer state there.
        self.restored_extra: Optional[Dict[str, Any]] = None
        for key, params in parameters.items():
            if not params.measurable:
                continue
            self._states[key] = _StreamBlockState(
                params=params,
                history=self.histories[key],
                belief=BeliefState(params),
                next_bin_end=self.start + params.bin_seconds,
            )
        self._initial_blocks = len(self._states)
        #: metrics registry; the no-op default costs one attribute read
        #: per hot-path increment.
        self.metrics = resolve_registry(metrics)
        #: decision-provenance log (``repro.obs.explain``); the no-op
        #: default costs one ``enabled`` attribute read per bin close.
        self.explain = resolve_explain(explain)
        #: per-block belief trajectory over the deciding bins, kept only
        #: while provenance is on; the most recent evidence dict is
        #: staged by ``_update_belief`` for the transition event.
        self._trajectories: Dict[int, deque] = {}
        self._last_evidence: Optional[Dict[str, Any]] = None
        self._register_metrics()

    def _register_metrics(self, backfill: bool = True) -> None:
        """(Re)create metric handles and bind health registries.

        Called from ``__init__`` and again by checkpoint restore after
        swapping in restored health registries, so the handles always
        point at the live registry's series.  ``backfill=False`` skips
        seeding the dead-letter/guardrail counters from the registries'
        current contents — checkpoint restore uses it because the
        restored metrics snapshot already counts those entries.
        """
        m = self.metrics
        self._m_observations = m.counter(
            "stream_observations_total",
            "Observations fed to the streaming detector")
        self._m_bins = m.counter(
            "stream_bins_total",
            "Per-block bins closed by the streaming detector")
        transitions = m.counter(
            "stream_transitions_total",
            "Block state transitions emitted, by direction",
            labelnames=("direction",))
        self._m_down = transitions.labels(direction="down")
        self._m_up = transitions.labels(direction="up")
        self._m_lag = m.gauge(
            "stream_watermark_lag_seconds",
            "Stream clock minus the bin boundary most recently closed")
        self._m_clock = m.gauge(
            "stream_clock_seconds",
            "High-water mark of the stream clock (epoch seconds)")
        self._m_blocks = m.gauge(
            "stream_active_blocks",
            "Blocks still tracked (not dead-lettered)")
        self._m_belief = m.histogram(
            "belief_update_seconds",
            "Wall-time of one scalar belief update at bin close")
        self._m_stream_bins = m.counter(
            "belief_bins_total",
            "Bins filtered by the vectorised belief pass",
            labelnames=("path",)).labels(path="stream")
        self._m_stream_pass = m.histogram(
            "belief_pass_seconds",
            "Wall-time of one vectorised belief pass",
            labelnames=("path",)).labels(path="stream")
        self._m_explain = m.counter(
            "explain_events_total",
            "Decision-provenance events recorded, by kind",
            labelnames=("kind",))
        self._m_blocks.set(len(self._states))
        self.dead_letters.bind(dead_letter_metric(m), backfill=backfill)
        self.guardrails.bind(guardrail_metric(m), backfill=backfill)
        if self.sentinel is not None:
            self.sentinel.bind_metrics(m)

    @property
    def last_time(self) -> float:
        """High-water mark of the stream clock (observe/advance)."""
        return self._last_time

    def observe(self, observation: Observation) -> None:
        """Feed one observation (must be time-ordered).

        A non-finite timestamp is a *stream*-level fault (it would
        corrupt the shared clock), so it raises; an exception while
        processing the observation's own block is a *block*-level fault
        and quarantines only that block.
        """
        if not np.isfinite(observation.time):
            raise ValueError(
                f"non-finite observation timestamp {observation.time!r}: "
                f"reject poisoned records at the ingest boundary "
                f"(merge_streams/ReorderBuffer) before they reach the "
                f"detector clock")
        if observation.time < self._last_time - 1e-9:
            raise ValueError(
                f"stream went backwards: {observation.time} after "
                f"{self._last_time}")
        self._last_time = max(self._last_time, observation.time)
        self._m_observations.inc()
        if self.sentinel is not None:
            self.sentinel.observe(observation.time)
        if observation.family is not self.family:
            return
        key = observation.block_key
        state = self._states.get(key)
        if state is None:
            return
        try:
            self._observe_block(key, state, observation)
        except Exception as error:
            self._quarantine(key, "stream", error)

    def _observe_block(self, key: int, state: _StreamBlockState,
                       observation: Observation) -> None:
        """One block's share of :meth:`observe` (supervised scope)."""
        self._advance_block(key, state, observation.time)
        # Gap detector: a silence longer than the trained threshold is an
        # outage bounded by exact packet times, regardless of bin state.
        threshold = state.params.gap_threshold_seconds
        if (state.last_packet is not None
                and observation.time - state.last_packet > threshold):
            mean_gap = (1.0 / state.history.mean_rate
                        if state.history.mean_rate > 0
                        else state.params.bin_seconds)
            guard = min(self.refinement.guard_gaps * mean_gap,
                        threshold / 2.0)
            state.transitions.append((state.last_packet + guard, False))
            state.transitions.append((observation.time - guard, True))
        if state.first_packet_this_bin is None:
            state.first_packet_this_bin = observation.time
        state.bin_count += 1
        state.last_packet = observation.time

    def advance(self, now: float) -> None:
        """Flush every block's complete bins up to wall-clock ``now``.

        With :attr:`columnar` on (the default) and provenance off, all
        blocks sharing a bin boundary close in one batched array
        update per parameter cohort; otherwise each block takes the
        scalar per-bin path.  Both paths close exactly the same bins
        at the same boundaries and leave bit-identical per-block
        state — the property suite pins scalar as the oracle.
        """
        self._last_time = max(self._last_time, now)
        if self.sentinel is not None:
            self.sentinel.advance(now)
        if not self.columnar or self.explain.enabled:
            for key, state in list(self._states.items()):
                try:
                    self._advance_block(key, state, now)
                except Exception as error:
                    self._quarantine(key, "stream", error)
            return
        if self._cohorts is None:
            self._build_cohorts()
        cohorts = self._cohorts
        # Suspect members (a history the scalar math could raise on)
        # keep the scalar path, in insertion order, so quarantine
        # order and dead-letter messages match the scalar engine.
        for key in self._cohort_stragglers:
            state = self._states.get(key)
            if state is None:
                continue
            try:
                self._advance_block(key, state, now)
            except Exception as error:
                self._quarantine(key, "stream", error)
        for cohort in cohorts:
            self._advance_cohort(cohort, now)

    # -- columnar bin close --------------------------------------------------

    def _invalidate_cohorts(self) -> None:
        """Drop the cohort cache (membership or block models changed).

        Cheap and safe to call often: cohorts rebuild lazily at the
        next columnar ``advance``.  Packet-driven scalar closes do
        *not* need this — per-close state is gathered fresh at every
        boundary; only parameter/history swaps, quarantines, and
        checkpoint restores invalidate the static columns.
        """
        self._cohorts = None
        self._cohort_stragglers = []

    def _cohort_signature(self, key: int,
                          state: _StreamBlockState) -> Optional[Any]:
        """Grouping key for the columnar store; None keeps the block on
        the scalar path (suspect history)."""
        if not history_is_clean(state.history):
            return None
        return (state.params.bin_seconds,)

    def _cohort_extras(self, cohort: Cohort) -> None:
        """Populate subclass payload on a freshly built cohort."""

    def _build_cohorts(self) -> None:
        entries: List[Tuple[Any, int, _StreamBlockState]] = []
        stragglers: List[int] = []
        for key, state in self._states.items():
            signature = self._cohort_signature(key, state)
            if signature is None:
                stragglers.append(key)
            else:
                entries.append((signature, key, state))
        self._cohorts = build_cohorts(entries)
        self._cohort_stragglers = stragglers
        for cohort in self._cohorts:
            self._cohort_extras(cohort)

    def _advance_cohort(self, cohort: Cohort, now: float) -> None:
        """Close every cohort member's pending bins up to ``now``,
        batching all members that share each boundary."""
        states = cohort.states
        next_ends = np.array([state.next_bin_end for state in states])
        while True:
            pending = next_ends <= now
            if not pending.any():
                break
            boundary = float(next_ends[pending].min())
            rows = np.flatnonzero(next_ends == boundary)
            self._close_cohort(cohort, rows, boundary, now)
            for row in rows.tolist():
                key = cohort.keys[row]
                if key not in self._states:
                    next_ends[row] = np.inf
                else:
                    next_ends[row] = states[row].next_bin_end

    def _cohort_posterior(self, cohort: Cohort, rows: np.ndarray,
                          keys: List[int],
                          members: List[_StreamBlockState],
                          bin_start: float, boundary: float,
                          belief: np.ndarray, was_up: np.ndarray,
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                     Optional[np.ndarray]]:
        """Batched belief math for one boundary; the single-source
        replica of :meth:`BeliefState.update`.  Returns ``(belief,
        is_up, guardrail_trips, bad)`` where ``bad`` marks members that
        must fall back to the scalar close (residual poisoned
        evidence) — None when every member is clean."""
        counts = np.fromiter((state.bin_count for state in members),
                             np.int64, len(members))
        p_empty = diurnal_p_empty(cohort, rows, bin_start)
        bad: Optional[np.ndarray] = ~np.isfinite(p_empty)
        if bad.any():
            p_empty = np.where(bad, 0.5, p_empty)
        else:
            bad = None
        new_belief, new_up, trips = columnar_update(
            belief, was_up, counts, p_empty,
            cohort.noise_nonempty[rows], cohort.prior_down[rows],
            cohort.prior_up_recovery[rows], cohort.down_threshold[rows],
            cohort.up_threshold[rows])
        return new_belief, new_up, trips, bad

    def _close_cohort(self, cohort: Cohort, rows: np.ndarray,
                      boundary: float, now: float) -> None:
        """Close one shared boundary for ``rows`` of ``cohort`` — the
        batched equivalent of N scalar :meth:`_close_bin` calls."""
        clock = _time.perf_counter() if self.metrics.enabled else None
        bin_seconds = cohort.bin_seconds
        bin_start = boundary - bin_seconds
        keys = [cohort.keys[row] for row in rows.tolist()]
        members = [cohort.states[row] for row in rows.tolist()]
        belief = np.fromiter(
            (state.belief.belief for state in members), float,
            len(members))
        was_up = np.array([state.belief.is_up for state in members])
        new_belief, new_up, trips, bad = self._cohort_posterior(
            cohort, rows, keys, members, bin_start, boundary, belief,
            was_up)
        if bad is not None and bad.any():
            # Residual poison the admission check could not see: those
            # members take the scalar close so the exact BlockDataError
            # lands in the dead-letter registry.
            for position in np.flatnonzero(bad).tolist():
                key, state = keys[position], members[position]
                try:
                    self._close_bin(key, state)
                except Exception as error:
                    self._quarantine(key, "stream", error)
            keep = np.flatnonzero(~bad)
            if keep.size == 0:
                return
            keys = [keys[i] for i in keep.tolist()]
            members = [members[i] for i in keep.tolist()]
            was_up = was_up[keep]
            new_belief = new_belief[keep]
            new_up = new_up[keep]
            trips = trips[keep]
        flips_down = 0
        flips_up = 0
        swapped: List[Tuple[int, _StreamBlockState]] = []
        for key, state, value, up, trip, previous in zip(
                keys, members, new_belief.tolist(), new_up.tolist(),
                trips.tolist(), was_up.tolist()):
            block_belief = state.belief
            block_belief.belief = value
            block_belief.is_up = up
            if trip:
                block_belief.guardrail_trips += trip
            if previous and not up:
                flips_down += 1
                mean_gap = (1.0 / state.history.mean_rate
                            if state.history.mean_rate > 0
                            else bin_seconds)
                guard = min(self.refinement.guard_gaps * mean_gap,
                            bin_seconds)
                max_backfill = (self.refinement.max_backfill_bins
                                * bin_seconds)
                if state.last_packet is not None:
                    refined = max(state.last_packet + guard,
                                  bin_start - max_backfill)
                else:
                    refined = bin_start
                state.transitions.append((min(refined, boundary), False))
            elif not previous and up:
                flips_up += 1
                if state.first_packet_this_bin is not None:
                    mean_gap = (1.0 / state.history.mean_rate
                                if state.history.mean_rate > 0
                                else bin_seconds)
                    guard = min(self.refinement.guard_gaps * mean_gap,
                                bin_seconds)
                    recovery = state.first_packet_this_bin - guard
                else:
                    recovery = bin_start
                state.transitions.append((recovery, True))
            state.bin_count = 0
            state.first_packet_this_bin = None
            swap = self._pending_swaps.pop(key, None)
            if swap is not None:
                self._apply_swap(key, state, swap[0], swap[1], boundary)
                swapped.append((key, state))
            else:
                state.next_bin_end = boundary + bin_seconds
        closed = len(members)
        self.windows_closed += closed
        trip_total = int(trips.sum())
        if trip_total:
            self.guardrails.trip("neutralised_bin", trip_total)
        self._m_bins.inc(closed)
        if flips_down:
            self._m_down.inc(flips_down)
        if flips_up:
            self._m_up.inc(flips_up)
        self._m_lag.set(self._last_time - boundary)
        self._m_clock.set(self._last_time)
        for key, state in swapped:
            # A swap may re-grid the member; catch it up scalar for the
            # rest of this advance (its cohort row rebuilds lazily).
            try:
                self._advance_block(key, state, now)
            except Exception as error:
                self._quarantine(key, "stream", error)
        if clock is not None:
            self._m_stream_bins.inc(closed)
            self._m_stream_pass.observe(_time.perf_counter() - clock)

    def _quarantine(self, key: int, stage: str,
                    error: BaseException) -> None:
        """Dead-letter one block and stop processing it."""
        self._states.pop(key, None)
        self._pending_swaps.pop(key, None)
        self._invalidate_cohorts()
        self.dead_letters.record(stage, key, error)
        self._m_blocks.set(len(self._states))
        if self.explain.enabled:
            self._trajectories.pop(key, None)
            self._record_event({
                "event": "retraction", "block": key,
                "time": self._last_time,
                "reason": f"dead-lettered at stage {stage}: "
                          f"{type(error).__name__}: {error}",
            })

    def _record_event(self, event: Dict[str, Any]) -> None:
        self.explain.record(event)
        self._m_explain.labels(kind=event["event"]).inc()

    def hot_swap(self, key: int, history: BlockHistory,
                 params: BlockParameters) -> bool:
        """Queue a retuned (history, parameters) pair for one block.

        The swap is applied at the block's *next bin close*, never
        mid-bin: the bin currently accumulating was opened under the old
        model and is judged by it, then the belief value and up/down
        decision carry over into the new model unchanged (drift retuning
        corrects the *rate* model, not the block's current verdict).
        Returns False — and queues nothing — for a block this detector
        is not tracking (quarantined, unmeasurable, or foreign), and
        for replacement parameters that are themselves unmeasurable
        (swapping those in would silently stop judging the block).

        Queue order is the caller's responsibility: the live path calls
        this from a deterministic point in per-block stream order, which
        is what keeps partitioned and single-process runs bit-identical.
        """
        if key not in self._states or not params.measurable:
            return False
        self._pending_swaps[key] = (history, params)
        return True

    @property
    def retuned(self) -> Dict[int, Tuple[BlockHistory, BlockParameters]]:
        """Applied hot swaps, by block key (checkpointed and restored)."""
        return dict(self._retuned)

    @property
    def pending_swaps(self) -> Dict[int, Tuple[BlockHistory,
                                               BlockParameters]]:
        """Queued-but-unapplied hot swaps, by block key."""
        return dict(self._pending_swaps)

    def _apply_swap(self, key: int, state: _StreamBlockState,
                    history: BlockHistory, params: BlockParameters,
                    boundary: float) -> None:
        """Install a retuned model for one block at a bin boundary.

        The belief value, up/down decision, and guardrail count carry
        over; the next bin opens at ``boundary`` with the *new* bin
        width, so a bin-size change re-grids the block from the swap
        point forward without tearing the closed-bin history.
        """
        belief = BeliefState(params)
        belief.belief = state.belief.belief
        belief.is_up = state.belief.is_up
        belief.guardrail_trips = state.belief.guardrail_trips
        state.params = params
        state.history = history
        state.belief = belief
        state.next_bin_end = boundary + params.bin_seconds
        self.histories[key] = history
        self._retuned[key] = (history, params)
        self._invalidate_cohorts()
        self.metrics.counter(
            "drift_hot_swaps_total",
            "Retuned block models hot-swapped in at a bin boundary").inc()

    def finalize(self, end: float,
                 quarantined: Optional[List[Tuple[float, float]]] = None,
                 ) -> Dict[int, BlockResult]:
        """Close the window at ``end`` and return per-block results.

        With a sentinel attached, down-time inside feed-quarantine
        windows is retracted (the observer, not the block, was judged
        unhealthy) and the overlapping windows are recorded on each
        :class:`BlockResult`.  ``quarantined`` overrides the sentinel's
        own windows — the partitioned live path runs *one* sentinel
        parent-side over the whole tap (feed health is a property of
        the vantage, not of any partition's slice) and passes its
        verdict down to every worker here.

        Enforces the error budget: when more than ``max_quarantine_frac``
        of the blocks this detector started with have been dead-lettered,
        raises :class:`~repro.core.health.ErrorBudgetExceeded` instead of
        reporting a hollowed-out run as success.  The run's
        :class:`~repro.core.health.RunHealthReport` is published as
        :attr:`last_health` either way.
        """
        self.advance(end)
        if quarantined is None:
            quarantined = (self.sentinel.quarantined_intervals()
                           if self.sentinel is not None else [])
        results: Dict[int, BlockResult] = {}
        for key, state in list(self._states.items()):
            try:
                coarse = Timeline.from_transitions(
                    self.start, end, state.transitions, initial_up=True)
                # Streaming refinement already placed transition
                # timestamps on packet evidence, so the coarse timeline
                # is the result.
                timeline = coarse
                overlapping = [
                    (max(s, self.start), min(e, end))
                    for s, e in quarantined if s < end and e > self.start]
                if overlapping:
                    timeline = suppress_quarantined(coarse, overlapping)
                if self.explain.enabled:
                    self._explain_finalized(key, coarse, timeline,
                                            overlapping)
                results[key] = BlockResult(
                    key=key,
                    family=self.family,
                    params=state.params,
                    history=state.history,
                    timeline=timeline,
                    coarse_timeline=coarse,
                    quarantined=overlapping,
                )
            except Exception as error:
                self._quarantine(key, "finalize", error)
        self.last_health = self._build_health(end, quarantined)
        try:
            self.budget.check("stream", self._initial_blocks,
                              len(self.dead_letters))
        except ErrorBudgetExceeded as error:
            error.report = self.last_health
            raise
        return results

    def _explain_finalized(self, key: int, coarse: Timeline,
                           timeline: Timeline,
                           overlapping: List[Tuple[float, float]]) -> None:
        """Record the finalized boundaries (and retractions) for a block."""
        final = timeline.events()
        for event in final:
            self._record_event({
                "event": "onset", "block": key, "time": event.start,
                "duration": event.duration})
            self._record_event({
                "event": "recovery", "block": key, "time": event.end})
        for event in coarse.events():
            survived = any(event.start < kept.end and kept.start < event.end
                           for kept in final)
            if not survived:
                self._record_event({
                    "event": "retraction", "block": key,
                    "time": event.start,
                    "reason": "down-time overlapped "
                              f"{len(overlapping)} sentinel quarantine "
                              "window(s); the observer, not the block, "
                              "was judged unhealthy",
                })

    def health_report(self, end: Optional[float] = None) -> RunHealthReport:
        """The most recent run health report (building one if needed)."""
        if self.last_health is None:
            windows = (self.sentinel.quarantined_intervals()
                       if self.sentinel is not None else [])
            self.last_health = self._build_health(
                end if end is not None else self._last_time, windows)
        return self.last_health

    def _build_health(self, end: float,
                      sentinel_windows: List[Tuple[float, float]]
                      ) -> RunHealthReport:
        # Guardrail trips were already folded into ``self.guardrails``
        # at each bin close, so the report is a plain copy — by
        # construction equal to the ``guardrail_trips_total`` metric.
        guardrails = GuardrailCounters()
        guardrails.merge(self.guardrails)
        report = RunHealthReport(
            run="streaming",
            dead_letters=DeadLetterRegistry(self.dead_letters.entries),
            guardrails=guardrails,
            sentinel_windows=[(float(s), float(e))
                              for s, e in sentinel_windows],
            max_quarantine_frac=self.budget.max_quarantine_frac,
        )
        stage = report.stage("stream")
        stage.seconds = max(0.0, end - self.start)
        stage.attempted = self._initial_blocks
        stage.quarantined = len(self.dead_letters)
        stage.succeeded = stage.attempted - stage.quarantined
        report.budget_tripped = (
            self.budget.max_quarantine_frac < 1.0
            and stage.attempted > 0
            and stage.quarantined / stage.attempted
            > self.budget.max_quarantine_frac)
        return report

    # -- internals ----------------------------------------------------------

    def _advance_block(self, key: int, state: _StreamBlockState,
                       now: float) -> None:
        """Close every bin that ends at or before ``now``."""
        while state.next_bin_end <= now:
            self._close_bin(key, state)

    def _update_belief(self, key: int, state: _StreamBlockState,
                       bin_start: float) -> bool:
        """Apply one closed bin's evidence; returns the new up/down state.

        Split out of :meth:`_close_bin` so the fusion layer's detector
        can substitute a multi-source weighted update while inheriting
        all of the bin-close bookkeeping (refined transition placement,
        metrics, hot-swap application) unchanged.
        """
        params = state.params
        p_empty = (state.history.empty_bin_probability_at(
            bin_start, params.bin_seconds)
            if state.history.diurnal_profile is not None else None)
        if self.explain.enabled:
            # Stage the evidence *before* the update so the recorded
            # floats are exactly what the belief math consumed.
            self._last_evidence = {
                "count": state.bin_count,
                "p_empty": (p_empty if p_empty is not None
                            else params.p_empty_up),
            }
        return state.belief.update(state.bin_count, p_empty)

    def _explain_bin(self, key: int, state: _StreamBlockState,
                     bin_start: float, was_up: bool, is_up: bool) -> None:
        """Track the belief trajectory; record threshold crossings.

        Called only when provenance is on.  The evidence dict staged by
        :meth:`_update_belief` (or the fusion layer's override) is
        attached verbatim — those are the very floats the update
        consumed, which is what makes the event bit-for-bit auditable.
        """
        trajectory = self._trajectories.get(key)
        if trajectory is None:
            trajectory = deque(maxlen=EXPLAIN_TRAJECTORY_BINS)
            self._trajectories[key] = trajectory
        trajectory.append((bin_start, state.belief.belief))
        if was_up == is_up:
            return
        event: Dict[str, Any] = {
            "event": "transition",
            "block": key,
            "time": state.next_bin_end,
            "bin_start": bin_start,
            "is_up": is_up,
            "belief": state.belief.belief,
            "trajectory": list(trajectory),
        }
        if self._last_evidence is not None:
            event.update(self._last_evidence)
        self._record_event(event)

    def _close_bin(self, key: int, state: _StreamBlockState) -> None:
        params = state.params
        was_up = state.belief.is_up
        bin_start = state.next_bin_end - params.bin_seconds
        trips_before = state.belief.guardrail_trips
        update_clock = (_time.perf_counter()
                        if self.metrics.enabled else None)
        is_up = self._update_belief(key, state, bin_start)
        if update_clock is not None:
            self._m_belief.observe(_time.perf_counter() - update_clock)
        if self.explain.enabled:
            self._explain_bin(key, state, bin_start, was_up, is_up)
        # Guardrail trips are accounted the moment they happen (delta
        # against the belief state's running total) so the health report
        # and the metrics registry can never disagree mid-run.
        trip_delta = state.belief.guardrail_trips - trips_before
        if trip_delta:
            self.guardrails.trip("neutralised_bin", trip_delta)
        self._m_bins.inc()
        self._m_lag.set(self._last_time - state.next_bin_end)
        self._m_clock.set(self._last_time)
        if was_up and not is_up:
            self._m_down.inc()
            # Refined outage start: just after the last packet seen.
            mean_gap = (1.0 / state.history.mean_rate
                        if state.history.mean_rate > 0 else params.bin_seconds)
            guard = min(self.refinement.guard_gaps * mean_gap,
                        params.bin_seconds)
            max_backfill = (self.refinement.max_backfill_bins
                            * params.bin_seconds)
            if state.last_packet is not None:
                refined = max(state.last_packet + guard,
                              bin_start - max_backfill)
            else:
                refined = bin_start
            state.transitions.append((min(refined, state.next_bin_end), False))
        elif not was_up and is_up:
            self._m_up.inc()
            # Refined recovery: the first packet of the reviving bin,
            # pulled back one forward-recurrence time (see
            # events.refine_timeline) so durations stay unbiased.
            if state.first_packet_this_bin is not None:
                mean_gap = (1.0 / state.history.mean_rate
                            if state.history.mean_rate > 0
                            else params.bin_seconds)
                guard = min(self.refinement.guard_gaps * mean_gap,
                            params.bin_seconds)
                recovery = state.first_packet_this_bin - guard
            else:
                recovery = bin_start
            state.transitions.append((recovery, True))
        state.bin_count = 0
        state.first_packet_this_bin = None
        self.windows_closed += 1
        swap = self._pending_swaps.pop(key, None)
        if swap is not None:
            # The boundary just closed is where the retuned model takes
            # over; the new bin grid restarts from it.
            self._apply_swap(key, state, swap[0], swap[1],
                             state.next_bin_end)
        else:
            state.next_bin_end += params.bin_seconds

"""Per-block historical traffic models — the P(a) of the poster.

Training observes a clean window of traffic and summarises each block as
a :class:`BlockHistory`: its mean arrival rate, inter-arrival spread,
burstiness, and an optional diurnal profile.  Everything the per-block
parameter tuner (:mod:`repro.core.parameters`) and the belief engine
(:mod:`repro.core.belief`) need is derived from this summary, which is
what "customising parameters for each block" means in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from ..traffic.rates import DensityClass, classify_rate
from .health import BlockDataError

__all__ = ["BlockHistory", "train_history", "train_histories"]

#: Number of slots in the learned diurnal profile (one per hour).
DIURNAL_SLOTS = 24


@dataclass
class BlockHistory:
    """Learned traffic summary for one block.

    ``mean_rate`` is arrivals/second over the training window.
    ``burstiness`` is the index of dispersion of per-minute counts
    (1 for Poisson, larger for clumped traffic); the parameter planner
    widens its safety margins for bursty blocks.
    ``diurnal_profile`` holds 24 multiplicative hour-of-day factors
    (mean 1) when the training window is long enough to estimate them.
    """

    mean_rate: float
    observed_count: int
    training_seconds: float
    median_gap: float
    p95_gap: float
    max_gap: float = 0.0
    burstiness: float = 1.0
    diurnal_profile: Optional[np.ndarray] = None
    #: multiplicative day-of-week factors (7 slots, mean 1); learned
    #: only when training spans at least a full week.
    weekly_profile: Optional[np.ndarray] = None

    @property
    def density(self) -> DensityClass:
        """Dense/sparse/unmeasurable label for reporting."""
        return classify_rate(self.mean_rate)

    def expected_rate_at(self, time: float) -> float:
        """Rate adjusted by the learned hour-of-day and day-of-week
        factors (where learned)."""
        rate = self.mean_rate
        if self.diurnal_profile is not None:
            hour = int((time % 86400.0) // 3600.0) % DIURNAL_SLOTS
            rate *= float(self.diurnal_profile[hour])
        if self.weekly_profile is not None:
            day = int((time % (7 * 86400.0)) // 86400.0) % 7
            rate *= float(self.weekly_profile[day])
        return rate

    def min_rate(self) -> float:
        """A conservative (off-peak) rate for empty-bin probabilities.

        Using a shrunk diurnal trough instead of the mean keeps the bin
        *tuner* from promising temporal precision the block cannot
        deliver around the clock.
        """
        if self.diurnal_profile is None:
            return self.mean_rate
        trough = float(self.diurnal_profile.min())
        # Shrink toward flat: a noisy trough estimate should not tank
        # the whole block's tuning.
        return self.mean_rate * (0.5 * trough + 0.5)

    def empty_bin_probability(self, bin_seconds: float) -> float:
        """P(no arrivals in a bin | block up), at the trough rate.

        Burstiness inflates the effective probability: clumped traffic
        leaves more empty bins than a Poisson stream of the same mean.
        The sqrt tempering is an empirical variance correction for
        MMPP-like clumping.
        """
        effective_rate = self.min_rate() / max(1.0, np.sqrt(self.burstiness))
        return float(np.exp(-effective_rate * bin_seconds))

    def likelihood_rate_at(self, time: float) -> float:
        """Hour-aware rate used by the belief *likelihood* at ``time``.

        Above-average hours are shrunk toward the mean (a noisy peak
        estimate must not manufacture down-evidence), while
        below-average hours are taken at face value — at a genuine
        nightly trough an empty bin is expected and carries no evidence.
        Burstiness tempering matches :meth:`empty_bin_probability`.
        """
        if self.diurnal_profile is None:
            factor = 1.0
        else:
            raw = float(
                self.diurnal_profile[int((time % 86400.0) // 3600.0) % 24])
            factor = raw if raw < 1.0 else 0.75 * raw + 0.25
        if self.weekly_profile is not None:
            raw_week = float(
                self.weekly_profile[int((time % (7 * 86400.0))
                                        // 86400.0) % 7])
            factor *= raw_week if raw_week < 1.0 else 0.75 * raw_week + 0.25
        return self.mean_rate * factor / max(1.0, np.sqrt(self.burstiness))

    def empty_bin_probability_at(self, time: float,
                                 bin_seconds: float) -> float:
        """Hour-aware P(empty bin | up) for the bin starting at ``time``."""
        return float(np.exp(-self.likelihood_rate_at(time) * bin_seconds))

    def likelihood_rates(self, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`likelihood_rate_at` over bin-start times."""
        base = self.mean_rate / max(1.0, np.sqrt(self.burstiness))
        times = np.asarray(times)
        if self.diurnal_profile is None:
            factor = np.ones(times.shape)
        else:
            hours = ((times % 86400.0) // 3600.0).astype(int) % 24
            raw = self.diurnal_profile[hours]
            factor = np.where(raw < 1.0, raw, 0.75 * raw + 0.25)
        if self.weekly_profile is not None:
            days = ((times % (7 * 86400.0)) // 86400.0).astype(int) % 7
            raw_week = self.weekly_profile[days]
            factor = factor * np.where(raw_week < 1.0, raw_week,
                                       0.75 * raw_week + 0.25)
        return base * factor


def train_history(times: np.ndarray, start: float, end: float,
                  learn_diurnal: bool = True) -> BlockHistory:
    """Summarise one block's training arrivals over ``[start, end)``.

    Raises :class:`~repro.core.health.BlockDataError` on poisoned input
    (non-finite or unsorted timestamps): a history trained on corrupt
    arrivals would mistune every downstream parameter, so the block
    must be quarantined instead — the pipeline's per-block supervised
    scope turns this exception into a dead-letter entry.
    """
    if not (np.isfinite(start) and np.isfinite(end)):
        raise ValueError("training window bounds must be finite")
    span = end - start
    if not span > 0:
        raise ValueError("training window must have positive span")
    times = np.asarray(times, dtype=float)
    bad = ~np.isfinite(times)
    if bad.any():
        raise BlockDataError(
            f"{int(bad.sum())} of {times.size} training timestamps are "
            f"non-finite (first at index {int(np.flatnonzero(bad)[0])})")
    if times.size >= 2 and np.any(np.diff(times) < 0):
        raise BlockDataError("training timestamps are not sorted")
    times = times[(times >= start) & (times < end)]
    count = int(times.size)
    mean_rate = count / span

    if count >= 2:
        gaps = np.diff(times)
        median_gap = float(np.median(gaps))
        p95_gap = float(np.quantile(gaps, 0.95))
        max_gap = float(gaps.max())
    else:
        median_gap = span
        p95_gap = span
        max_gap = span

    burstiness = 1.0
    if count >= 30:
        minute_bins = np.bincount(((times - start) // 60.0).astype(np.int64),
                                  minlength=int(span // 60.0) or 1)
        mean_count = minute_bins.mean()
        if mean_count > 0:
            burstiness = max(1.0, float(minute_bins.var() / mean_count))

    profile = None
    if learn_diurnal and span >= 86400.0 and count >= 240:
        hours = ((times % 86400.0) // 3600.0).astype(np.int64)
        hour_counts = np.bincount(hours, minlength=DIURNAL_SLOTS).astype(float)
        hours_observed = span / 86400.0  # full days cover each slot equally
        hour_rates = hour_counts / (3600.0 * hours_observed)
        if hour_rates.mean() > 0:
            # Stored raw (mean 1); consumers apply their own shrinkage:
            # the tuner shrinks the trough, the likelihood shrinks peaks.
            profile = hour_rates / hour_rates.mean()

    weekly = None
    if learn_diurnal and span >= 7 * 86400.0 and count >= 7 * 100:
        days = ((times % (7 * 86400.0)) // 86400.0).astype(np.int64)
        day_counts = np.bincount(days, minlength=7).astype(float)
        weeks_observed = span / (7 * 86400.0)
        day_rates = day_counts / (86400.0 * weeks_observed)
        if day_rates.mean() > 0:
            weekly = day_rates / day_rates.mean()
    return BlockHistory(
        mean_rate=mean_rate,
        observed_count=count,
        training_seconds=span,
        median_gap=median_gap,
        p95_gap=p95_gap,
        max_gap=max_gap,
        burstiness=burstiness,
        diurnal_profile=profile,
        weekly_profile=weekly,
    )


def train_histories(per_block: Mapping[int, np.ndarray], start: float,
                    end: float, learn_diurnal: bool = True
                    ) -> Dict[int, BlockHistory]:
    """Train a :class:`BlockHistory` for every block in the mapping."""
    return {
        key: train_history(times, start, end, learn_diurnal)
        for key, times in per_block.items()
    }

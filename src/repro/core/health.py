"""Fault containment: dead-letter quarantine, error budget, run health.

The compute path used to be all-or-nothing: one pathological block — a
NaN count, a `p_empty_up` of exactly 1, a history with corrupt
timestamps — aborted training or detection for the *entire* population.
At the ROADMAP's target scale (millions of blocks from feeds the
operator does not control) that failure mode is unacceptable: a single
bad series must degrade to a *skipped* series, not a crashed job.

This module provides the vocabulary the pipeline, the detectors, and
the CLI share to make that happen:

* :class:`DeadLetterRegistry` — the quarantine.  Every block whose
  training, tuning, or detection raised (or violated a numerical
  invariant) is recorded with its stage, the exception, and a digest of
  the offending inputs, so an operator can replay exactly what broke
  without trawling the raw feed.
* :class:`ErrorBudget` — the circuit breaker.  Quarantining protects
  the run from a bad block, but *silently* quarantining everything is
  its own failure (a poisoned model, a decoder bug).  Above a
  configurable quarantine fraction the run fails loudly with
  :class:`ErrorBudgetExceeded` instead.
* :class:`GuardrailCounters` — trip accounting for the numerical
  guardrails in :mod:`repro.core.belief`: every neutralised NaN count,
  masked matrix row, and clamped degenerate parameter is counted, so
  "the run passed" and "the run passed because guardrails absorbed ten
  thousand poisoned bins" are distinguishable.
* :class:`RunHealthReport` — the artefact.  Per-stage timings and
  attempted/succeeded/quarantined accounting, the dead letters, the
  guardrail trips, and any sentinel quarantine windows, as one
  JSON-serialisable document emitted by ``PassiveOutagePipeline``,
  ``StreamingDetector.finalize``, and the ``detect``/``live`` CLI.

This module sits at the bottom of :mod:`repro.core` and imports nothing
from it, so every core layer may depend on it without cycles.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BlockDataError",
    "ErrorBudgetExceeded",
    "ErrorBudget",
    "DeadLetterEntry",
    "DeadLetterRegistry",
    "GuardrailCounters",
    "StageStats",
    "ShardAttemptRecord",
    "CoverageReport",
    "SourceHealth",
    "RunHealthReport",
    "fold_lost_coverage",
    "inputs_digest",
]


class BlockDataError(ValueError):
    """One block's input data violates an invariant (non-finite
    timestamps, unsorted arrivals, impossible parameters).

    Raised *per block* so the supervised scopes in the pipeline can
    quarantine the offender and continue; it never signals a run-level
    problem.
    """


class ErrorBudgetExceeded(RuntimeError):
    """Too large a fraction of the population was quarantined.

    Carries the accounting so callers (and the CLI's distinct exit
    code) can report precisely how the budget tripped.
    """

    def __init__(self, stage: str, attempted: int, quarantined: int,
                 max_fraction: float) -> None:
        self.stage = stage
        self.attempted = attempted
        self.quarantined = quarantined
        self.max_fraction = max_fraction
        #: the run's health report, attached by callers that have one
        #: so the operator still gets the accounting on a tripped run.
        self.report: Optional["RunHealthReport"] = None
        fraction = quarantined / attempted if attempted else 1.0
        super().__init__(
            f"{stage}: quarantined {quarantined}/{attempted} blocks "
            f"({fraction:.1%}), above the error budget of "
            f"{max_fraction:.1%} — refusing to report a run this "
            f"degraded as success")

    @property
    def fraction(self) -> float:
        return (self.quarantined / self.attempted if self.attempted
                else 1.0)


@dataclass(frozen=True)
class ErrorBudget:
    """Quarantine-fraction circuit breaker.

    ``max_quarantine_frac`` is the largest tolerable fraction of
    attempted blocks landing in the dead-letter registry; exactly *at*
    the threshold is still within budget.  A fraction of 1.0 disables
    the breaker (every block may fail individually without failing the
    run).
    """

    max_quarantine_frac: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_quarantine_frac <= 1.0:
            raise ValueError("max_quarantine_frac must be in [0, 1]")

    def check(self, stage: str, attempted: int, quarantined: int) -> None:
        """Raise :class:`ErrorBudgetExceeded` when over budget."""
        if attempted <= 0 or quarantined <= 0:
            return
        if self.max_quarantine_frac >= 1.0:
            return
        if quarantined / attempted > self.max_quarantine_frac:
            raise ErrorBudgetExceeded(stage, attempted, quarantined,
                                      self.max_quarantine_frac)


def inputs_digest(values: Any) -> str:
    """Deterministic fingerprint of a block's offending inputs.

    Summarises rather than copies (the inputs may be megabytes of
    timestamps): element count, finite count, and a short blake2b of
    the raw bytes, enough to match a dead letter to its source data
    and to spot two blocks poisoned identically.
    """
    try:
        array = np.asarray(values)
    except Exception:  # truly malformed inputs still deserve a digest
        text = repr(values).encode("utf-8", "replace")
        return f"repr:{hashlib.blake2b(text, digest_size=6).hexdigest()}"
    if array.dtype == object or array.dtype.kind in "US":
        text = repr(values).encode("utf-8", "replace")
        return f"repr:{hashlib.blake2b(text, digest_size=6).hexdigest()}"
    finite = int(np.isfinite(array).sum()) if array.size else 0
    blob = np.ascontiguousarray(array).tobytes()
    digest = hashlib.blake2b(blob, digest_size=6).hexdigest()
    return f"n={array.size},finite={finite},blake2b={digest}"


@dataclass(frozen=True)
class DeadLetterEntry:
    """One quarantined block: who, where, why, and on what data."""

    block_key: int
    stage: str
    error_type: str
    error: str
    digest: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "block_key": self.block_key,
            "stage": self.stage,
            "error_type": self.error_type,
            "error": self.error,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DeadLetterEntry":
        return cls(
            block_key=int(data["block_key"]),
            stage=str(data["stage"]),
            error_type=str(data["error_type"]),
            error=str(data["error"]),
            digest=str(data.get("digest", "")),
        )


class DeadLetterRegistry:
    """Structured quarantine for blocks the run could not process.

    Append-only; a block may accumulate entries from several stages
    (history poisoned at train time *and* counts poisoned at detect
    time) but counts once toward the error budget.
    """

    def __init__(self,
                 entries: Optional[Iterable[DeadLetterEntry]] = None) -> None:
        self.entries: List[DeadLetterEntry] = list(entries or ())
        self._metric: Optional[Any] = None

    def bind(self, counter_family: Any,
             backfill: bool = True) -> "DeadLetterRegistry":
        """Mirror every record into an obs counter labelled by stage.

        The registry stays the source of truth for the health report;
        binding makes ``record`` the *single* write path for both, so
        the report and the metrics snapshot cannot drift (asserted by
        the chaos suite).  ``backfill`` pushes already-recorded entries
        into the counter; pass False when the counter values were
        restored separately (checkpoint resume).
        """
        self._metric = counter_family
        if backfill:
            for entry in self.entries:
                counter_family.labels(stage=entry.stage).inc()
        return self

    def record(self, stage: str, block_key: int, error: BaseException,
               inputs: Any = None) -> DeadLetterEntry:
        """Quarantine one block with the exception that condemned it."""
        entry = DeadLetterEntry(
            block_key=int(block_key),
            stage=stage,
            error_type=type(error).__name__,
            error=str(error),
            digest="" if inputs is None else inputs_digest(inputs),
        )
        self.entries.append(entry)
        if self._metric is not None:
            self._metric.labels(stage=stage).inc()
        return entry

    def keys(self) -> List[int]:
        """Distinct quarantined block keys, sorted."""
        return sorted({entry.block_key for entry in self.entries})

    def by_stage(self, stage: str) -> List[DeadLetterEntry]:
        return [entry for entry in self.entries if entry.stage == stage]

    def __len__(self) -> int:
        return len({entry.block_key for entry in self.entries})

    def __contains__(self, block_key: int) -> bool:
        return any(entry.block_key == block_key for entry in self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def extend(self, other: "DeadLetterRegistry") -> None:
        self.entries.extend(other.entries)
        if self._metric is not None:
            for entry in other.entries:
                self._metric.labels(stage=entry.stage).inc()

    def canonicalize(self) -> None:
        """Re-order entries into the canonical (merge-stable) order.

        Entries sort by (block key, stage, error type, message, digest).
        Shard workers discover dead letters in whatever order their
        bin-size groups iterate, so two different shardings of the same
        population record the same *set* of entries in different
        orders; merging sorts canonically so the merged registry — and
        everything derived from it (health report, ``--health-report``
        JSON) — is identical regardless of shard composition.
        """
        self.entries.sort(key=lambda e: (e.block_key, e.stage,
                                         e.error_type, e.error, e.digest))

    @classmethod
    def merged(cls, registries: Iterable["DeadLetterRegistry"]
               ) -> "DeadLetterRegistry":
        """Union of several registries, in canonical entry order."""
        merged = cls()
        for registry in registries:
            merged.entries.extend(registry.entries)
        merged.canonicalize()
        return merged

    def as_dict(self) -> List[Dict[str, Any]]:
        return [entry.as_dict() for entry in self.entries]

    @classmethod
    def from_dict(cls, data: Sequence[Dict[str, Any]]
                  ) -> "DeadLetterRegistry":
        return cls(DeadLetterEntry.from_dict(entry) for entry in data)


class GuardrailCounters:
    """Trip counts for the numerical guardrails, keyed by guard name.

    Known keys (others may appear as guards are added):

    * ``nonfinite_count`` — a NaN/inf bin count neutralised to
      no-evidence;
    * ``negative_count`` — a negative bin count neutralised;
    * ``masked_row`` — a whole block row masked out of the vectorised
      belief pass;
    * ``degenerate_p_empty`` — a p_empty_up at/beyond {0, 1} clamped;
    * ``nonfinite_parameter`` — a non-finite parameter vector entry
      detected in the vectorised pass;
    * ``nonfinite_timestamp`` — a non-finite arrival timestamp rejected
      at an ingest boundary.
    """

    def __init__(self, counts: Optional[Dict[str, int]] = None) -> None:
        self._counts: Dict[str, int] = dict(counts or {})
        self._metric: Optional[Any] = None

    def bind(self, counter_family: Any,
             backfill: bool = True) -> "GuardrailCounters":
        """Mirror every trip into an obs counter labelled by guard.

        Makes ``trip`` the single write path for the health report and
        the metrics registry (see :meth:`DeadLetterRegistry.bind`).
        ``backfill=False`` skips pushing existing counts, for resume
        paths where the counter was restored from a snapshot.
        """
        self._metric = counter_family
        if backfill:
            for guard, count in self._counts.items():
                counter_family.labels(guard=guard).inc(count)
        return self

    def trip(self, guard: str, count: int = 1) -> None:
        if count:
            self._counts[guard] = self._counts.get(guard, 0) + int(count)
            if self._metric is not None:
                self._metric.labels(guard=guard).inc(int(count))

    def count(self, guard: str) -> int:
        return self._counts.get(guard, 0)

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    def merge(self, other: "GuardrailCounters") -> None:
        for guard, count in other._counts.items():
            self.trip(guard, count)

    def as_dict(self) -> Dict[str, int]:
        return {guard: self._counts[guard] for guard in sorted(self._counts)}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "GuardrailCounters":
        return cls({str(k): int(v) for k, v in data.items()})

    def __bool__(self) -> bool:
        return self.total > 0

    def __repr__(self) -> str:
        return f"GuardrailCounters({self.as_dict()!r})"


@dataclass
class StageStats:
    """Accounting for one pipeline stage (train, tune, detect, ...)."""

    name: str
    seconds: float = 0.0
    attempted: int = 0
    succeeded: int = 0
    quarantined: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "attempted": self.attempted,
            "succeeded": self.succeeded,
            "quarantined": self.quarantined,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StageStats":
        return cls(
            name=str(data["name"]),
            seconds=float(data.get("seconds", 0.0)),
            attempted=int(data.get("attempted", 0)),
            succeeded=int(data.get("succeeded", 0)),
            quarantined=int(data.get("quarantined", 0)),
        )


@dataclass
class ShardAttemptRecord:
    """One supervised execution unit's attempt history.

    ``unit`` is the shard's lineage id (``"00003"`` for a root shard,
    ``"00003.0.1"`` for the right half of its left half after two
    bisections); ``outcomes`` lists every attempt's verdict in order
    (``ok``, ``crash``, ``hang``, ``oom``, ``error``); ``status`` is
    where the unit ended up: ``done`` (delivered), ``bisected`` (split
    after exhausting retries), ``lost`` (a single block that kept
    killing its worker), or ``pending`` (the run stopped mid-unit).
    """

    unit: str
    outcomes: List[str] = field(default_factory=list)
    status: str = "pending"

    def as_dict(self) -> Dict[str, Any]:
        return {"unit": self.unit, "outcomes": list(self.outcomes),
                "status": self.status}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardAttemptRecord":
        return cls(unit=str(data["unit"]),
                   outcomes=[str(o) for o in data.get("outcomes", [])],
                   status=str(data.get("status", "pending")))


@dataclass
class CoverageReport:
    """Delivery accounting for a supervised (process-isolated) run.

    Distinct from the per-stage quarantine accounting: dead letters say
    "this block's *data* was unusable", coverage says "this block's
    *worker process* kept dying and its result was never delivered".
    A run with ``blocks_lost`` is *degraded*: it completed, its health
    report still accounts for the full population (the lost blocks are
    dead-lettered under ``stage="supervision"``), but the operator must
    know the coverage hole exists — that is what ``--strict-coverage``
    alerts on.
    """

    blocks_planned: int = 0
    blocks_delivered: int = 0
    blocks_lost: List[int] = field(default_factory=list)
    shard_attempts: List[ShardAttemptRecord] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.blocks_lost)

    @property
    def lost_fraction(self) -> float:
        if self.blocks_planned == 0:
            return 0.0
        return len(self.blocks_lost) / self.blocks_planned

    def retry_histogram(self) -> Dict[int, int]:
        """Units by attempt count: ``{n_attempts: n_units}``, sorted."""
        histogram: Dict[int, int] = {}
        for record in self.shard_attempts:
            attempts = len(record.outcomes)
            histogram[attempts] = histogram.get(attempts, 0) + 1
        return {count: histogram[count] for count in sorted(histogram)}

    def as_dict(self) -> Dict[str, Any]:
        return {
            "blocks_planned": self.blocks_planned,
            "blocks_delivered": self.blocks_delivered,
            "blocks_lost": list(self.blocks_lost),
            "shard_attempts": [record.as_dict()
                               for record in self.shard_attempts],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CoverageReport":
        return cls(
            blocks_planned=int(data.get("blocks_planned", 0)),
            blocks_delivered=int(data.get("blocks_delivered", 0)),
            blocks_lost=[int(key) for key in data.get("blocks_lost", [])],
            shard_attempts=[ShardAttemptRecord.from_dict(entry)
                            for entry in data.get("shard_attempts", [])],
        )


@dataclass
class SourceHealth:
    """Per-vantage accounting for a fused (multi-source) run.

    Distinct from block-level dead letters and from the run-level
    sentinel windows: this section says how much each *vantage*
    contributed and how trusted it ended up — a degraded-vantage run is
    visibly degraded (low ``weight``, non-empty ``quarantine_windows``,
    climbing ``gated_bins``), not silently thinner.
    """

    name: str
    observations: int = 0
    #: reliability weight in [0, 1] at the end of the run.
    weight: float = 1.0
    healthy_bins: int = 0
    quiet_bins: int = 0
    #: detector bins whose evidence from this source was dropped
    #: because the vantage was suspect or quarantined at the time.
    gated_bins: int = 0
    quarantine_windows: List[Tuple[float, float]] = field(
        default_factory=list)
    #: blocks this vantage could individually measure (its share of the
    #: fused coverage).
    measurable_blocks: int = 0

    @property
    def quarantined_seconds(self) -> float:
        return sum(e - s for s, e in self.quarantine_windows)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "observations": self.observations,
            "weight": self.weight,
            "healthy_bins": self.healthy_bins,
            "quiet_bins": self.quiet_bins,
            "gated_bins": self.gated_bins,
            "quarantine_windows": [list(pair)
                                   for pair in self.quarantine_windows],
            "measurable_blocks": self.measurable_blocks,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SourceHealth":
        return cls(
            name=str(data["name"]),
            observations=int(data.get("observations", 0)),
            weight=float(data.get("weight", 1.0)),
            healthy_bins=int(data.get("healthy_bins", 0)),
            quiet_bins=int(data.get("quiet_bins", 0)),
            gated_bins=int(data.get("gated_bins", 0)),
            quarantine_windows=[(float(s), float(e))
                                for s, e in
                                data.get("quarantine_windows", [])],
            measurable_blocks=int(data.get("measurable_blocks", 0)),
        )

    def merge(self, other: "SourceHealth") -> None:
        """Fold another shard's view of the same vantage into this one."""
        self.observations += other.observations
        # The most pessimistic surviving weight wins: a vantage judged
        # unreliable anywhere is unreliable for the merged run.
        self.weight = min(self.weight, other.weight)
        self.healthy_bins += other.healthy_bins
        self.quiet_bins += other.quiet_bins
        self.gated_bins += other.gated_bins
        windows = set(map(tuple, self.quarantine_windows))
        windows.update(map(tuple, other.quarantine_windows))
        self.quarantine_windows = sorted(windows)
        self.measurable_blocks = max(self.measurable_blocks,
                                     other.measurable_blocks)


@dataclass
class RunHealthReport:
    """One run's health: stage accounting, quarantine, guardrail trips.

    JSON-serialisable (:meth:`as_dict`/:meth:`to_json`) and restorable
    (:meth:`from_dict`), so it travels inside checkpoints and lands on
    disk via the CLI's ``--health-report``.  ``sentinel_windows`` are
    the vantage sentinel's feed-quarantine intervals, distinct from
    block-level dead letters: the former say "the *observer* was
    unhealthy here", the latter "this *block's data* was unusable".
    """

    run: str = "pipeline"
    stages: List[StageStats] = field(default_factory=list)
    dead_letters: DeadLetterRegistry = field(
        default_factory=DeadLetterRegistry)
    guardrails: GuardrailCounters = field(default_factory=GuardrailCounters)
    sentinel_windows: List[Tuple[float, float]] = field(default_factory=list)
    max_quarantine_frac: float = 1.0
    budget_tripped: bool = False
    #: supervised-run delivery accounting; None for unsupervised runs
    #: (the key is omitted from the serialised document entirely, so
    #: reports from unsupervised runs are byte-identical to older
    #: builds).
    coverage: Optional[CoverageReport] = None
    #: per-vantage accounting for fused runs, keyed by source name;
    #: empty for single-source runs (and omitted from the serialised
    #: document, keeping those reports byte-identical to older builds).
    sources: Dict[str, SourceHealth] = field(default_factory=dict)

    # -- accounting ---------------------------------------------------------

    def stage(self, name: str) -> StageStats:
        """Fetch (or create) the stats row for one stage."""
        for stats in self.stages:
            if stats.name == name:
                return stats
        stats = StageStats(name)
        self.stages.append(stats)
        return stats

    @property
    def blocks_attempted(self) -> int:
        return max((stats.attempted for stats in self.stages), default=0)

    @property
    def blocks_quarantined(self) -> int:
        return len(self.dead_letters)

    @property
    def blocks_succeeded(self) -> int:
        return self.blocks_attempted - self.blocks_quarantined

    @property
    def quarantine_fraction(self) -> float:
        attempted = self.blocks_attempted
        if attempted == 0:
            return 0.0
        return self.blocks_quarantined / attempted

    @classmethod
    def merged(cls, reports: Iterable["RunHealthReport"],
               run: Optional[str] = None,
               max_quarantine_frac: Optional[float] = None,
               ) -> "RunHealthReport":
        """Fold per-shard reports into one population-wide report.

        Stage rows with the same name sum (attempted/succeeded/
        quarantined add exactly; ``seconds`` add too, giving total CPU
        seconds rather than wall time).  Dead letters merge in
        canonical order and guardrail counters add, so the merged
        report is independent of how the population was sharded — and
        because shards partition the keyspace, :meth:`accounts_for`
        holds over the union of the shards' keys exactly when it held
        per shard.  ``budget_tripped`` is left False: the budget is the
        *parent's* decision over the merged population, not any
        shard's.
        """
        reports = list(reports)
        merged = cls(run=(run if run is not None
                          else (reports[0].run if reports else "pipeline")))
        windows: List[Tuple[float, float]] = []
        for report in reports:
            for stats in report.stages:
                row = merged.stage(stats.name)
                row.seconds += stats.seconds
                row.attempted += stats.attempted
                row.succeeded += stats.succeeded
                row.quarantined += stats.quarantined
            merged.guardrails.merge(report.guardrails)
            windows.extend(report.sentinel_windows)
            for name, source in report.sources.items():
                if name in merged.sources:
                    merged.sources[name].merge(source)
                else:
                    merged.sources[name] = SourceHealth.from_dict(
                        source.as_dict())
        merged.dead_letters = DeadLetterRegistry.merged(
            report.dead_letters for report in reports)
        merged.sentinel_windows = sorted(set(windows))
        if max_quarantine_frac is not None:
            merged.max_quarantine_frac = max_quarantine_frac
        elif reports:
            merged.max_quarantine_frac = min(
                report.max_quarantine_frac for report in reports)
        return merged

    def accounts_for(self, keys: Iterable[int]) -> bool:
        """True when every key is either succeeded or dead-lettered.

        The chaos suite's completeness check: no block may silently
        vanish from a run.
        """
        expected = set(keys)
        quarantined = set(self.dead_letters.keys())
        if not quarantined <= expected:
            return False  # quarantined a block that was never attempted
        if self.blocks_attempted != len(expected):
            return False
        return self.blocks_succeeded == len(expected - quarantined)

    # -- serialisation ------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        document = {
            "run": self.run,
            "stages": [stats.as_dict() for stats in self.stages],
            "dead_letters": self.dead_letters.as_dict(),
            "guardrails": self.guardrails.as_dict(),
            "sentinel_windows": [list(pair)
                                 for pair in self.sentinel_windows],
            "max_quarantine_frac": self.max_quarantine_frac,
            "budget_tripped": self.budget_tripped,
            "blocks_attempted": self.blocks_attempted,
            "blocks_succeeded": self.blocks_succeeded,
            "blocks_quarantined": self.blocks_quarantined,
        }
        if self.coverage is not None:
            document["coverage"] = self.coverage.as_dict()
        if self.sources:
            document["sources"] = {name: self.sources[name].as_dict()
                                   for name in sorted(self.sources)}
        return document

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=1)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunHealthReport":
        return cls(
            run=str(data.get("run", "pipeline")),
            stages=[StageStats.from_dict(entry)
                    for entry in data.get("stages", [])],
            dead_letters=DeadLetterRegistry.from_dict(
                data.get("dead_letters", [])),
            guardrails=GuardrailCounters.from_dict(
                data.get("guardrails", {})),
            sentinel_windows=[(float(s), float(e))
                              for s, e in data.get("sentinel_windows", [])],
            max_quarantine_frac=float(data.get("max_quarantine_frac", 1.0)),
            budget_tripped=bool(data.get("budget_tripped", False)),
            coverage=(CoverageReport.from_dict(data["coverage"])
                      if data.get("coverage") is not None else None),
            sources={str(name): SourceHealth.from_dict(entry)
                     for name, entry in data.get("sources", {}).items()},
        )

    @classmethod
    def from_json(cls, text: str) -> "RunHealthReport":
        return cls.from_dict(json.loads(text))

    def summary(self) -> str:
        """One-line operator summary for CLI output."""
        parts = [f"{self.blocks_succeeded}/{self.blocks_attempted} blocks ok"]
        if self.blocks_quarantined:
            parts.append(f"{self.blocks_quarantined} quarantined")
        if self.guardrails:
            parts.append(f"{self.guardrails.total} guardrail trips")
        if self.sentinel_windows:
            parts.append(f"{len(self.sentinel_windows)} sentinel windows")
        if self.coverage is not None and self.coverage.degraded:
            parts.append(f"DEGRADED: {len(self.coverage.blocks_lost)} "
                         f"blocks lost to supervision")
        degraded_sources = sorted(
            name for name, source in self.sources.items()
            if source.quarantine_windows or source.weight < 0.5)
        if degraded_sources:
            parts.append("degraded vantages: " + ", ".join(degraded_sources))
        return ", ".join(parts)


def fold_lost_coverage(report: RunHealthReport, stage_name: str,
                       planned: int,
                       lost_errors: Dict[int, BaseException],
                       records: Optional[List[ShardAttemptRecord]],
                       metrics: Any = None) -> None:
    """Fold supervised-run delivery accounting into a merged report.

    Shared by the batch shard supervisor and the partitioned live
    supervisor: lost blocks join the *existing* ``stage_name`` row as
    attempted-and-quarantined (not a separate row — ``blocks_attempted``
    is the max over stage rows, so a parallel row would break
    :meth:`RunHealthReport.accounts_for` over the full population) and
    are dead-lettered under ``stage="supervision"`` through the
    registry's normal ``record`` path, the single write path that keeps
    report and metrics in lockstep.  Must run *after* the merged
    registry is bound to its metric series and *before* the budget
    verdict, so lost blocks are judged by the error budget exactly like
    data-poisoned ones.

    ``lost_errors`` maps each undelivered block key to the supervision
    error that condemned it.  ``records`` is the per-unit attempt
    history; ``None`` means the run was not supervised and the report
    is left untouched.  ``metrics`` (optional — health may not import
    obs) receives a ``supervision_lost_blocks`` gauge.
    """
    if records is None:
        return
    lost_set = set(lost_errors)
    stage = report.stage(stage_name)
    stage.attempted += len(lost_set)
    stage.quarantined += len(lost_set)
    for key in sorted(lost_set):
        report.dead_letters.record("supervision", key, lost_errors[key])
    report.dead_letters.canonicalize()
    report.coverage = CoverageReport(
        blocks_planned=planned,
        blocks_delivered=planned - len(lost_set),
        blocks_lost=sorted(lost_set),
        shard_attempts=records)
    if metrics is not None:
        metrics.gauge(
            "supervision_lost_blocks",
            "Blocks whose supervised workers kept dying; dead-lettered "
            "under stage=supervision").set(len(lost_set))

"""Per-block parameter tuning — the paper's central mechanism.

Prior passive systems run one global change detector over every block;
the paper instead fits parameters *per block*, trading temporal
precision for coverage: a block that reliably fills 5-minute bins is
watched at 5-minute precision, a sparser block at 30-minute precision,
and so on up a ladder of bin sizes, until blocks too quiet for even the
coarsest bin are declared unmeasurable (and become candidates for
*spatial* aggregation instead — :mod:`repro.core.aggregation`).

:class:`TuningPolicy` captures the global knobs (the bin ladder and the
acceptable empty-bin probability); :class:`ParameterPlanner` applies the
policy to trained histories and yields one :class:`BlockParameters` per
block.  :class:`HomogeneousPlanner` deliberately reproduces the prior
systems' one-size-fits-all behaviour for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from .history import BlockHistory

__all__ = ["BlockParameters", "TuningPolicy", "ParameterPlanner",
           "HomogeneousPlanner", "DEFAULT_BIN_LADDER"]

#: Candidate bin sizes in seconds, finest first.  300 s (5 minutes) is
#: the paper's headline temporal precision.
DEFAULT_BIN_LADDER: Tuple[float, ...] = (300.0, 600.0, 1200.0, 1800.0,
                                         3600.0, 7200.0)


@dataclass(frozen=True)
class BlockParameters:
    """Tuned detector parameters for one block.

    ``p_empty_up`` is P(an up block shows an empty bin), evaluated at
    the block's trough rate and burstiness — the likelihood term the
    belief update uses for silence.  ``noise_nonempty`` is P(a *down*
    block still shows a non-empty bin) from spoofed/scanning strays.
    """

    bin_seconds: float
    p_empty_up: float
    noise_nonempty: float
    prior_down: float
    prior_up_recovery: float
    down_threshold: float = 0.1
    up_threshold: float = 0.9
    measurable: bool = True
    #: inter-arrival gap (seconds) beyond which silence alone declares an
    #: outage with exact packet-time edges; ``inf`` disables the gap
    #: detector for blocks whose training history is too thin to trust.
    gap_threshold_seconds: float = float("inf")

    #: probabilities are clamped strictly inside (0, 1) by this margin;
    #: a ``p_empty_up`` of exactly 0 or 1 would zero one side of every
    #: likelihood ratio and make the posterior absorbing.
    PROB_EPS = 1e-9

    def __post_init__(self) -> None:
        if not (np.isfinite(self.bin_seconds) and self.bin_seconds > 0.0):
            raise ValueError(
                f"bin_seconds={self.bin_seconds} must be positive and "
                f"finite (zero-width or non-finite bins cannot index a "
                f"count grid)")
        for name in ("p_empty_up", "noise_nonempty", "prior_down",
                     "prior_up_recovery", "down_threshold", "up_threshold"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")
        if self.down_threshold >= self.up_threshold:
            raise ValueError("down threshold must sit below up threshold")
        if np.isnan(self.gap_threshold_seconds):
            raise ValueError("gap_threshold_seconds must not be NaN "
                             "(use inf to disable the gap detector)")
        # Degenerate-likelihood guard: admit boundary inputs (an
        # untrained or deserialised model may legitimately carry
        # p_empty_up of 0.0 or 1.0) but store them clamped so no
        # downstream likelihood ratio can divide by zero or absorb.
        eps = self.PROB_EPS
        for name in ("p_empty_up", "noise_nonempty"):
            value = getattr(self, name)
            clamped = min(max(value, eps), 1.0 - eps)
            if clamped != value:
                object.__setattr__(self, name, clamped)


@dataclass(frozen=True)
class TuningPolicy:
    """Global knobs of the per-block tuner.

    ``target_empty_prob`` bounds how often an up block may present an
    empty bin: the planner picks the finest ladder bin meeting it.  The
    default 0.02 means a dense, healthy block produces a spurious empty
    bin once per ~25 hours at 5-minute bins — and since a single empty
    bin only dents the belief, the realised false-outage rate is far
    lower.

    ``mean_time_between_failures``/``mean_time_to_repair`` set the
    state-transition priors of the two-state model, scaled per bin.
    """

    bin_ladder: Sequence[float] = DEFAULT_BIN_LADDER
    target_empty_prob: float = 0.02
    mean_time_between_failures: float = 2.0 * 86400.0
    mean_time_to_repair: float = 3600.0
    noise_rate_assumed: float = 1.0 / 36000.0
    #: additional per-block noise proportional to the block's own rate,
    #: for sources with spoofed traffic (darknet IBR): the effective
    #: noise rate is max(noise_rate_assumed, this * mean_rate).
    noise_fraction_of_rate: float = 0.0
    down_threshold: float = 0.1
    up_threshold: float = 0.9
    #: blocks with fewer training arrivals than this are unmeasurable
    #: regardless of rate (no confidence in the estimate).
    min_training_arrivals: int = 10
    #: gap detector: target expected false gap alarms per block per day.
    #: The planner turns this into a per-block multiple of the largest
    #: training gap: with N healthy gaps whose maximum is ~ln(N)/rate, a
    #: threshold of c*max_gap yields ~N^(1-c) false alarms/day, so
    #: c = 1 + ln(1/target)/ln(N).  Dense blocks (large N) get tight
    #: thresholds that resolve 5-minute outages; sparse blocks get the
    #: wide margins their noisy maxima require.  The empirical maximum
    #: absorbs burstiness and diurnal lulls a Poisson model would
    #: misjudge.
    gap_daily_false_target: float = 0.02
    #: never alarm on gaps shorter than this, whatever training says.
    gap_floor_seconds: float = 90.0
    #: minimum training arrivals before the empirical max gap is
    #: trustworthy enough to drive the gap detector.
    min_gap_arrivals: int = 50

    def gap_factor_for(self, observed_gaps: int) -> float:
        """Per-block multiple of the training max gap (see above)."""
        n = max(observed_gaps, 3)
        return 1.0 + float(np.log(1.0 / self.gap_daily_false_target)
                           / np.log(n))

    def __post_init__(self) -> None:
        if not self.bin_ladder:
            raise ValueError("bin ladder cannot be empty")
        if sorted(self.bin_ladder) != list(self.bin_ladder):
            raise ValueError("bin ladder must be sorted finest-first")
        if not 0 < self.target_empty_prob < 1:
            raise ValueError("target_empty_prob must be in (0, 1)")

    def transition_priors(self, bin_seconds: float) -> Tuple[float, float]:
        """Per-bin (P(up->down), P(down->up)) priors."""
        p_down = 1.0 - float(np.exp(-bin_seconds
                                    / self.mean_time_between_failures))
        p_up = 1.0 - float(np.exp(-bin_seconds / self.mean_time_to_repair))
        return p_down, p_up


class ParameterPlanner:
    """Assigns each block the finest workable bin from the ladder."""

    def __init__(self, policy: Optional[TuningPolicy] = None) -> None:
        self.policy = policy or TuningPolicy()

    def plan_block(self, history: BlockHistory) -> BlockParameters:
        """Tune one block from its trained history."""
        policy = self.policy
        chosen_bin: Optional[float] = None
        p_empty = 1.0
        if history.observed_count >= policy.min_training_arrivals:
            for bin_seconds in policy.bin_ladder:
                p_empty = history.empty_bin_probability(bin_seconds)
                if p_empty <= policy.target_empty_prob:
                    chosen_bin = bin_seconds
                    break
        if chosen_bin is None:
            # Unmeasurable: record the coarsest bin for completeness but
            # flag the block so the pipeline routes it to aggregation.
            coarsest = policy.bin_ladder[-1]
            return self._build(history, coarsest,
                               history.empty_bin_probability(coarsest),
                               measurable=False)
        return self._build(history, chosen_bin, p_empty, measurable=True)

    def plan(self, histories: Mapping[int, BlockHistory]
             ) -> Dict[int, BlockParameters]:
        """Tune every block."""
        return {key: self.plan_block(history)
                for key, history in histories.items()}

    def _build(self, history: BlockHistory, bin_seconds: float,
               p_empty: float, measurable: bool) -> BlockParameters:
        policy = self.policy
        p_down, p_up = policy.transition_priors(bin_seconds)
        noise_rate = max(policy.noise_rate_assumed,
                         policy.noise_fraction_of_rate * history.mean_rate)
        noise_nonempty = 1.0 - float(np.exp(-noise_rate * bin_seconds))
        if history.observed_count >= policy.min_gap_arrivals:
            factor = policy.gap_factor_for(history.observed_count - 1)
            gap_threshold = max(factor * history.max_gap,
                                policy.gap_floor_seconds)
        else:
            gap_threshold = float("inf")
        return BlockParameters(
            bin_seconds=bin_seconds,
            p_empty_up=min(p_empty, 1.0 - 1e-9),
            noise_nonempty=max(noise_nonempty, 1e-9),
            prior_down=p_down,
            prior_up_recovery=p_up,
            down_threshold=policy.down_threshold,
            up_threshold=policy.up_threshold,
            measurable=measurable,
            gap_threshold_seconds=gap_threshold,
        )


class HomogeneousPlanner(ParameterPlanner):
    """Ablation planner: one fixed bin size for every block.

    This reproduces the "same parameters across the whole Internet"
    behaviour of prior passive systems.  Blocks whose empty-bin
    probability at the fixed bin exceeds the target are unmeasurable —
    exactly the coverage collapse the paper criticises.
    """

    def __init__(self, bin_seconds: float,
                 policy: Optional[TuningPolicy] = None) -> None:
        super().__init__(policy)
        self.bin_seconds = float(bin_seconds)

    def plan_block(self, history: BlockHistory) -> BlockParameters:
        policy = self.policy
        p_empty = history.empty_bin_probability(self.bin_seconds)
        measurable = (p_empty <= policy.target_empty_prob
                      and history.observed_count
                      >= policy.min_training_arrivals)
        return self._build(history, self.bin_seconds, p_empty, measurable)

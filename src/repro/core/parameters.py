"""Per-block parameter tuning — the paper's central mechanism.

Prior passive systems run one global change detector over every block;
the paper instead fits parameters *per block*, trading temporal
precision for coverage: a block that reliably fills 5-minute bins is
watched at 5-minute precision, a sparser block at 30-minute precision,
and so on up a ladder of bin sizes, until blocks too quiet for even the
coarsest bin are declared unmeasurable (and become candidates for
*spatial* aggregation instead — :mod:`repro.core.aggregation`).

:class:`TuningPolicy` captures the global knobs (the bin ladder and the
acceptable empty-bin probability); :class:`ParameterPlanner` applies the
policy to trained histories and yields one :class:`BlockParameters` per
block.  :class:`HomogeneousPlanner` deliberately reproduces the prior
systems' one-size-fits-all behaviour for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .history import BlockHistory

__all__ = ["BlockParameters", "TuningPolicy", "ParameterPlanner",
           "HomogeneousPlanner", "DEFAULT_BIN_LADDER"]

#: Candidate bin sizes in seconds, finest first.  300 s (5 minutes) is
#: the paper's headline temporal precision.
DEFAULT_BIN_LADDER: Tuple[float, ...] = (300.0, 600.0, 1200.0, 1800.0,
                                         3600.0, 7200.0)


@dataclass(frozen=True)
class BlockParameters:
    """Tuned detector parameters for one block.

    ``p_empty_up`` is P(an up block shows an empty bin), evaluated at
    the block's trough rate and burstiness — the likelihood term the
    belief update uses for silence.  ``noise_nonempty`` is P(a *down*
    block still shows a non-empty bin) from spoofed/scanning strays.
    """

    bin_seconds: float
    p_empty_up: float
    noise_nonempty: float
    prior_down: float
    prior_up_recovery: float
    down_threshold: float = 0.1
    up_threshold: float = 0.9
    measurable: bool = True
    #: inter-arrival gap (seconds) beyond which silence alone declares an
    #: outage with exact packet-time edges; ``inf`` disables the gap
    #: detector for blocks whose training history is too thin to trust.
    gap_threshold_seconds: float = float("inf")

    #: probabilities are clamped strictly inside (0, 1) by this margin;
    #: a ``p_empty_up`` of exactly 0 or 1 would zero one side of every
    #: likelihood ratio and make the posterior absorbing.
    PROB_EPS = 1e-9

    def __post_init__(self) -> None:
        if not (np.isfinite(self.bin_seconds) and self.bin_seconds > 0.0):
            raise ValueError(
                f"bin_seconds={self.bin_seconds} must be positive and "
                f"finite (zero-width or non-finite bins cannot index a "
                f"count grid)")
        for name in ("p_empty_up", "noise_nonempty", "prior_down",
                     "prior_up_recovery", "down_threshold", "up_threshold"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")
        if self.down_threshold >= self.up_threshold:
            raise ValueError("down threshold must sit below up threshold")
        if np.isnan(self.gap_threshold_seconds):
            raise ValueError("gap_threshold_seconds must not be NaN "
                             "(use inf to disable the gap detector)")
        # Degenerate-likelihood guard: admit boundary inputs (an
        # untrained or deserialised model may legitimately carry
        # p_empty_up of 0.0 or 1.0) but store them clamped so no
        # downstream likelihood ratio can divide by zero or absorb.
        eps = self.PROB_EPS
        for name in ("p_empty_up", "noise_nonempty"):
            value = getattr(self, name)
            clamped = min(max(value, eps), 1.0 - eps)
            if clamped != value:
                object.__setattr__(self, name, clamped)


@dataclass(frozen=True)
class TuningPolicy:
    """Global knobs of the per-block tuner.

    ``target_empty_prob`` bounds how often an up block may present an
    empty bin: the planner picks the finest ladder bin meeting it.  The
    default 0.02 means a dense, healthy block produces a spurious empty
    bin once per ~25 hours at 5-minute bins — and since a single empty
    bin only dents the belief, the realised false-outage rate is far
    lower.

    ``mean_time_between_failures``/``mean_time_to_repair`` set the
    state-transition priors of the two-state model, scaled per bin.
    """

    bin_ladder: Sequence[float] = DEFAULT_BIN_LADDER
    target_empty_prob: float = 0.02
    mean_time_between_failures: float = 2.0 * 86400.0
    mean_time_to_repair: float = 3600.0
    noise_rate_assumed: float = 1.0 / 36000.0
    #: additional per-block noise proportional to the block's own rate,
    #: for sources with spoofed traffic (darknet IBR): the effective
    #: noise rate is max(noise_rate_assumed, this * mean_rate).
    noise_fraction_of_rate: float = 0.0
    down_threshold: float = 0.1
    up_threshold: float = 0.9
    #: blocks with fewer training arrivals than this are unmeasurable
    #: regardless of rate (no confidence in the estimate).
    min_training_arrivals: int = 10
    #: gap detector: target expected false gap alarms per block per day.
    #: The planner turns this into a per-block multiple of the largest
    #: training gap: with N healthy gaps whose maximum is ~ln(N)/rate, a
    #: threshold of c*max_gap yields ~N^(1-c) false alarms/day, so
    #: c = 1 + ln(1/target)/ln(N).  Dense blocks (large N) get tight
    #: thresholds that resolve 5-minute outages; sparse blocks get the
    #: wide margins their noisy maxima require.  The empirical maximum
    #: absorbs burstiness and diurnal lulls a Poisson model would
    #: misjudge.
    gap_daily_false_target: float = 0.02
    #: never alarm on gaps shorter than this, whatever training says.
    gap_floor_seconds: float = 90.0
    #: minimum training arrivals before the empirical max gap is
    #: trustworthy enough to drive the gap detector.
    min_gap_arrivals: int = 50

    def gap_factor_for(self, observed_gaps: int) -> float:
        """Per-block multiple of the training max gap (see above)."""
        n = max(observed_gaps, 3)
        return 1.0 + float(np.log(1.0 / self.gap_daily_false_target)
                           / np.log(n))

    def __post_init__(self) -> None:
        if not self.bin_ladder:
            raise ValueError("bin ladder cannot be empty")
        if sorted(self.bin_ladder) != list(self.bin_ladder):
            raise ValueError("bin ladder must be sorted finest-first")
        if not 0 < self.target_empty_prob < 1:
            raise ValueError("target_empty_prob must be in (0, 1)")

    def transition_priors(self, bin_seconds: float) -> Tuple[float, float]:
        """Per-bin (P(up->down), P(down->up)) priors."""
        p_down = 1.0 - float(np.exp(-bin_seconds
                                    / self.mean_time_between_failures))
        p_up = 1.0 - float(np.exp(-bin_seconds / self.mean_time_to_repair))
        return p_down, p_up


class ParameterPlanner:
    """Assigns each block the finest workable bin from the ladder."""

    def __init__(self, policy: Optional[TuningPolicy] = None) -> None:
        self.policy = policy or TuningPolicy()

    def plan_block(self, history: BlockHistory) -> BlockParameters:
        """Tune one block from its trained history."""
        policy = self.policy
        chosen_bin: Optional[float] = None
        p_empty = 1.0
        if history.observed_count >= policy.min_training_arrivals:
            for bin_seconds in policy.bin_ladder:
                p_empty = history.empty_bin_probability(bin_seconds)
                if p_empty <= policy.target_empty_prob:
                    chosen_bin = bin_seconds
                    break
        if chosen_bin is None:
            # Unmeasurable: record the coarsest bin for completeness but
            # flag the block so the pipeline routes it to aggregation.
            coarsest = policy.bin_ladder[-1]
            return self._build(history, coarsest,
                               history.empty_bin_probability(coarsest),
                               measurable=False)
        return self._build(history, chosen_bin, p_empty, measurable=True)

    def plan(self, histories: Mapping[int, BlockHistory]
             ) -> Dict[int, BlockParameters]:
        """Tune every block."""
        return {key: self.plan_block(history)
                for key, history in histories.items()}

    def plan_batch(self, histories: Mapping[int, BlockHistory]
                   ) -> Tuple[Dict[int, BlockParameters],
                              Dict[int, BaseException]]:
        """Vectorised :meth:`plan_block` over a whole population.

        Returns ``(planned, errors)``: every key of ``histories`` lands
        in exactly one of the two dicts.  The batched path replicates
        the scalar planner bit-for-bit — the ladder search, likelihood
        clamps, and gap thresholds are the same float operations
        evaluated as arrays — so ``planned[key] == plan_block(history)``
        field-for-field.  Histories with non-finite summaries (and any
        planner subclass that overrides :meth:`plan_block` or
        :meth:`_build`, or a policy whose derived priors fall outside
        the validated ranges) fall back to the scalar path so exception
        types, messages, and per-block quarantine behaviour are
        preserved exactly.
        """
        planned: Dict[int, BlockParameters] = {}
        errors: Dict[int, BaseException] = {}
        if not histories:
            return planned, errors
        policy = self.policy
        vectorisable = (
            type(self).plan_block is ParameterPlanner.plan_block
            and type(self)._build is ParameterPlanner._build)
        ladder = np.asarray(policy.bin_ladder, dtype=float)
        if vectorisable:
            vectorisable = bool(np.isfinite(ladder).all()
                                and (ladder > 0.0).all()
                                and 0.0 <= policy.down_threshold <= 1.0
                                and 0.0 <= policy.up_threshold <= 1.0
                                and policy.down_threshold
                                < policy.up_threshold)
        priors: Dict[float, Tuple[float, float]] = {}
        if vectorisable:
            for bin_seconds in ladder:
                p_down, p_up = self.policy.transition_priors(
                    float(bin_seconds))
                if not (0.0 <= p_down <= 1.0 and 0.0 <= p_up <= 1.0):
                    vectorisable = False
                    break
                priors[float(bin_seconds)] = (p_down, p_up)
        if not vectorisable:
            for key, history in histories.items():
                try:
                    planned[key] = self.plan_block(history)
                except Exception as error:
                    errors[key] = error
            return planned, errors

        keys = list(histories.keys())
        rows = list(histories.values())
        n = len(rows)
        min_rate = np.zeros(n)
        burst = np.zeros(n)
        mean_rate = np.zeros(n)
        max_gap = np.zeros(n)
        observed = np.zeros(n, dtype=np.int64)
        clean = np.zeros(n, dtype=bool)
        diurnal_rows: List[int] = []
        diurnal_profiles: List[Any] = []
        for i, history in enumerate(rows):
            try:
                # Inlined BlockHistory.min_rate (same float ops): the
                # gather loop is the batch planner's only per-row
                # Python cost, so method-call overhead matters here.
                # Diurnal troughs are deferred so all profiles reduce
                # in one stacked ``min`` (min commutes with the exact
                # float64 promotion, so the result is bit-identical).
                min_rate[i] = history.mean_rate
                profile = history.diurnal_profile
                if profile is not None:
                    diurnal_rows.append(i)
                    diurnal_profiles.append(profile)
                burst[i] = history.burstiness
                mean_rate[i] = history.mean_rate
                max_gap[i] = history.max_gap
                observed[i] = history.observed_count
                clean[i] = True
            except Exception:
                clean[i] = False
        if diurnal_profiles:
            try:
                stacked = np.stack(diurnal_profiles)
                if stacked.ndim != 2:
                    raise ValueError("profiles are not 1-D")
                troughs = stacked.min(axis=1)
                factors = 0.5 * troughs + 0.5
                min_rate[diurnal_rows] = (min_rate[diurnal_rows]
                                          * factors)
            except Exception:
                # Ragged or malformed profiles: reduce row by row so a
                # raising profile demotes only its own block to the
                # scalar path (preserving its exact exception there).
                for row, profile in zip(diurnal_rows, diurnal_profiles):
                    try:
                        trough = float(profile.min())
                        min_rate[row] *= 0.5 * trough + 0.5
                    except Exception:
                        clean[row] = False
        clean &= (np.isfinite(min_rate) & np.isfinite(burst)
                  & np.isfinite(mean_rate) & np.isfinite(max_gap))

        with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
            effective = min_rate / np.maximum(1.0, np.sqrt(burst))
            # One exp per (block, ladder step); identical to the scalar
            # search because the chosen column's product/exp are the
            # same float64 operations the scalar path performs.
            p_ladder = np.exp(-(effective[:, None] * ladder[None, :]))
            meets = p_ladder <= policy.target_empty_prob
            has_choice = meets.any(axis=1)
            first = np.argmax(meets, axis=1)
            trained = observed >= policy.min_training_arrivals
            measurable = trained & has_choice
            column = np.where(measurable, first, ladder.size - 1)
            bin_chosen = ladder[column]
            p_empty = p_ladder[np.arange(n), column]
            noise_rate = np.maximum(
                policy.noise_rate_assumed,
                policy.noise_fraction_of_rate * mean_rate)
            noise_nonempty = 1.0 - np.exp(-noise_rate * bin_chosen)
            factor = 1.0 + (np.log(1.0 / policy.gap_daily_false_target)
                            / np.log(np.maximum(observed - 1, 3)))
            gap = np.where(observed >= policy.min_gap_arrivals,
                           np.maximum(factor * max_gap,
                                      policy.gap_floor_seconds),
                           np.inf)
            # Compose _build's pre-clamp with __post_init__'s epsilon
            # clamp; the result is field-identical to the constructor.
            eps = BlockParameters.PROB_EPS
            p_empty_up = np.minimum(np.maximum(p_empty, eps), 1.0 - eps)
            noise_final = np.minimum(np.maximum(noise_nonempty, eps),
                                     1.0 - eps)

        # ``tolist`` converts whole columns to Python scalars in one C
        # call, and filling the (pre-``__init__``) instance ``__dict__``
        # directly sidesteps the frozen-dataclass ``__setattr__`` once
        # per field — together the dominant cost of this loop.
        bin_list = bin_chosen.tolist()
        p_empty_list = p_empty_up.tolist()
        noise_list = noise_final.tolist()
        gap_list = gap.tolist()
        measurable_list = measurable.tolist()
        clean_list = clean.tolist()
        down_threshold = policy.down_threshold
        up_threshold = policy.up_threshold
        new = object.__new__
        cls = BlockParameters
        for i, key in enumerate(keys):
            if not clean_list[i]:
                try:
                    planned[key] = self.plan_block(rows[i])
                except Exception as error:
                    errors[key] = error
                continue
            bin_value = bin_list[i]
            p_down, p_up = priors[bin_value]
            block = new(cls)
            block.__dict__.update(
                bin_seconds=bin_value,
                p_empty_up=p_empty_list[i],
                noise_nonempty=noise_list[i],
                prior_down=p_down,
                prior_up_recovery=p_up,
                down_threshold=down_threshold,
                up_threshold=up_threshold,
                measurable=measurable_list[i],
                gap_threshold_seconds=gap_list[i])
            planned[key] = block
        return planned, errors

    def _build(self, history: BlockHistory, bin_seconds: float,
               p_empty: float, measurable: bool) -> BlockParameters:
        policy = self.policy
        p_down, p_up = policy.transition_priors(bin_seconds)
        noise_rate = max(policy.noise_rate_assumed,
                         policy.noise_fraction_of_rate * history.mean_rate)
        noise_nonempty = 1.0 - float(np.exp(-noise_rate * bin_seconds))
        if history.observed_count >= policy.min_gap_arrivals:
            factor = policy.gap_factor_for(history.observed_count - 1)
            gap_threshold = max(factor * history.max_gap,
                                policy.gap_floor_seconds)
        else:
            gap_threshold = float("inf")
        return BlockParameters(
            bin_seconds=bin_seconds,
            p_empty_up=min(p_empty, 1.0 - 1e-9),
            noise_nonempty=max(noise_nonempty, 1e-9),
            prior_down=p_down,
            prior_up_recovery=p_up,
            down_threshold=policy.down_threshold,
            up_threshold=policy.up_threshold,
            measurable=measurable,
            gap_threshold_seconds=gap_threshold,
        )


class HomogeneousPlanner(ParameterPlanner):
    """Ablation planner: one fixed bin size for every block.

    This reproduces the "same parameters across the whole Internet"
    behaviour of prior passive systems.  Blocks whose empty-bin
    probability at the fixed bin exceeds the target are unmeasurable —
    exactly the coverage collapse the paper criticises.
    """

    def __init__(self, bin_seconds: float,
                 policy: Optional[TuningPolicy] = None) -> None:
        super().__init__(policy)
        self.bin_seconds = float(bin_seconds)

    def plan_block(self, history: BlockHistory) -> BlockParameters:
        policy = self.policy
        p_empty = history.empty_bin_probability(self.bin_seconds)
        measurable = (p_empty <= policy.target_empty_prob
                      and history.observed_count
                      >= policy.min_training_arrivals)
        return self._build(history, self.bin_seconds, p_empty, measurable)

"""Vantage-health sentinel: is the *observer* alive, or the observed?

The passive detector's core inference — "silence means down" — has a
fatal confound: if the vantage point itself stops capturing (service
restart, capture-buffer stall, uplink failure), every block goes silent
*simultaneously* and the naive detector reports a false mass outage.
Trinocular faces the dual problem with probe loss; Disco must separate
controller-side disconnections from real outages.  The passive
equivalent is this sentinel.

The disambiguating signal is aggregate arrival rate across *all*
blocks: a real outage, even a large one, removes a subset of the feed,
while an observer failure removes essentially all of it.  The sentinel
bins the aggregate feed coarsely (default: one minute), learns the
expected per-bin volume online (EWMA over healthy bins, or a fixed
``expected_rate`` when the operator knows it), and declares a
**quarantine** when consecutive bins fall below a small fraction of
expectation.  Between "dead" and "healthy" sits a grey zone: a bin far
under its baseline but clearly not empty is judged **depressed** — a
brownout, reported to the bin listener (so fused reliability weights
sag) without opening a quarantine.  Quarantined windows are padded by
a margin on both sides
— the detector's edge refinement places outage starts just after the
last packet seen, which for a feed gap is just *before* the gap — and
per-block down-time overlapping a quarantine is retracted by
:meth:`repro.timeline.Timeline.without_down`.

The sentinel deliberately judges volume, not block identity: it must
stay O(1) per packet at full feed rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..timeline import Interval, Timeline, merge_intervals

__all__ = ["SentinelConfig", "VantageSentinel", "suppress_quarantined"]


def suppress_quarantined(timeline: Timeline,
                         quarantined: List[Interval]) -> Timeline:
    """Retract down-time attributable to observer failure.

    A down interval whose *onset* falls inside a quarantine window was
    triggered by the feed gap, so the whole interval is retracted even
    where it outlasts the window (belief recovery lags the feed's
    return).  A down interval that began while the feed was healthy is
    genuine; only its quarantined middle is clipped out, preserving the
    verdicts on either side.
    """
    windows = merge_intervals(quarantined)
    if not windows:
        return timeline
    keep = [
        (s, e) for s, e in timeline.down_intervals
        if not any(q_start <= s < q_end for q_start, q_end in windows)
    ]
    return Timeline(timeline.start, timeline.end, keep).without_down(windows)


@dataclass(frozen=True)
class SentinelConfig:
    """Tuning knobs for the vantage-health monitor.

    ``quiet_fraction`` is the fraction of the expected per-bin volume
    below which a bin counts as quiet; ``min_quiet_bins`` consecutive
    quiet bins open a quarantine (one quiet minute is routine, several
    in a row at a busy vantage point are not).  ``depressed_fraction``
    marks the grey zone above quiet: a judgeable bin below this
    fraction of expectation (but not quiet) is *depressed* — the feed
    is flowing yet far under its baseline, a brownout rather than a
    death.  Depressed bins never open quarantines and never feed the
    learned baseline (a sustained brownout must not teach the sentinel
    that a trickle is normal); they are reported to the bin listener so
    the fusion layer's reliability weight can sag.  Setting it equal to
    ``quiet_fraction`` disables the grey zone.  ``min_expected_count``
    guards against judging a feed too sparse to judge: below this
    expected per-bin volume an empty bin carries no evidence about the
    observer.  ``margin_seconds`` pads each quarantine on both sides;
    ``ewma_alpha``/``warmup_bins`` control online rate learning when no
    ``expected_rate`` is given.
    """

    bin_seconds: float = 60.0
    quiet_fraction: float = 0.05
    min_quiet_bins: int = 2
    depressed_fraction: float = 0.5
    min_expected_count: float = 5.0
    margin_seconds: Optional[float] = None
    expected_rate: Optional[float] = None
    ewma_alpha: float = 0.1
    warmup_bins: int = 5

    def __post_init__(self) -> None:
        if self.bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        if not 0.0 < self.quiet_fraction < 1.0:
            raise ValueError("quiet_fraction must be in (0, 1)")
        if self.min_quiet_bins < 1:
            raise ValueError("min_quiet_bins must be >= 1")
        if not self.quiet_fraction <= self.depressed_fraction < 1.0:
            raise ValueError(
                "depressed_fraction must be in [quiet_fraction, 1)")

    @property
    def margin(self) -> float:
        return (self.bin_seconds if self.margin_seconds is None
                else self.margin_seconds)


class VantageSentinel:
    """Aggregate-feed health monitor with quarantine bookkeeping.

    Feed it every observation's timestamp (any family, any block — the
    whole tap) via :meth:`observe`, and the wall clock via
    :meth:`advance` so a totally dead feed is still judged.  Query
    :meth:`quarantined_intervals` or attach the sentinel to a
    :class:`~repro.core.detector.StreamingDetector`, whose ``finalize``
    retracts per-block down-time overlapping quarantines.
    """

    def __init__(self, start: float,
                 config: Optional[SentinelConfig] = None) -> None:
        self.config = config or SentinelConfig()
        self.start = float(start)
        self._bin_start = float(start)
        self._bin_count = 0
        self._bins_closed = 0
        self._healthy_bins = 0
        self._ewma_count: Optional[float] = None
        self._quiet_run_start: Optional[float] = None
        self._quiet_run_bins = 0
        self._closed: List[Interval] = []
        self.quarantined_bins = 0
        self._m_entered: Optional[Any] = None
        self._m_exited: Optional[Any] = None
        self._m_expected: Optional[Any] = None
        self._bin_listener: Optional[
            Callable[[float, bool, bool], None]] = None

    def set_bin_listener(
            self,
            listener: Optional[Callable[[float, bool, bool], None]]) -> None:
        """Register a callback fired once per closed bin.

        Called as ``listener(bin_start, quiet, depressed)`` immediately
        after the bin's health verdict lands — the fusion layer's
        reliability tracker hangs off this to learn a per-vantage trust
        weight with exact per-bin ordering.  At most one of ``quiet``
        and ``depressed`` is true.  Not serialised: re-attach after
        :meth:`from_dict`.
        """
        self._bin_listener = listener

    def bind_metrics(self, metrics: Any) -> "VantageSentinel":
        """Mirror quarantine decisions into a metrics registry.

        Registers ``sentinel_quarantine_entered_total`` /
        ``sentinel_quarantine_exited_total`` counters and the
        ``sentinel_expected_bin_count`` gauge.  Counters reflect
        decisions made *after* binding only; cumulative continuity
        across restarts comes from the checkpointed registry snapshot,
        not from replaying sentinel state.
        """
        self._m_entered = metrics.counter(
            "sentinel_quarantine_entered_total",
            "Feed-quarantine windows opened by the vantage sentinel")
        self._m_exited = metrics.counter(
            "sentinel_quarantine_exited_total",
            "Feed-quarantine windows closed (feed recovered)")
        self._m_expected = metrics.gauge(
            "sentinel_expected_bin_count",
            "Learned expected arrivals per sentinel bin (0 = warming up)")
        return self

    # -- feeding ------------------------------------------------------------

    def observe(self, time: float) -> None:
        """Count one arrival (monotone non-decreasing time expected)."""
        self._close_bins_to(time)
        self._bin_count += 1

    def observe_bulk(self, time: float, count: int) -> None:
        """Count ``count`` simultaneous arrivals at ``time``.

        Offline replays feed pre-binned aggregate counts through this
        (one call per sentinel bin instead of one per packet); the
        resulting sentinel state is identical to per-packet feeding of
        the same arrivals.
        """
        self._close_bins_to(time)
        self._bin_count += int(count)

    def advance(self, now: float) -> None:
        """Close bins up to wall-clock ``now`` (judges total silence)."""
        self._close_bins_to(now)

    # -- judging ------------------------------------------------------------

    @property
    def expected_bin_count(self) -> Optional[float]:
        """Expected arrivals per sentinel bin, or None while warming up."""
        config = self.config
        if config.expected_rate is not None:
            return config.expected_rate * config.bin_seconds
        if (self._ewma_count is None
                or self._healthy_bins < config.warmup_bins):
            return None
        return self._ewma_count

    @property
    def bins_closed(self) -> int:
        """Total sentinel bins judged so far (healthy, quiet, or warmup).

        Monotone counter; the fusion layer's reliability tracker diffs
        it between observations to learn how many health verdicts have
        landed since it last looked.
        """
        return self._bins_closed

    @property
    def suspect_since(self) -> Optional[float]:
        """Start of the current quiet run, or None while the feed looks
        healthy.

        Set from the *first* quiet bin — before ``min_quiet_bins``
        confirms a quarantine — so evidence gating can stop trusting a
        vantage the moment its feed goes suspiciously silent rather
        than one confirmation lag later.  A warm-up or unjudgeable bin
        never opens a run.
        """
        return self._quiet_run_start

    @property
    def suspect(self) -> bool:
        """True while a quiet run is open (possible vantage failure)."""
        return self._quiet_run_start is not None

    def quarantined_intervals(self) -> List[Interval]:
        """Merged quarantine windows decided so far (margins applied)."""
        intervals = list(self._closed)
        if (self._quiet_run_start is not None
                and self._quiet_run_bins >= self.config.min_quiet_bins):
            intervals.append((self._quiet_run_start - self.config.margin,
                              self._bin_start + self.config.margin))
        return merge_intervals(intervals)

    def is_quarantined(self, time: float) -> bool:
        return any(s <= time < e for s, e in self.quarantined_intervals())

    def quarantined_seconds(self) -> float:
        return sum(e - s for s, e in self.quarantined_intervals())

    def apply(self, timeline: Timeline) -> Timeline:
        """Retract down-time overlapping quarantines from a timeline."""
        return suppress_quarantined(timeline, self.quarantined_intervals())

    # -- checkpointing ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able state (config + counters) for checkpointing."""
        config = self.config
        return {
            "config": {
                "bin_seconds": config.bin_seconds,
                "quiet_fraction": config.quiet_fraction,
                "min_quiet_bins": config.min_quiet_bins,
                "depressed_fraction": config.depressed_fraction,
                "min_expected_count": config.min_expected_count,
                "margin_seconds": config.margin_seconds,
                "expected_rate": config.expected_rate,
                "ewma_alpha": config.ewma_alpha,
                "warmup_bins": config.warmup_bins,
            },
            "start": self.start,
            "bin_start": self._bin_start,
            "bin_count": self._bin_count,
            "bins_closed": self._bins_closed,
            "healthy_bins": self._healthy_bins,
            "ewma_count": self._ewma_count,
            "quiet_run_start": self._quiet_run_start,
            "quiet_run_bins": self._quiet_run_bins,
            "closed": [list(pair) for pair in self._closed],
            "quarantined_bins": self.quarantined_bins,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VantageSentinel":
        sentinel = cls(float(data["start"]),
                       SentinelConfig(**data["config"]))
        sentinel._bin_start = float(data["bin_start"])
        sentinel._bin_count = int(data["bin_count"])
        sentinel._bins_closed = int(data["bins_closed"])
        sentinel._healthy_bins = int(data["healthy_bins"])
        ewma = data.get("ewma_count")
        sentinel._ewma_count = None if ewma is None else float(ewma)
        quiet = data.get("quiet_run_start")
        sentinel._quiet_run_start = None if quiet is None else float(quiet)
        sentinel._quiet_run_bins = int(data["quiet_run_bins"])
        sentinel._closed = [(float(s), float(e)) for s, e in data["closed"]]
        sentinel.quarantined_bins = int(data["quarantined_bins"])
        return sentinel

    # -- internals ----------------------------------------------------------

    def _close_bins_to(self, now: float) -> None:
        config = self.config
        while self._bin_start + config.bin_seconds <= now:
            self._close_bin()

    def _close_bin(self) -> None:
        config = self.config
        count = self._bin_count
        closed_bin_start = self._bin_start
        expected = self.expected_bin_count
        judgeable = (expected is not None
                     and expected >= config.min_expected_count)
        quiet = judgeable and count < config.quiet_fraction * expected
        depressed = (judgeable and not quiet
                     and count < config.depressed_fraction * expected)
        if quiet:
            if self._quiet_run_start is None:
                self._quiet_run_start = self._bin_start
            self._quiet_run_bins += 1
            self.quarantined_bins += 1
            if (self._quiet_run_bins == config.min_quiet_bins
                    and self._m_entered is not None):
                self._m_entered.inc()
        else:
            if (self._quiet_run_start is not None
                    and self._quiet_run_bins >= config.min_quiet_bins):
                self._closed.append(
                    (self._quiet_run_start - config.margin,
                     self._bin_start + config.margin))
                if self._m_exited is not None:
                    self._m_exited.inc()
            self._quiet_run_start = None
            self._quiet_run_bins = 0
            # Learn the expected volume from healthy bins only, so a
            # long feed gap cannot drag the baseline to zero and mask
            # itself.  Warmup bins carry no quarantine evidence (the
            # sentinel cannot judge before the baseline exists), and
            # they must contribute none: a bin that is suspiciously
            # quiet against the baseline learned *so far* is neither
            # folded into the EWMA nor counted toward warmup, so an
            # outage in progress at cold start cannot poison the
            # baseline it will later be judged against.
            if config.expected_rate is None:
                ewma = self._ewma_count
                if ewma is None:
                    # Seed only from a bin that actually saw traffic: a
                    # sentinel started mid-outage would otherwise learn
                    # "zero is normal" and stay unjudgeable forever.
                    if count > 0:
                        self._healthy_bins += 1
                        self._ewma_count = float(count)
                elif (ewma >= config.min_expected_count
                        and count < config.depressed_fraction * ewma):
                    # Suspicious or depressed bin: no learning, no
                    # credit — a sustained brownout must not drag the
                    # baseline down to its own trickle and erase itself.
                    pass
                else:
                    self._healthy_bins += 1
                    alpha = config.ewma_alpha
                    self._ewma_count = ewma + alpha * (count - ewma)
        self._bins_closed += 1
        self._bin_count = 0
        self._bin_start += config.bin_seconds
        if self._bin_listener is not None:
            self._bin_listener(closed_bin_start, bool(quiet),
                               bool(depressed))
        if self._m_expected is not None:
            expected_now = self.expected_bin_count
            self._m_expected.set(expected_now
                                 if expected_now is not None else 0.0)

"""Bayesian belief over block state — the B(a) of the poster.

A block is modelled as a two-state (up/down) hidden Markov chain
observed through its traffic: each time bin yields a count, and the
belief B(a) = P(up | history) is filtered forward bin by bin.

Likelihoods use presence/absence of traffic, which is robust to rate
misestimation: the informative observation is an *empty* bin, whose
probability under "up" is the tuned ``p_empty_up`` and under "down" is
``1 - noise_nonempty`` (spoofed strays aside, a down block is silent).
For non-empty bins the count magnitude is additionally informative for
blocks with meaningful rates (many packets cannot be noise), handled by
a capped count-likelihood ratio.

Two implementations are provided and tested against each other:

* :class:`BeliefState` — scalar, streaming, one block;
* :func:`vector_belief_pass` — the whole population at once as numpy
  recurrences over a (blocks x bins) count matrix, used by the batch
  detector so a simulated day over tens of thousands of blocks filters
  in milliseconds.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from .health import BlockDataError, GuardrailCounters
from .parameters import BlockParameters

__all__ = ["BeliefState", "vector_belief_pass", "guarded_belief_pass",
           "bin_log_likelihood_ratio", "fused_posterior",
           "fused_belief_pass", "BELIEF_FLOOR", "BELIEF_CEIL"]

#: Belief clamp bounds; keep strictly inside (0, 1) so evidence can
#: always move the posterior back (no absorbing states).
BELIEF_FLOOR = 1e-6
BELIEF_CEIL = 1.0 - 1e-6

#: Cap on the per-bin likelihood ratio contributed by count magnitude.
#: Prevents a single flood bin from pinning the posterior so hard that
#: a genuine outage takes many bins to surface.
_COUNT_RATIO_CAP = 1e6

#: Probability clamp for degenerate likelihood parameters.  A
#: ``p_empty_up`` of exactly 0 or 1 makes one of the likelihood terms
#: vanish and the posterior absorbing; clamping strictly inside (0, 1)
#: keeps every bin's evidence finite and reversible.
_PROB_EPS = 1e-9


@dataclass
class BeliefState:
    """Streaming belief filter for one block.

    Tracks the posterior ``belief`` and a hysteresis ``is_up`` decision:
    the state flips down when belief falls below the down threshold and
    back up when it exceeds the up threshold, so beliefs wandering the
    middle ground do not flap.
    """

    params: BlockParameters
    belief: float = BELIEF_CEIL
    is_up: bool = True
    #: numerical-guardrail trips absorbed by this block (NaN/inf counts
    #: neutralised, degenerate likelihoods clamped); surfaced by the
    #: streaming detector's run health report.
    guardrail_trips: int = 0

    def update(self, count: int,
               p_empty_up: Optional[float] = None) -> bool:
        """Consume one bin's arrival count; returns the new up/down state.

        ``p_empty_up`` overrides the tuned empty-bin likelihood for this
        bin — the streaming detector passes the diurnal-aware value of
        :meth:`repro.core.history.BlockHistory.empty_bin_probability_at`.

        Numerical guardrails: a non-finite or negative ``count`` is
        neutralised to a no-evidence bin (prediction only), and a
        degenerate ``p_empty_up`` (at or beyond 0/1) is clamped strictly
        inside (0, 1); both increment :attr:`guardrail_trips`.  A
        non-finite ``p_empty_up`` raises :class:`BlockDataError` — the
        block's model itself is poisoned and the caller must quarantine,
        not filter on garbage.
        """
        params = self.params
        p_empty = (params.p_empty_up if p_empty_up is None
                   else p_empty_up)
        if not np.isfinite(p_empty):
            raise BlockDataError(
                f"non-finite p_empty_up {p_empty!r}: block model is "
                f"poisoned (bad history or parameters)")
        if not (np.isfinite(params.noise_nonempty)
                and np.isfinite(params.prior_down)
                and np.isfinite(params.prior_up_recovery)):
            # Matches the vectorised pass, which masks (and the detector
            # quarantines) rows with non-finite parameters; silently
            # filtering on garbage would diverge from it.
            raise BlockDataError(
                "non-finite likelihood/prior parameters: block model is "
                "poisoned (bad history or parameters)")
        if p_empty <= 0.0 or p_empty >= 1.0:
            p_empty = min(max(p_empty, _PROB_EPS), 1.0 - _PROB_EPS)
            self.guardrail_trips += 1
        count_valid = np.isfinite(count) and count >= 0
        if not count_valid:
            self.guardrail_trips += 1
        # Prediction step: apply the state-transition prior.
        belief = (self.belief * (1.0 - params.prior_down)
                  + (1.0 - self.belief) * params.prior_up_recovery)
        # Correction step: weigh the observation.  A poisoned count is
        # no evidence either way (likelihood 1 under both states).
        if not count_valid:
            likelihood_up = 1.0
            likelihood_down = 1.0
        elif count == 0:
            likelihood_up = p_empty
            likelihood_down = 1.0 - params.noise_nonempty
        else:
            # Arrivals are near-proof of up even in a quiet hour (floor),
            # and multiple packets make "noise" exponentially less
            # plausible: one extra factor of 1/8 per extra packet, capped.
            likelihood_up = max(1.0 - p_empty, 1e-3)
            likelihood_down = params.noise_nonempty * max(
                8.0 ** -(count - 1), 1.0 / _COUNT_RATIO_CAP)
        numerator = belief * likelihood_up
        denominator = numerator + (1.0 - belief) * likelihood_down
        belief = numerator / denominator if denominator > 0 else belief
        self.belief = float(np.clip(belief, BELIEF_FLOOR, BELIEF_CEIL))
        if self.is_up and self.belief <= params.down_threshold:
            self.is_up = False
        elif not self.is_up and self.belief >= params.up_threshold:
            self.is_up = True
        return self.is_up


def vector_belief_pass(
    counts: np.ndarray,
    p_empty_up: np.ndarray,
    noise_nonempty: np.ndarray,
    prior_down: np.ndarray,
    prior_up_recovery: np.ndarray,
    down_threshold: float = 0.1,
    up_threshold: float = 0.9,
    initial_belief: Optional[np.ndarray] = None,
    return_beliefs: bool = False,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Filter a whole population of blocks at once.

    Parameters
    ----------
    counts:
        ``(n_blocks, n_bins)`` arrival counts; all blocks in one call
        must share a bin size (the detector groups them so).
    p_empty_up:
        P(empty bin | up): either a per-block vector of length
        ``n_blocks`` or a ``(n_blocks, n_bins)`` matrix for
        time-varying (diurnal-aware) likelihoods.
    noise_nonempty, prior_down, prior_up_recovery:
        per-block parameter vectors of length ``n_blocks``.
    return_beliefs:
        also return the full ``(n_blocks, n_bins)`` belief trajectory
        (debugging / plotting; costs memory).

    Returns
    -------
    (states, beliefs):
        ``states`` is a boolean ``(n_blocks, n_bins)`` matrix of the
        hysteresis up/down decision after each bin; ``beliefs`` is the
        trajectory or None.

    Poisoned inputs (non-finite counts or parameters) are masked rather
    than propagated — see :func:`guarded_belief_pass` for the variant
    that also reports *which* rows were poisoned.
    """
    states, beliefs, _ = guarded_belief_pass(
        counts, p_empty_up, noise_nonempty, prior_down, prior_up_recovery,
        down_threshold=down_threshold, up_threshold=up_threshold,
        initial_belief=initial_belief, return_beliefs=return_beliefs)
    return states, beliefs


def guarded_belief_pass(
    counts: np.ndarray,
    p_empty_up: np.ndarray,
    noise_nonempty: np.ndarray,
    prior_down: np.ndarray,
    prior_up_recovery: np.ndarray,
    down_threshold: float = 0.1,
    up_threshold: float = 0.9,
    initial_belief: Optional[np.ndarray] = None,
    return_beliefs: bool = False,
    guardrails: Optional[GuardrailCounters] = None,
    metrics: Optional[Any] = None,
) -> Tuple[np.ndarray, Optional[np.ndarray], np.ndarray]:
    """:func:`vector_belief_pass` plus poisoned-row accounting.

    The vectorised recurrence is elementwise per block, but one NaN in
    a count matrix historically produced NaN beliefs for that row and
    (worse) NaN comparisons that silently decided "up" forever.  Here
    every poisoned input is detected up front and *masked*:

    * a non-finite or negative count entry becomes a no-evidence bin
      (likelihood 1 under both states — prediction only), mirroring the
      scalar :meth:`BeliefState.update` guardrail;
    * a degenerate likelihood (``p_empty_up`` at/beyond 0 or 1) is
      clamped strictly inside (0, 1);
    * a block whose *parameters* are non-finite cannot be filtered at
      all: its row is pinned to "up" (no events) and flagged.

    Returns ``(states, beliefs, poisoned_rows)`` where
    ``poisoned_rows`` is a boolean ``(n_blocks,)`` mask of rows whose
    counts or parameters contained poison.  Callers that care about
    containment (the batch detector) quarantine flagged rows into the
    dead-letter registry; results for those rows are placeholders, not
    verdicts.  ``guardrails``, when given, accumulates trip counts.

    ``metrics``, when given, records the pass duration into the
    ``belief_pass_seconds`` histogram and the bins filtered into
    ``belief_bins_total``; with a disabled (no-op) registry the only
    cost is two no-op calls — the obs overhead benchmark pins it
    within noise of the uninstrumented pass.
    """
    guardrails = guardrails if guardrails is not None else GuardrailCounters()
    pass_clock = (_time.perf_counter()
                  if metrics is not None and metrics.enabled else None)
    counts = np.asarray(counts)
    if counts.ndim != 2:
        raise ValueError("counts must be (n_blocks, n_bins)")
    n_blocks, n_bins = counts.shape
    p_empty_up = np.asarray(p_empty_up, dtype=float)
    if p_empty_up.shape not in ((n_blocks,), (n_blocks, n_bins)):
        raise ValueError(
            f"p_empty_up must be ({n_blocks},) or ({n_blocks}, {n_bins})")
    for name, vector in (("noise_nonempty", noise_nonempty),
                         ("prior_down", prior_down),
                         ("prior_up_recovery", prior_up_recovery)):
        if np.shape(vector) != (n_blocks,):
            raise ValueError(f"{name} must have shape ({n_blocks},)")

    # -- guardrails: find and neutralise poison up front ----------------
    if counts.dtype.kind == "f":
        bad_counts = ~np.isfinite(counts)
        negative = counts < 0  # NaN compares False, so disjoint from bad
    else:
        bad_counts = np.zeros(counts.shape, dtype=bool)
        negative = counts < 0
    invalid_counts = bad_counts | negative
    guardrails.trip("nonfinite_count", int(bad_counts.sum()))
    guardrails.trip("negative_count", int(negative.sum()))

    noise_nonempty = np.asarray(noise_nonempty, dtype=float)
    prior_down = np.asarray(prior_down, dtype=float)
    prior_up_recovery = np.asarray(prior_up_recovery, dtype=float)
    bad_params = (~np.isfinite(noise_nonempty) | ~np.isfinite(prior_down)
                  | ~np.isfinite(prior_up_recovery))
    if p_empty_up.ndim == 2:
        bad_params |= ~np.isfinite(p_empty_up).all(axis=1)
    else:
        bad_params |= ~np.isfinite(p_empty_up)
    guardrails.trip("nonfinite_parameter", int(bad_params.sum()))

    degenerate = np.isfinite(p_empty_up) & ((p_empty_up <= 0.0)
                                            | (p_empty_up >= 1.0))
    guardrails.trip("degenerate_p_empty", int(degenerate.sum()))
    if degenerate.any():
        p_empty_up = np.clip(p_empty_up, _PROB_EPS, 1.0 - _PROB_EPS)

    poisoned = bad_params | invalid_counts.any(axis=1)
    guardrails.trip("masked_row", int(poisoned.sum()))

    if bad_params.any():
        # Substitute inert values so the recurrence stays finite; the
        # row is pinned to "up" afterwards regardless.
        p_fill = 0.5
        if p_empty_up.ndim == 2:
            p_empty_up = np.where(bad_params[:, None],
                                  p_fill, np.nan_to_num(p_empty_up, nan=p_fill))
        else:
            p_empty_up = np.where(bad_params, p_fill,
                                  np.nan_to_num(p_empty_up, nan=p_fill))
        noise_nonempty = np.where(bad_params, 0.5,
                                  np.nan_to_num(noise_nonempty, nan=0.5))
        prior_down = np.where(bad_params, 0.0,
                              np.nan_to_num(prior_down, nan=0.0))
        prior_up_recovery = np.where(bad_params, 0.0,
                                     np.nan_to_num(prior_up_recovery, nan=0.0))
    if invalid_counts.any():
        counts = np.where(invalid_counts, 0, counts)

    belief = np.full(n_blocks, BELIEF_CEIL)
    if initial_belief is not None:
        belief = np.clip(np.asarray(initial_belief, dtype=float),
                         BELIEF_FLOOR, BELIEF_CEIL).copy()
    up = np.ones(n_blocks, dtype=bool)
    states = np.empty((n_blocks, n_bins), dtype=bool)
    beliefs = np.empty((n_blocks, n_bins)) if return_beliefs else None

    empty_down = 1.0 - noise_nonempty
    time_varying = p_empty_up.ndim == 2

    for bin_index in range(n_bins):
        column = counts[:, bin_index]
        empty = column == 0
        masked = invalid_counts[:, bin_index]
        p_empty = p_empty_up[:, bin_index] if time_varying else p_empty_up
        # Prediction.
        belief = belief * (1.0 - prior_down) + (1.0 - belief) * prior_up_recovery
        # Correction.  A non-empty bin is near-proof of up even when the
        # expected rate is tiny (quiet hour): floor its likelihood well
        # above the noise term so arrivals always push toward up.  A
        # masked (poisoned) entry carries no evidence either way.
        likelihood_up = np.where(empty, p_empty,
                                 np.maximum(1.0 - p_empty, 1e-3))
        extra = np.maximum(column - 1, 0)
        count_discount = np.maximum(
            np.power(8.0, -extra.astype(float)), 1.0 / _COUNT_RATIO_CAP)
        likelihood_down = np.where(empty, empty_down,
                                   noise_nonempty * count_discount)
        if masked.any():
            likelihood_up = np.where(masked, 1.0, likelihood_up)
            likelihood_down = np.where(masked, 1.0, likelihood_down)
        numerator = belief * likelihood_up
        denominator = numerator + (1.0 - belief) * likelihood_down
        safe = denominator > 0
        belief = np.where(safe, numerator / np.where(safe, denominator, 1.0),
                          belief)
        np.clip(belief, BELIEF_FLOOR, BELIEF_CEIL, out=belief)
        # Hysteresis decision.
        up = np.where(up, belief > down_threshold, belief >= up_threshold)
        states[:, bin_index] = up
        if beliefs is not None:
            beliefs[:, bin_index] = belief
    if bad_params.any():
        # A row filtered on substitute parameters is not a verdict: pin
        # it "up" so no phantom events leak out should a caller ignore
        # the mask.  Rows poisoned only through their counts keep the
        # neutralised trajectory — bit-identical to the scalar filter's
        # no-evidence handling — and are reported for quarantine.
        states[bad_params] = True
        if beliefs is not None:
            beliefs[bad_params] = BELIEF_CEIL
    if metrics is not None:
        # The fused pass counts source-bins (n_sources x blocks x bins),
        # so the two passes write incomparable units; the ``path`` label
        # keeps each series a like-for-like baseline.
        metrics.counter(
            "belief_bins_total",
            "Bins filtered by the vectorised belief pass",
            labelnames=("path",)).labels(path="single").inc(
                n_blocks * n_bins)
        if pass_clock is not None:
            metrics.histogram(
                "belief_pass_seconds",
                "Wall-time of one vectorised belief pass",
                labelnames=("path",)).labels(path="single").observe(
                    _time.perf_counter() - pass_clock)
    return states, beliefs, poisoned


# -- multi-source evidence fusion -------------------------------------------
#
# With several vantages the correction step generalises naturally in
# log-odds space: each source contributes an independent per-bin
# log-likelihood ratio log P(count|up)/P(count|down) under *its own*
# likelihood parameters, scaled by a reliability weight in [0, 1].
# Weight 1 is full Bayesian trust, weight 0 removes the source from the
# update entirely (prediction only), and intermediate weights temper a
# vantage whose recent health history is shaky — a soft version of the
# sentinel's hard quarantine that degrades evidence before the failure
# is confirmed and restores it gradually afterwards.


def bin_log_likelihood_ratio(count: float, p_empty_up: float,
                             noise_nonempty: float) -> float:
    """One bin's evidence, log P(count | up) / P(count | down).

    Uses the same presence/absence likelihoods and capped count
    discount as :meth:`BeliefState.update`, with the same guardrails: a
    non-finite likelihood parameter raises :class:`BlockDataError`
    (poisoned model), a degenerate ``p_empty_up`` is clamped strictly
    inside (0, 1), and a non-finite or negative count is no evidence
    (ratio 0).
    """
    if not (np.isfinite(p_empty_up) and np.isfinite(noise_nonempty)):
        raise BlockDataError(
            f"non-finite likelihood parameters (p_empty_up={p_empty_up!r}, "
            f"noise_nonempty={noise_nonempty!r}): source model is poisoned")
    p_empty = min(max(p_empty_up, _PROB_EPS), 1.0 - _PROB_EPS)
    noise = min(max(noise_nonempty, _PROB_EPS), 1.0 - _PROB_EPS)
    if not (np.isfinite(count) and count >= 0):
        return 0.0
    if count == 0:
        return float(np.log(p_empty) - np.log(1.0 - noise))
    likelihood_up = max(1.0 - p_empty, 1e-3)
    likelihood_down = noise * max(8.0 ** -(count - 1), 1.0 / _COUNT_RATIO_CAP)
    return float(np.log(likelihood_up) - np.log(likelihood_down))


def fused_posterior(belief: float, weighted_llr: float, prior_down: float,
                    prior_up_recovery: float) -> float:
    """One fused filter step: transition prior, then log-odds evidence.

    ``weighted_llr`` is the sum over sources of ``weight_s * llr_s``
    for the bin.  Equivalent to :meth:`BeliefState.update`'s
    prediction+correction when a single source contributes at weight 1
    (up to floating-point rounding of the log/exp round trip).
    """
    if not np.isfinite(weighted_llr):
        raise BlockDataError(
            f"non-finite fused evidence {weighted_llr!r}: a source "
            f"likelihood is poisoned")
    predicted = (belief * (1.0 - prior_down)
                 + (1.0 - belief) * prior_up_recovery)
    predicted = min(max(predicted, BELIEF_FLOOR), BELIEF_CEIL)
    log_odds = np.log(predicted) - np.log1p(-predicted) + weighted_llr
    posterior = 1.0 / (1.0 + np.exp(-log_odds))
    return float(np.clip(posterior, BELIEF_FLOOR, BELIEF_CEIL))


def fused_belief_pass(
    counts_by_source: Sequence[np.ndarray],
    p_empty_by_source: Sequence[np.ndarray],
    noise_by_source: Sequence[np.ndarray],
    weights_by_source: Sequence[np.ndarray],
    prior_down: np.ndarray,
    prior_up_recovery: np.ndarray,
    down_threshold: float = 0.1,
    up_threshold: float = 0.9,
    initial_belief: Optional[np.ndarray] = None,
    return_beliefs: bool = False,
    guardrails: Optional[GuardrailCounters] = None,
    metrics: Optional[Any] = None,
) -> Tuple[np.ndarray, Optional[np.ndarray], np.ndarray]:
    """Vectorised multi-source filter over a shared bin grid.

    Each source ``s`` supplies a ``(n_blocks, n_bins)`` count matrix,
    per-block likelihood parameters (``p_empty`` as a vector or a
    time-varying matrix, ``noise_nonempty`` as a vector), and a
    reliability-weight array — ``(n_bins,)`` when the weight applies to
    the whole population (vantage health is a property of the observer,
    not of any single block), or ``(n_blocks, n_bins)`` when some
    blocks do not participate in a source at all (the per-bin health
    weight times a 0/1 participation mask).  Transition priors and
    hysteresis thresholds are shared (the lead source's per-block
    tuning).

    Guardrail semantics mirror :func:`guarded_belief_pass` per source:
    poisoned count entries contribute zero evidence, a block with
    non-finite parameters in *any* contributing source is pinned "up"
    and flagged in the returned ``poisoned_rows`` mask.

    A bin in which *every* source is gated (zero weight) for a block is
    evidence-free and freezes that block's belief and verdict — the
    transition prior does not run, so a fully-blinded stretch can never
    drift a healthy block across the down threshold.
    """
    guardrails = guardrails if guardrails is not None else GuardrailCounters()
    pass_clock = (_time.perf_counter()
                  if metrics is not None and metrics.enabled else None)
    n_sources = len(counts_by_source)
    if n_sources == 0:
        raise ValueError("fused_belief_pass needs at least one source")
    if not (len(p_empty_by_source) == len(noise_by_source)
            == len(weights_by_source) == n_sources):
        raise ValueError("per-source argument lists must align")
    counts_by_source = [np.asarray(c) for c in counts_by_source]
    n_blocks, n_bins = counts_by_source[0].shape
    for counts in counts_by_source[1:]:
        if counts.shape != (n_blocks, n_bins):
            raise ValueError("all sources must share the bin grid "
                             f"({n_blocks}, {n_bins}); got {counts.shape}")
    prior_down = np.asarray(prior_down, dtype=float)
    prior_up_recovery = np.asarray(prior_up_recovery, dtype=float)
    if prior_down.shape != (n_blocks,) or prior_up_recovery.shape != (n_blocks,):
        raise ValueError(f"priors must have shape ({n_blocks},)")

    pinned = (~np.isfinite(prior_down)) | (~np.isfinite(prior_up_recovery))
    poisoned = pinned.copy()
    llr_by_source: List[np.ndarray] = []
    weight_rows: List[np.ndarray] = []
    for index in range(n_sources):
        counts = counts_by_source[index]
        p_empty = np.asarray(p_empty_by_source[index], dtype=float)
        noise = np.asarray(noise_by_source[index], dtype=float)
        weights = np.asarray(weights_by_source[index], dtype=float)
        if p_empty.shape not in ((n_blocks,), (n_blocks, n_bins)):
            raise ValueError(
                f"source {index}: p_empty must be ({n_blocks},) or "
                f"({n_blocks}, {n_bins})")
        if noise.shape != (n_blocks,):
            raise ValueError(f"source {index}: noise must be ({n_blocks},)")
        if weights.shape not in ((n_bins,), (n_blocks, n_bins)):
            raise ValueError(
                f"source {index}: weights must be ({n_bins},) or "
                f"({n_blocks}, {n_bins})")
        if counts.dtype.kind == "f":
            bad_counts = ~np.isfinite(counts)
            negative = counts < 0
        else:
            bad_counts = np.zeros(counts.shape, dtype=bool)
            negative = counts < 0
        invalid = bad_counts | negative
        guardrails.trip("nonfinite_count", int(bad_counts.sum()))
        guardrails.trip("negative_count", int(negative.sum()))
        bad_params = ~np.isfinite(noise)
        if p_empty.ndim == 2:
            bad_params |= ~np.isfinite(p_empty).all(axis=1)
        else:
            bad_params |= ~np.isfinite(p_empty)
        guardrails.trip("nonfinite_parameter", int(bad_params.sum()))
        degenerate = np.isfinite(p_empty) & ((p_empty <= 0.0)
                                             | (p_empty >= 1.0))
        guardrails.trip("degenerate_p_empty", int(degenerate.sum()))
        p_empty = np.clip(np.nan_to_num(p_empty, nan=0.5),
                          _PROB_EPS, 1.0 - _PROB_EPS)
        noise = np.clip(np.nan_to_num(noise, nan=0.5),
                        _PROB_EPS, 1.0 - _PROB_EPS)
        pinned |= bad_params
        poisoned |= bad_params | invalid.any(axis=1)
        safe_counts = np.where(invalid, 0, counts)
        empty = safe_counts == 0
        if p_empty.ndim == 1:
            p_empty = p_empty[:, None]
        llr_empty = np.log(p_empty) - np.log(1.0 - noise)[:, None]
        extra = np.maximum(safe_counts - 1, 0)
        count_discount = np.maximum(
            np.power(8.0, -extra.astype(float)), 1.0 / _COUNT_RATIO_CAP)
        llr_nonempty = (np.log(np.maximum(1.0 - p_empty, 1e-3))
                        - np.log(noise)[:, None] - np.log(count_discount))
        llr = np.where(empty, llr_empty, llr_nonempty)
        if invalid.any():
            llr = np.where(invalid, 0.0, llr)
        llr_by_source.append(llr)
        weight_rows.append(np.clip(np.nan_to_num(weights, nan=0.0), 0.0, 1.0))
    guardrails.trip("masked_row", int(poisoned.sum()))

    safe_prior_down = np.where(np.isfinite(prior_down), prior_down, 0.0)
    safe_prior_up = np.where(np.isfinite(prior_up_recovery),
                             prior_up_recovery, 0.0)

    belief = np.full(n_blocks, BELIEF_CEIL)
    if initial_belief is not None:
        belief = np.clip(np.asarray(initial_belief, dtype=float),
                         BELIEF_FLOOR, BELIEF_CEIL).copy()
    up = np.ones(n_blocks, dtype=bool)
    states = np.empty((n_blocks, n_bins), dtype=bool)
    beliefs = np.empty((n_blocks, n_bins)) if return_beliefs else None

    for bin_index in range(n_bins):
        predicted = (belief * (1.0 - safe_prior_down)
                     + (1.0 - belief) * safe_prior_up)
        np.clip(predicted, BELIEF_FLOOR, BELIEF_CEIL, out=predicted)
        log_odds = np.log(predicted) - np.log1p(-predicted)
        contributed = np.zeros(n_blocks, dtype=bool)
        for source_index in range(n_sources):
            weights = weight_rows[source_index]
            weight = (weights[:, bin_index] if weights.ndim == 2
                      else weights[bin_index])
            if np.max(weight) <= 0.0:
                continue
            contributed |= weight > 0.0
            log_odds += weight * llr_by_source[source_index][:, bin_index]
        updated = 1.0 / (1.0 + np.exp(-log_odds))
        np.clip(updated, BELIEF_FLOOR, BELIEF_CEIL, out=updated)
        # An evidence-free bin (every source gated for this block) is a
        # freeze, not an update: letting the transition prior run free
        # would walk the belief toward its stationary point and
        # eventually cross the down threshold — a false onset
        # manufactured purely by the *observer's* failure.  Belief and
        # verdict hold until some vantage can see the block again.
        belief = np.where(contributed, updated, belief)
        up = np.where(contributed,
                      np.where(up, belief > down_threshold,
                               belief >= up_threshold),
                      up)
        states[:, bin_index] = up
        if beliefs is not None:
            beliefs[:, bin_index] = belief
    if pinned.any():
        # A row filtered on substitute parameters is not a verdict; rows
        # poisoned only through counts keep the neutralised trajectory,
        # matching :func:`guarded_belief_pass`.
        states[pinned] = True
        if beliefs is not None:
            beliefs[pinned] = BELIEF_CEIL
    if metrics is not None:
        # Fused units are source-bins; label so fused runs never corrupt
        # the single-source baseline in benchmark comparisons.
        metrics.counter(
            "belief_bins_total",
            "Bins filtered by the vectorised belief pass",
            labelnames=("path",)).labels(path="fused").inc(
                n_sources * n_blocks * n_bins)
        if pass_clock is not None:
            metrics.histogram(
                "belief_pass_seconds",
                "Wall-time of one vectorised belief pass",
                labelnames=("path",)).labels(path="fused").observe(
                    _time.perf_counter() - pass_clock)
    return states, beliefs, poisoned

"""The fused multi-vantage detector: evidence fusion inside the filter.

One :class:`FusedModel` holds a per-source :class:`~repro.core.pipeline.
TrainedModel` for every vantage.  Per block, the *lead* source — the
measurable source with the finest tuned bin — supplies the bin grid,
transition priors, hysteresis thresholds, and gap threshold; every
measurable source contributes an independent per-bin log-likelihood
ratio under its own likelihood parameters re-expressed at the lead bin
width.  Contributions are scaled by each vantage's reliability weight
(:mod:`repro.fusion.reliability`) and hard-gated to zero while its
sentinel suspects or confirms a feed failure, so a vantage that goes
dark mid-run stops influencing verdicts within one sentinel bin while
the healthy sources keep detecting.

Degradation semantics, in order of escalation:

1. **Healthy** — every source contributes at its learned weight.
2. **Suspect/quarantined** — the failing source's evidence is gated to
   zero per bin (and its weight decays), remaining sources carry on;
   block-level gap outages are suppressed while any vantage is
   untrusted, because a merged-stream gap cannot be attributed to the
   block when an observer is dark.
3. **All vantages dark at once** — nothing can be said; down-time in
   the intersection of all quarantine windows is retracted at finalize,
   exactly like the single-source sentinel contract.

Both deployment shapes are provided: :func:`detect_fused` (vectorised
batch over :func:`~repro.core.belief.fused_belief_pass`) and
:class:`FusedStreamingDetector` (scalar streaming, checkpointable via
the v1 format's defaulted ``fusion`` key).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..net.addr import Family
from ..obs.metrics import resolve_registry
from ..telescope.aggregate import BinGrid, binned_counts
from ..telescope.records import Observation
from ..timeline import (
    Interval,
    Timeline,
    intersect_intervals,
    merge_intervals,
)
from ..core.checkpoint import (
    CheckpointFormatError,
    apply_checkpoint_state,
    parse_checkpoint_document,
)
from ..core.belief import (
    bin_log_likelihood_ratio,
    fused_belief_pass,
    fused_posterior,
)
from ..core.columnar import (
    Cohort,
    columnar_fused_posterior,
    columnar_llr,
    diurnal_p_empty,
)
from ..core.detector import (
    BlockResult,
    StreamingDetector,
    _StreamBlockState,
)
from ..core.events import RefinementConfig, gap_outages, refine_timeline, \
    states_to_timeline
from ..core.health import (
    BlockDataError,
    DeadLetterRegistry,
    ErrorBudget,
    ErrorBudgetExceeded,
    GuardrailCounters,
    RunHealthReport,
    SourceHealth,
)
from ..core.history import BlockHistory
from ..core.parameters import BlockParameters, TuningPolicy
from ..core.pipeline import PassiveOutagePipeline, TrainedModel
from ..core.sentinel import SentinelConfig, suppress_quarantined
from .reliability import ReliabilityConfig, SourceMonitor
from .sources import SourceAdapter

__all__ = ["FusedModel", "FusedBlockSpec", "build_block_specs",
           "train_fused", "FusedDetection", "detect_fused",
           "FusedStreamingDetector", "fused_detector_from_json",
           "intersect_interval_lists", "union_interval_lists"]


def intersect_interval_lists(
        lists: Sequence[Sequence[Interval]]) -> List[Interval]:
    """Windows covered by *every* interval list (all vantages dark)."""
    if not lists:
        return []
    result = merge_intervals(lists[0])
    for intervals in lists[1:]:
        result = intersect_intervals(result, merge_intervals(intervals))
        if not result:
            break
    return result


def union_interval_lists(
        lists: Sequence[Sequence[Interval]]) -> List[Interval]:
    """Windows covered by *any* interval list (some vantage dark)."""
    flat: List[Interval] = []
    for intervals in lists:
        flat.extend(intervals)
    return merge_intervals(flat)


@dataclass(frozen=True)
class FusedBlockSpec:
    """How one block fuses: who leads, and each source's likelihoods.

    ``likelihoods`` holds one ``(source, p_empty_up, noise_nonempty,
    stride)`` entry per contributing source.  A source reports once per
    *evidence window* of ``stride`` consecutive lead bins — its own
    tuned bin width rounded up to a lead-bin multiple — with both
    likelihood parameters expressed at that window width.  Evidence
    cadence is the source's own: a coarse-tuned source never judges
    silence at a granularity its single-source tuner rejected, which is
    what keeps the fused detector's false-onset calibration no worse
    than the weakest remaining source when the lead goes dark.
    """

    lead: str
    params: BlockParameters
    history: BlockHistory
    likelihoods: Tuple[Tuple[str, float, float, int], ...]

    @property
    def source_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _, _, _ in self.likelihoods)

    @property
    def roster(self) -> Tuple[Tuple[str, int], ...]:
        """(source, stride) pairs — the batch grouping signature."""
        return tuple((name, stride)
                     for name, _, _, stride in self.likelihoods)


@dataclass
class FusedModel:
    """Per-source trained models plus the fusion roster.

    ``sources`` is ordered (insertion order is the fusion order, which
    matters only for deterministic tie-breaks); ``primary`` names the
    source untagged observations are attributed to — by default the
    first source, conventionally the DNS tap.
    """

    family: Family
    sources: Dict[str, TrainedModel]
    primary: str = ""

    def __post_init__(self) -> None:
        if not self.sources:
            raise ValueError("a fused model needs at least one source")
        for name, model in self.sources.items():
            if model.family is not self.family:
                raise ValueError(
                    f"source {name!r} was trained for {model.family}, "
                    f"not {self.family}")
        if not self.primary:
            self.primary = next(iter(self.sources))
        if self.primary not in self.sources:
            raise ValueError(f"primary {self.primary!r} is not a source")

    @property
    def source_names(self) -> List[str]:
        return list(self.sources)

    @property
    def measurable_keys(self) -> List[int]:
        """Blocks measurable by at least one vantage."""
        keys = set()
        for model in self.sources.values():
            keys.update(model.measurable_keys)
        return sorted(keys)

    def coverage(self) -> float:
        """Fraction of observed blocks measurable by >= 1 vantage."""
        observed = set()
        for model in self.sources.values():
            observed.update(model.parameters)
        if not observed:
            return 0.0
        return len(self.measurable_keys) / len(observed)


def build_block_specs(model: FusedModel) -> Dict[int, FusedBlockSpec]:
    """One :class:`FusedBlockSpec` per fused-measurable block.

    Deterministic: the lead is the measurable source with the smallest
    tuned bin, ties broken by source order, so two processes given the
    same model derive identical specs (the checkpoint contract relies
    on this — specs are derived state and never serialised).
    """
    names = model.source_names
    specs: Dict[int, FusedBlockSpec] = {}
    for key in model.measurable_keys:
        candidates = []
        for order, name in enumerate(names):
            source = model.sources[name]
            params = source.parameters.get(key)
            if (params is not None and params.measurable
                    and key in source.histories):
                candidates.append((params.bin_seconds, order, name))
        if not candidates:
            continue
        _, _, lead = min(candidates)
        lead_model = model.sources[lead]
        lead_params = lead_model.parameters[key]
        likelihoods: List[Tuple[str, float, float, int]] = []
        for _, order, name in sorted(candidates, key=lambda c: c[1]):
            source = model.sources[name]
            params = source.parameters[key]
            if name == lead:
                p_empty = lead_params.p_empty_up
                noise = lead_params.noise_nonempty
                stride = 1
            else:
                # The source reports once per window of its own tuned
                # bin width, rounded UP to a lead-bin multiple so both
                # grids align.  Judging a coarse-tuned source's silence
                # per fine lead bin instead would accumulate absence
                # evidence at a granularity its own tuner rejected —
                # a plausible lull would cross the down threshold the
                # moment the lead goes dark.
                stride = max(1, int(np.ceil(params.bin_seconds
                                            / lead_params.bin_seconds)))
                window = stride * lead_params.bin_seconds
                history = source.histories[key]
                p_empty = history.empty_bin_probability(window)
                # The noise floor was tuned per *this source's* bin; a
                # down block's chance of a spurious arrival scales with
                # window width, so rescale to the window.
                ratio = window / params.bin_seconds
                noise = 1.0 - (1.0 - params.noise_nonempty) ** ratio
            likelihoods.append((name, float(p_empty), float(noise),
                                int(stride)))
        specs[key] = FusedBlockSpec(
            lead=lead,
            params=lead_params,
            history=lead_model.histories[key],
            likelihoods=tuple(likelihoods),
        )
    return specs


def train_fused(adapters: Sequence[SourceAdapter], family: Family,
                start: float, end: float,
                primary: Optional[str] = None,
                policy: Optional[TuningPolicy] = None,
                **pipeline_kwargs: Any) -> FusedModel:
    """Train one per-source model per adapter and assemble the roster.

    Each source trains through its own
    :class:`~repro.core.pipeline.PassiveOutagePipeline` under the
    adapter's tuning policy (falling back to ``policy``), so noise
    floors and bin ladders are per-vantage — the darknet's spoofed
    share never inflates the DNS tap's noise model.
    """
    if not adapters:
        raise ValueError("train_fused needs at least one source adapter")
    sources: Dict[str, TrainedModel] = {}
    for adapter in adapters:
        if adapter.name in sources:
            raise ValueError(f"duplicate source name {adapter.name!r}")
        pipeline = PassiveOutagePipeline(
            policy=adapter.tuning_policy() or policy, **pipeline_kwargs)
        sources[adapter.name] = pipeline.train(
            family, adapter.per_block(family, start, end), start, end)
    return FusedModel(family=family, sources=sources,
                      primary=primary or adapters[0].name)


# -- batch ------------------------------------------------------------------


@dataclass
class FusedDetection:
    """Output of one batch fused-detection run."""

    family: Family
    start: float
    end: float
    blocks: Dict[int, BlockResult]
    monitors: Dict[str, SourceMonitor]
    dead_letters: DeadLetterRegistry = field(
        default_factory=DeadLetterRegistry)
    health: Optional[RunHealthReport] = None
    #: windows during which *every* vantage was dark (down-time inside
    #: them was retracted).
    all_dark_windows: List[Interval] = field(default_factory=list)

    @property
    def measurable_count(self) -> int:
        return len(self.blocks)


def detect_fused(
    model: FusedModel,
    per_block_by_source: Mapping[str, Mapping[int, np.ndarray]],
    start: float,
    end: float,
    refinement: Optional[RefinementConfig] = None,
    sentinel_config: Optional[SentinelConfig] = None,
    reliability: Optional[ReliabilityConfig] = None,
    keep_belief_traces: bool = False,
    max_quarantine_frac: float = 0.5,
    metrics: Optional[Any] = None,
) -> FusedDetection:
    """Vectorised fused detection over ``[start, end)``.

    ``per_block_by_source`` maps source name -> {block key -> sorted
    arrival times}; a missing source is a vantage that was completely
    dark for the window — it is untrusted throughout (every bin of its
    evidence gated) and counts as dark in the all-dark intersection.

    Per-source vantage health is replayed offline first (sentinel +
    reliability weight over each source's aggregate feed), then every
    parameter group runs one :func:`~repro.core.belief.fused_belief_pass`
    with per-bin weight vectors.  Fault containment mirrors
    :class:`~repro.core.detector.PassiveDetector`: per-block poison is
    dead-lettered, never fatal.
    """
    metrics = resolve_registry(metrics)
    refinement = refinement or RefinementConfig()
    registry = DeadLetterRegistry()
    guardrails = GuardrailCounters()
    budget = ErrorBudget(max_quarantine_frac)
    names = model.source_names

    # -- vantage health replay, one monitor per source ------------------
    monitors: Dict[str, SourceMonitor] = {}
    for name in names:
        monitor = SourceMonitor.fresh(
            name, start, sentinel_config, reliability,
            keep_weight_history=True).bind_metrics(metrics)
        per_block = per_block_by_source.get(name, {})
        if per_block:
            arrays = [np.asarray(times) for times in per_block.values()
                      if len(times)]
            aggregate = (np.sort(np.concatenate(arrays)) if arrays
                         else np.empty(0))
        else:
            aggregate = np.empty(0)
        monitor.replay(aggregate, start, end)
        monitors[name] = monitor
    all_dark = intersect_interval_lists(
        [_dark_windows(monitors[name], start, end) for name in names])
    untrusted = union_interval_lists([
        _untrusted_windows(monitors[name], start, end) for name in names])

    specs = build_block_specs(model)
    groups: Dict[Tuple[Any, ...], List[int]] = defaultdict(list)
    for key, spec in specs.items():
        times_ok = True
        for name in spec.source_names:
            times = per_block_by_source.get(name, {}).get(key)
            if times is None:
                continue
            times = np.asarray(times)
            if times.dtype.kind == "f" and not np.isfinite(times).all():
                bad = int((~np.isfinite(times)).sum())
                guardrails.trip("nonfinite_timestamp", bad)
                registry.record(
                    "detect", key,
                    BlockDataError(
                        f"{bad} of {times.size} detection timestamps from "
                        f"source {name!r} are non-finite"),
                    times)
                times_ok = False
                break
        if times_ok:
            groups[(spec.params.bin_seconds, spec.params.down_threshold,
                    spec.params.up_threshold, spec.roster)].append(key)

    results: Dict[int, BlockResult] = {}
    for (bin_seconds, down_threshold, up_threshold, roster), keys in sorted(
            groups.items()):
        keys.sort()
        grid = BinGrid(start, end, bin_seconds)
        edges = grid.edges()
        counts_by_source: List[np.ndarray] = []
        p_empty_by_source: List[np.ndarray] = []
        noise_by_source: List[np.ndarray] = []
        weights_by_source: List[np.ndarray] = []
        for position, (name, stride) in enumerate(roster):
            counts = binned_counts(
                keys, per_block_by_source.get(name, {}), grid)
            if stride > 1:
                counts = _windowed_counts(counts, stride)
            counts_by_source.append(counts)
            p_empty_by_source.append(np.array(
                [specs[key].likelihoods[position][1] for key in keys]))
            noise_by_source.append(np.array(
                [specs[key].likelihoods[position][2] for key in keys]))
            weights_by_source.append(
                monitors[name].weight_vector(edges, bin_seconds,
                                             stride=stride))
        prior_down = np.array([specs[key].params.prior_down for key in keys])
        prior_up = np.array(
            [specs[key].params.prior_up_recovery for key in keys])
        states, beliefs, poisoned = fused_belief_pass(
            counts_by_source, p_empty_by_source, noise_by_source,
            weights_by_source, prior_down, prior_up,
            down_threshold=down_threshold, up_threshold=up_threshold,
            return_beliefs=keep_belief_traces,
            guardrails=guardrails, metrics=metrics)
        metrics.counter(
            "belief_updates_total",
            "Belief-filter updates applied, by address family",
            labelnames=("family",)).labels(
                family=model.family.name.lower()).inc(
                    sum(counts.size for counts in counts_by_source))
        for row, key in enumerate(keys):
            if poisoned[row]:
                registry.record(
                    "belief", key,
                    BlockDataError(
                        "non-finite counts or parameters poisoned the "
                        "fused belief pass; row masked"))
                continue
            try:
                results[key] = _build_fused_result(
                    model.family, key, specs[key], per_block_by_source,
                    states[row],
                    beliefs[row] if beliefs is not None else None,
                    grid, start, end, refinement, untrusted, all_dark)
            except Exception as error:
                registry.record("refine", key, error)

    report = RunHealthReport(
        run="fusion", dead_letters=registry, guardrails=guardrails,
        sentinel_windows=[(float(s), float(e)) for s, e in all_dark],
        max_quarantine_frac=max_quarantine_frac)
    stage = report.stage("detect")
    stage.attempted = len(specs)
    stage.succeeded = len(results)
    stage.quarantined = len(registry)
    _fold_source_health(report, monitors, specs)
    detection = FusedDetection(
        family=model.family, start=start, end=end, blocks=results,
        monitors=monitors, dead_letters=registry, health=report,
        all_dark_windows=list(all_dark))
    try:
        budget.check("fusion", len(specs), len(registry))
    except ErrorBudgetExceeded as error:
        report.budget_tripped = True
        error.report = report
        raise
    return detection


def _windowed_counts(counts: np.ndarray, stride: int) -> np.ndarray:
    """Scatter window sums onto the lead grid at each window's close.

    For a source reporting once per ``stride`` lead bins, the bin at
    index ``j`` with ``(j + 1) % stride == 0`` carries the count summed
    over the window ``[j - stride + 1, j]``; every other bin carries
    zero (and zero weight — the window is still open there).  A
    trailing partial window contributes nothing: its silence is not yet
    a full own-cadence observation, exactly as in streaming where the
    window never closes.
    """
    n_blocks, n_bins = counts.shape
    out = np.zeros_like(counts)
    closes = np.arange(stride - 1, n_bins, stride)
    if closes.size:
        padded = np.concatenate(
            [np.zeros((n_blocks, 1), dtype=counts.dtype),
             np.cumsum(counts, axis=1)], axis=1)
        out[:, closes] = padded[:, closes + 1] - padded[:, closes + 1 - stride]
    return out


def _untrusted_windows(monitor: SourceMonitor, start: float,
                       end: float) -> List[Interval]:
    """Quarantines plus the open suspect run, margin-padded.

    A vantage that never spoke is untrusted for the whole span — its
    online sentinel has nothing to judge silence against, so no
    quarantine ever opens, yet none of its empty bins may be read as
    block evidence (see :meth:`SourceMonitor.trusted_over`).
    """
    if monitor.observations == 0:
        return [(start, end)]
    windows = list(monitor.sentinel.quarantined_intervals())
    suspect_since = monitor.sentinel.suspect_since
    if suspect_since is not None:
        margin = monitor.sentinel.config.margin
        windows.append((suspect_since - margin, end))
    return merge_intervals(windows)


def _dark_windows(monitor: SourceMonitor, start: float,
                  end: float) -> List[Interval]:
    """Windows this vantage could not observe at all.

    Confirmed quarantines, plus the whole span for a vantage that never
    delivered a packet — the all-dark intersection must treat a
    dead-from-the-start source as dark throughout, or a run whose every
    vantage was absent would retract nothing.
    """
    if monitor.observations == 0:
        return [(start, end)]
    return monitor.sentinel.quarantined_intervals()


def _build_fused_result(family: Family, key: int, spec: FusedBlockSpec,
                        per_block_by_source: Mapping[str,
                                                     Mapping[int, Any]],
                        states: np.ndarray,
                        belief_trace: Optional[np.ndarray],
                        grid: BinGrid, start: float, end: float,
                        refinement: RefinementConfig,
                        untrusted: List[Interval],
                        all_dark: List[Interval]) -> BlockResult:
    """Refine one fused block: edges on merged packet evidence."""
    arrays = [np.asarray(per_block_by_source.get(name, {}).get(
        key, np.empty(0))) for name in spec.source_names]
    arrays = [times for times in arrays if times.size]
    merged = (np.sort(np.concatenate(arrays)) if arrays
              else np.empty(0))
    history = spec.history
    params = spec.params
    coarse = states_to_timeline(states, grid)
    refined = refine_timeline(coarse, merged, history.mean_rate,
                              grid.bin_seconds, refinement)
    mean_gap = (1.0 / history.mean_rate if history.mean_rate > 0
                else grid.bin_seconds)
    gaps = gap_outages(merged, params.gap_threshold_seconds, start, end,
                       guard=refinement.guard_gaps * mean_gap)
    if gaps:
        # A merged-stream gap is only attributable to the block while
        # every vantage was trusted: with an observer dark, the "gap"
        # may be the observer's.
        gaps = [gap for gap in gaps
                if not intersect_intervals([gap], untrusted)]
    if gaps:
        refined = Timeline(start, end, refined.down_intervals + gaps)
    overlapping = [(max(s, start), min(e, end))
                   for s, e in all_dark if s < end and e > start]
    timeline = (suppress_quarantined(refined, overlapping)
                if overlapping else refined)
    return BlockResult(
        key=key,
        family=family,
        params=params,
        history=history,
        timeline=timeline,
        coarse_timeline=coarse,
        belief_trace=belief_trace,
        quarantined=overlapping,
    )


def _fold_source_health(report: RunHealthReport,
                        monitors: Mapping[str, SourceMonitor],
                        specs: Mapping[int, FusedBlockSpec]) -> None:
    """Attach the per-vantage section to a run health report."""
    measurable: Dict[str, int] = {name: 0 for name in monitors}
    for spec in specs.values():
        for name in spec.source_names:
            if name in measurable:
                measurable[name] += 1
    for name, monitor in monitors.items():
        report.sources[name] = SourceHealth(
            name=name,
            observations=monitor.observations,
            weight=monitor.weight,
            healthy_bins=monitor.healthy_bins,
            quiet_bins=monitor.quiet_bins,
            gated_bins=monitor.gated_bins,
            quarantine_windows=[
                (float(s), float(e)) for s, e in
                monitor.sentinel.quarantined_intervals()],
            measurable_blocks=measurable[name],
        )


# -- streaming --------------------------------------------------------------


class FusedStreamingDetector(StreamingDetector):
    """Streaming detector fusing several tagged vantage streams.

    Feed with :meth:`observe_from` (``observe`` routes to the primary
    source, so single-source callers keep working).  Every observation
    advances every vantage monitor's clock — a dead vantage is judged
    by the traffic the *others* keep delivering, which is what lets its
    evidence gate off within one sentinel bin of the failure.

    Checkpointing rides the v1 format: per-source sentinel, reliability
    and per-block bin-count state lands under the defaulted ``fusion``
    key (see :func:`repro.core.checkpoint.detector_to_json`), and
    :func:`fused_detector_from_json` restores bit-for-bit.
    """

    def __init__(
        self,
        model: FusedModel,
        start: float,
        refinement: Optional[RefinementConfig] = None,
        sentinel_config: Optional[SentinelConfig] = None,
        reliability: Optional[ReliabilityConfig] = None,
        max_quarantine_frac: float = 0.5,
        metrics: Optional[Any] = None,
        monitors: Optional[Dict[str, SourceMonitor]] = None,
        explain: Optional[Any] = None,
        columnar: Optional[bool] = None,
    ) -> None:
        self.model = model
        self.source_names = model.source_names
        self._source_index = {name: index
                              for index, name in enumerate(self.source_names)}
        self.specs = build_block_specs(model)
        self._active_source: Optional[int] = None
        histories = {key: spec.history for key, spec in self.specs.items()}
        parameters = {key: spec.params for key, spec in self.specs.items()}
        super().__init__(model.family, histories, parameters, start,
                         refinement=refinement, sentinel=None,
                         max_quarantine_frac=max_quarantine_frac,
                         metrics=metrics, explain=explain,
                         columnar=columnar)
        if monitors is None:
            monitors = {
                name: SourceMonitor.fresh(name, self.start, sentinel_config,
                                          reliability)
                for name in self.source_names}
        missing = [name for name in self.source_names if name not in monitors]
        if missing:
            raise ValueError(f"monitors missing for sources {missing}")
        self.monitors = monitors
        self._monitor_list = [monitors[name] for name in self.source_names]
        for monitor in self._monitor_list:
            monitor.bind_metrics(self.metrics)
        self._source_counts: Dict[int, List[int]] = {
            key: [0] * len(self.source_names) for key in self._states}
        #: when True (default), :meth:`observe_from` feeds the vantage
        #: monitors itself.  The live plumbing sets this False and
        #: drives them explicitly — raw-tap order via
        #: :meth:`note_arrival` in the single-process engine, or
        #: parent-shipped sentinel-bin counts in a partition worker —
        #: because there the monitor feed (the raw tap) and the
        #: detector feed (post-reorder-buffer) are different streams.
        self.inline_monitors = True

    # -- feeding ------------------------------------------------------------

    def observe_from(self, source: str, observation: Observation) -> None:
        """Feed one observation attributed to a named vantage."""
        index = self._source_index.get(source)
        if index is None:
            raise ValueError(
                f"unknown source {source!r}; fused sources are "
                f"{self.source_names}")
        if not np.isfinite(observation.time):
            raise ValueError(
                f"non-finite observation timestamp {observation.time!r}: "
                f"reject poisoned records at the ingest boundary before "
                f"they reach the detector clock")
        if observation.time < self._last_time - 1e-9:
            raise ValueError(
                f"stream went backwards: {observation.time} after "
                f"{self._last_time}")
        # Vantage health first, so bins this record closes are judged
        # against up-to-date per-source trust.
        if self.inline_monitors:
            self.note_arrival(source, observation.time)
        self._observe_as(index, observation)

    def note_arrival(self, source: str, time: float) -> None:
        """Feed one raw-tap arrival into the vantage monitors.

        Counts the arrival against ``source``'s sentinel and advances
        every other monitor's clock — a dead vantage is judged by the
        traffic the others keep delivering.
        """
        index = self._source_index[source]
        for position, monitor in enumerate(self._monitor_list):
            if position == index:
                monitor.observe(time)
            else:
                monitor.advance(time)

    def _observe_as(self, index: int, observation: Observation) -> None:
        self._active_source = index
        try:
            super().observe(observation)
        finally:
            self._active_source = None

    def observe(self, observation: Observation) -> None:
        """Untagged observations belong to the primary vantage."""
        if self._active_source is None:
            self.observe_from(self.model.primary, observation)
        else:
            super().observe(observation)

    def advance(self, now: float) -> None:
        if self.inline_monitors:
            for monitor in self._monitor_list:
                monitor.advance(now)
        super().advance(now)

    # -- per-block hooks ----------------------------------------------------

    def _trusted_window(self, window_start: float,
                        window_end: float) -> bool:
        return all(monitor.trusted_over(window_start, window_end)
                   for monitor in self._monitor_list)

    def _observe_block(self, key: int, state: _StreamBlockState,
                       observation: Observation) -> None:
        self._advance_block(key, state, observation.time)
        # Gap detector over the *merged* stream: only meaningful while
        # every vantage is trusted — a gap spanning an observer failure
        # says nothing about the block.
        threshold = state.params.gap_threshold_seconds
        if (state.last_packet is not None
                and observation.time - state.last_packet > threshold
                and self._trusted_window(state.last_packet,
                                         observation.time)):
            mean_gap = (1.0 / state.history.mean_rate
                        if state.history.mean_rate > 0
                        else state.params.bin_seconds)
            guard = min(self.refinement.guard_gaps * mean_gap,
                        threshold / 2.0)
            state.transitions.append((state.last_packet + guard, False))
            state.transitions.append((observation.time - guard, True))
        if state.first_packet_this_bin is None:
            state.first_packet_this_bin = observation.time
        state.bin_count += 1
        state.last_packet = observation.time
        counts = self._source_counts.get(key)
        if counts is not None and self._active_source is not None:
            counts[self._active_source] += 1

    def _update_belief(self, key: int, state: _StreamBlockState,
                       bin_start: float) -> bool:
        params = state.params
        spec = self.specs[key]
        counts = self._source_counts.get(key)
        bin_end = state.next_bin_end
        # 0-indexed position of the closing bin on the block's lead
        # grid; a source with stride k reports when (b + 1) % k == 0.
        # Derived, not stored: kill-and-resume restores it for free.
        b = int(round((bin_start - self.start) / params.bin_seconds))
        explain = self.explain.enabled
        rows = [] if explain else None
        weighted = 0.0
        contributed = False
        for name, p_empty, noise, stride in spec.likelihoods:
            if stride > 1 and (b + 1) % stride != 0:
                continue  # evidence window still open; keep accumulating
            index = self._source_index[name]
            monitor = self._monitor_list[index]
            window_start = bin_end - stride * params.bin_seconds
            weight = monitor.effective_weight(window_start, bin_end)
            count = (counts[index] if counts is not None
                     else state.bin_count)
            if counts is not None:
                counts[index] = 0  # window consumed, gated or not
            if weight <= 0.0:
                monitor.note_gated()
                if rows is not None:
                    rows.append(self._explain_source_row(
                        name, monitor, weight, count, p_empty, noise,
                        llr=0.0, gated=True,
                        window=(window_start, bin_end)))
                continue
            contributed = True
            if name == spec.lead:
                # The lead's likelihoods live on the (possibly hot-
                # swapped) block state, diurnal-aware like the base
                # detector.
                p_empty = (state.history.empty_bin_probability_at(
                    bin_start, params.bin_seconds)
                    if state.history.diurnal_profile is not None
                    else params.p_empty_up)
                noise = params.noise_nonempty
            contribution = weight * bin_log_likelihood_ratio(
                count, p_empty, noise)
            weighted += contribution
            if rows is not None:
                rows.append(self._explain_source_row(
                    name, monitor, weight, count, p_empty, noise,
                    llr=contribution, gated=False,
                    window=(window_start, bin_end)))
        belief = state.belief
        if explain:
            # The staged floats are the exact operands of the update
            # below — re-adding the per-source ``llr`` rows reproduces
            # ``weighted_llr`` bit-for-bit, and ``fused_posterior(
            # prior_belief, weighted_llr, ...)`` reproduces ``belief``.
            self._last_evidence = {
                "sources": rows,
                "weighted_llr": weighted,
                "prior_belief": belief.belief,
                "contributed": contributed,
            }
        if contributed:
            posterior = fused_posterior(belief.belief, weighted,
                                        params.prior_down,
                                        params.prior_up_recovery)
            belief.belief = posterior
            if belief.is_up and posterior <= params.down_threshold:
                belief.is_up = False
            elif not belief.is_up and posterior >= params.up_threshold:
                belief.is_up = True
        # else: evidence-free bin (every reporting vantage gated, or no
        # window closed) — freeze belief and verdict; the transition
        # prior must not drift a healthy block down while nobody can
        # observe it.
        return belief.is_up

    # -- columnar bin close --------------------------------------------------

    def _cohort_signature(self, key: int,
                          state: _StreamBlockState) -> Optional[Any]:
        """Fused cohorts additionally require a uniform roster: the
        lead source, the source order, and each source's reporting
        stride must match so the per-boundary stride arithmetic and
        weight lookups are cohort-wide."""
        base = super()._cohort_signature(key, state)
        if base is None:
            return None
        spec = self.specs.get(key)
        if spec is None:
            return None
        for name, p_empty, noise, stride in spec.likelihoods:
            if not (np.isfinite(p_empty) and np.isfinite(noise)):
                return None  # scalar path raises per block; keep it
        return (state.params.bin_seconds, spec.lead,
                tuple((name, stride)
                      for name, _, _, stride in spec.likelihoods))

    def _cohort_extras(self, cohort: Cohort) -> None:
        """Per-source likelihood columns for the cohort's roster."""
        spec = self.specs[cohort.keys[0]]
        roster = [(name, stride)
                  for name, _, _, stride in spec.likelihoods]
        p_empty_columns = []
        noise_columns = []
        for position in range(len(roster)):
            p_empty_columns.append(np.array(
                [self.specs[key].likelihoods[position][1]
                 for key in cohort.keys]))
            noise_columns.append(np.array(
                [self.specs[key].likelihoods[position][2]
                 for key in cohort.keys]))
        cohort.extras.update(
            roster=roster, lead=spec.lead,
            p_empty=p_empty_columns, noise=noise_columns)

    def _cohort_posterior(self, cohort: Cohort, rows: np.ndarray,
                          keys: List[int],
                          members: List[_StreamBlockState],
                          bin_start: float, boundary: float,
                          belief: np.ndarray, was_up: np.ndarray,
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                     Optional[np.ndarray]]:
        """Batched fused update for one boundary — the array replica of
        :meth:`_update_belief` (same windows consumed, same weights,
        same log-odds accumulation order)."""
        extras = cohort.extras
        bin_seconds = cohort.bin_seconds
        count = len(members)
        # 0-indexed position of the closing bin on the lead grid;
        # uniform across the cohort because boundary and bin width are.
        b = int(round((bin_start - self.start) / bin_seconds))
        weighted = np.zeros(count)
        contributed = False
        bad = np.zeros(count, dtype=bool)
        consumed: List[Tuple[int, np.ndarray]] = []
        gated: List[SourceMonitor] = []
        for position, (name, stride) in enumerate(extras["roster"]):
            if stride > 1 and (b + 1) % stride != 0:
                continue  # evidence window still open
            index = self._source_index[name]
            monitor = self._monitor_list[index]
            window_start = boundary - stride * bin_seconds
            weight = monitor.effective_weight(window_start, boundary)
            counts = np.empty(count, dtype=np.int64)
            for i, (key, state) in enumerate(zip(keys, members)):
                source_counts = self._source_counts.get(key)
                if source_counts is not None:
                    counts[i] = source_counts[index]
                    source_counts[index] = 0  # window consumed either way
                else:
                    counts[i] = state.bin_count
            consumed.append((index, counts))
            if weight <= 0.0:
                gated.append(monitor)
                continue
            contributed = True
            if name == extras["lead"]:
                # Lead likelihoods live on the (possibly hot-swapped)
                # block state, diurnal-aware like the base detector.
                p_empty = diurnal_p_empty(cohort, rows, bin_start)
                lead_bad = ~np.isfinite(p_empty)
                if lead_bad.any():
                    # Scalar raises BlockDataError here; those members
                    # must take the scalar close, not a silent clamp.
                    bad |= lead_bad
                    p_empty = np.where(lead_bad, 0.5, p_empty)
                noise = cohort.noise_nonempty[rows]
            else:
                p_empty = extras["p_empty"][position][rows]
                noise = extras["noise"][position][rows]
            weighted = weighted + weight * columnar_llr(counts, p_empty,
                                                        noise)
        if contributed:
            bad |= ~np.isfinite(weighted)
        fallback = int(bad.sum())
        if fallback:
            # The scalar close re-consumes each fallback member's
            # source windows (and re-counts its gated windows), so put
            # back what the batched gather took.
            for index, counts in consumed:
                for i in np.flatnonzero(bad).tolist():
                    source_counts = self._source_counts.get(keys[i])
                    if source_counts is not None:
                        source_counts[index] = int(counts[i])
        for monitor in gated:
            monitor.note_gated(count - fallback)
        trips = np.zeros(count, dtype=np.int64)  # fused path never trips
        if not contributed:
            # Evidence-free boundary: freeze belief and verdict.
            return belief.copy(), was_up.copy(), trips, None
        weighted = np.where(bad, 0.0, weighted)
        posterior, new_up = columnar_fused_posterior(
            belief, was_up, weighted, cohort.prior_down[rows],
            cohort.prior_up_recovery[rows], cohort.down_threshold[rows],
            cohort.up_threshold[rows])
        return posterior, new_up, trips, bad if fallback else None

    @staticmethod
    def _explain_source_row(name: str, monitor: SourceMonitor,
                            weight: float, count: int, p_empty: float,
                            noise: float, llr: float, gated: bool,
                            window: Tuple[float, float]) -> Dict[str, Any]:
        """One vantage's share of a fused update, for the explain log."""
        sentinel = monitor.sentinel
        quarantined = any(left < window[1] and window[0] < right
                          for left, right
                          in sentinel.quarantined_intervals())
        return {
            "source": name,
            "weight": weight,
            "raw_weight": monitor.weight,
            "count": count,
            "p_empty": p_empty,
            "noise": noise,
            "llr": llr,
            "gated": gated,
            "suspect": sentinel.suspect_since is not None,
            "quarantined": quarantined,
        }

    def _quarantine(self, key: int, stage: str,
                    error: BaseException) -> None:
        self._source_counts.pop(key, None)
        super()._quarantine(key, stage, error)

    # -- finalize / health --------------------------------------------------

    def finalize(self, end: float,
                 quarantined: Optional[List[Tuple[float, float]]] = None,
                 ) -> Dict[int, BlockResult]:
        for monitor in self._monitor_list:
            # Trailing silence up to the cut is evidence too; in
            # external-monitor mode every bin closing at or before
            # ``end`` has already been fed, so this is a no-op there.
            monitor.advance(end)
        if quarantined is None:
            # Retract only where EVERY vantage was dark at once; while
            # any source still talks, its verdicts stand (per-bin
            # gating already silenced the dark sources' evidence).
            quarantined = intersect_interval_lists(
                [_dark_windows(monitor, self.start, end)
                 for monitor in self._monitor_list])
        return super().finalize(end, quarantined=quarantined)

    def _build_health(self, end: float,
                      sentinel_windows: List[Tuple[float, float]]
                      ) -> RunHealthReport:
        report = super()._build_health(end, sentinel_windows)
        report.run = "fusion-stream"
        _fold_source_health(report, self.monitors, self.specs)
        return report

    # -- checkpointing ------------------------------------------------------

    def checkpoint_fusion_state(self) -> Dict[str, Any]:
        """The ``fusion`` section of the v1 checkpoint document.

        Only mutable state travels: monitors (sentinel + reliability)
        and per-block per-source bin counts.  Specs, likelihood tables
        and the roster are derived deterministically from the model the
        restorer must supply — exactly the contract the base detector
        has with its histories/parameters.
        """
        return {
            "sources": list(self.source_names),
            "primary": self.model.primary,
            "monitors": {name: self.monitors[name].to_dict()
                         for name in self.source_names},
            "source_counts": {
                str(key): list(counts)
                for key, counts in sorted(self._source_counts.items())},
        }

    def restore_fusion_state(self, data: Dict[str, Any]) -> None:
        """Swap in checkpointed per-source state (restore path)."""
        if list(data.get("sources", [])) != self.source_names:
            raise ValueError(
                f"checkpoint was written for sources "
                f"{data.get('sources')}, this model has "
                f"{self.source_names}")
        monitors = {name: SourceMonitor.from_dict(entry)
                    for name, entry in data["monitors"].items()}
        self.monitors = monitors
        self._monitor_list = [monitors[name] for name in self.source_names]
        for monitor in self._monitor_list:
            monitor.bind_metrics(self.metrics)
        for text_key, counts in data.get("source_counts", {}).items():
            key = int(text_key)
            if key in self._source_counts:
                self._source_counts[key] = [int(c) for c in counts]


def fused_detector_from_json(text: str, model: FusedModel,
                             metrics: Optional[Any] = None,
                             ) -> FusedStreamingDetector:
    """Rebuild a :class:`FusedStreamingDetector` from a v1 checkpoint.

    The caller supplies the fused ``model`` the checkpoint was written
    against (specs, likelihood tables and the bin grid are derived from
    it, mirroring the histories/parameters contract of the base
    :func:`repro.core.checkpoint.detector_from_json`); the document
    must carry the defaulted ``fusion`` key — restoring a single-source
    checkpoint into a fused detector is a format error, not a silent
    downgrade.
    """
    document = parse_checkpoint_document(text)
    try:
        family = Family(document["family"])
        if family is not model.family:
            raise CheckpointFormatError(
                f"checkpoint is for family {family.name}, the supplied "
                f"model is {model.family.name}")
        fusion_doc = document.get("fusion")
        if fusion_doc is None:
            raise CheckpointFormatError(
                "checkpoint has no fusion section: it was written by a "
                "single-source detector; restore it with "
                "detector_from_json instead")
        refinement = RefinementConfig(**document["refinement"])
        detector = FusedStreamingDetector(
            model, float(document["start"]), refinement=refinement,
            max_quarantine_frac=float(
                document.get("max_quarantine_frac",
                             ErrorBudget().max_quarantine_frac)),
            metrics=resolve_registry(metrics))
        apply_checkpoint_state(detector, document)
        detector.restore_fusion_state(fusion_doc)
        # Dead-lettered blocks were popped from _states by the restore;
        # drop their count rows too so finalize never resurrects them.
        for key in list(detector._source_counts):
            if key not in detector._states:
                del detector._source_counts[key]
        return detector
    except CheckpointFormatError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointFormatError(
            f"malformed checkpoint document: {error}") from None

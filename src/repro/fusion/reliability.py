"""Per-vantage reliability: a trust weight learned from sentinel health.

Each fused source carries its own :class:`~repro.core.sentinel.
VantageSentinel` (feed health is judged per vantage, not per tap) and a
:class:`SourceMonitor` that turns the sentinel's per-bin verdicts into
a reliability weight in ``[floor, 1]``: healthy bins pull the weight
toward 1 at ``ewma_alpha`` per bin, quiet *and depressed* bins pull it
toward the floor — a brownout (feed flowing far under baseline) sags
trust even though it never opens a quarantine.  The weight scales the
source's log-likelihood contribution in
the fused belief update, so a vantage with a shaky recent history is
tempered *before* it fails outright and regains trust *gradually* after
it recovers — no cliff in either direction.

On top of the soft weight sits a hard gate: while the sentinel has an
open quiet run (the feed just went suspiciously silent, possibly before
``min_quiet_bins`` confirms a quarantine) or the bin overlaps a
confirmed quarantine window, the source's effective weight is zero.
The gate is what guarantees zero false onsets from a blinded vantage —
the decay alone would still leak a few heavily-down-weighted empty
bins; the gate removes them entirely while the uncertainty is live.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.sentinel import SentinelConfig, VantageSentinel

__all__ = ["ReliabilityConfig", "SourceMonitor"]


@dataclass(frozen=True)
class ReliabilityConfig:
    """Knobs of the per-vantage trust weight.

    ``ewma_alpha`` is the per-sentinel-bin learning rate: after a
    quarantine ends, the weight recovers to ``1 - (1-floor)*(1-a)^k``
    of full trust in ``k`` healthy bins (about 10 bins to ~90% at the
    default 0.2).  ``floor`` > 0 keeps a minimum voice for a vantage
    that is quiet but not gated — the default 0 silences it fully.
    """

    ewma_alpha: float = 0.2
    floor: float = 0.0
    initial: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0.0 <= self.floor <= 1.0:
            raise ValueError("floor must be in [0, 1]")
        if not 0.0 <= self.initial <= 1.0:
            raise ValueError("initial must be in [0, 1]")


class SourceMonitor:
    """One vantage's sentinel plus its learned reliability weight.

    Feed it like a sentinel — :meth:`observe` for this vantage's own
    arrivals, :meth:`advance` for the shared stream clock (so a dead
    vantage is still judged while the others keep talking).  The weight
    updates exactly once per closed sentinel bin via the sentinel's bin
    listener, so streaming and offline replays of the same feed produce
    bit-identical weights.
    """

    def __init__(self, name: str, sentinel: VantageSentinel,
                 config: Optional[ReliabilityConfig] = None,
                 keep_weight_history: bool = False) -> None:
        self.name = name
        self.sentinel = sentinel
        self.config = config or ReliabilityConfig()
        self.weight = self.config.initial
        self.observations = 0
        self.healthy_bins = 0
        self.quiet_bins = 0
        #: brownout bookkeeping: the open depressed run's first bin
        #: start, and closed runs as raw (start, end) bin spans.  The
        #: sentinel never quarantines a depressed feed (it is alive),
        #: so the monitor itself must remember where the brownouts were
        #: to withdraw trust over them.
        self._depressed_since: Optional[float] = None
        self._depressed_closed: List[Tuple[float, float]] = []
        #: bins whose evidence the fused detector dropped for this
        #: source (weight gated to zero); incremented by the detector.
        self.gated_bins = 0
        self._history: Optional[List[Tuple[float, float]]] = (
            [] if keep_weight_history else None)
        self._m_observations: Optional[Any] = None
        self._m_weight: Optional[Any] = None
        self._m_bins: Optional[Any] = None
        self._m_gated: Optional[Any] = None
        self.sentinel.set_bin_listener(self._on_bin)

    @classmethod
    def fresh(cls, name: str, start: float,
              sentinel_config: Optional[SentinelConfig] = None,
              config: Optional[ReliabilityConfig] = None,
              keep_weight_history: bool = False) -> "SourceMonitor":
        return cls(name, VantageSentinel(start, sentinel_config),
                   config=config, keep_weight_history=keep_weight_history)

    # -- metrics ------------------------------------------------------------

    def bind_metrics(self, metrics: Any) -> "SourceMonitor":
        """Mirror per-source fusion state into the obs registry."""
        self._m_observations = metrics.counter(
            "fusion_observations_total",
            "Observations consumed by the fused detector, by source",
            labelnames=("source",)).labels(source=self.name)
        self._m_weight = metrics.gauge(
            "fusion_source_weight",
            "Current per-vantage reliability weight in [0, 1]",
            labelnames=("source",)).labels(source=self.name)
        self._m_bins = metrics.counter(
            "fusion_source_bins_total",
            "Sentinel bins judged per fused source, by verdict",
            labelnames=("source", "verdict"))
        self._m_gated = metrics.counter(
            "fusion_gated_bins_total",
            "Detector bins whose evidence was gated (vantage unhealthy)",
            labelnames=("source",)).labels(source=self.name)
        self._m_weight.set(self.weight)
        return self

    # -- feeding ------------------------------------------------------------

    def observe(self, time: float) -> None:
        self.observations += 1
        if self._m_observations is not None:
            self._m_observations.inc()
        self.sentinel.observe(time)

    def observe_bulk(self, time: float, count: int) -> None:
        """Count ``count`` arrivals at ``time`` (offline replays)."""
        self.observations += int(count)
        if self._m_observations is not None:
            self._m_observations.inc(int(count))
        self.sentinel.observe_bulk(time, count)

    def advance(self, now: float) -> None:
        self.sentinel.advance(now)

    def replay(self, times, start: float, end: float) -> "SourceMonitor":
        """Feed a whole window's aggregate arrivals offline.

        Bins the arrivals onto the sentinel grid and feeds one bulk
        count per sentinel bin — identical final state to per-packet
        feeding, at a cost proportional to bins rather than packets.
        Finishes with :meth:`advance` to ``end`` so trailing silence is
        judged.
        """
        bin_seconds = self.sentinel.config.bin_seconds
        times = np.asarray(times, dtype=float)
        if times.size:
            n_bins = int(np.ceil((end - start) / bin_seconds))
            edges = start + bin_seconds * np.arange(n_bins + 1)
            counts, _ = np.histogram(times, bins=edges)
            for index in np.flatnonzero(counts):
                self.observe_bulk(float(edges[index]), int(counts[index]))
        self.advance(end)
        return self

    def _on_bin(self, bin_start: float, quiet: bool,
                depressed: bool = False) -> None:
        # A depressed bin (feed flowing but far under baseline — a
        # brownout) sags the weight exactly like a quiet one; only the
        # sentinel's quarantine machinery distinguishes them.
        sick = quiet or depressed
        alpha = self.config.ewma_alpha
        target = self.config.floor if sick else 1.0
        self.weight += alpha * (target - self.weight)
        self.weight = min(max(self.weight, self.config.floor), 1.0)
        if sick:
            self.quiet_bins += 1
        else:
            self.healthy_bins += 1
        # Track brownout runs like the sentinel tracks quiet runs: a
        # depressed bin opens (or extends) a run, a healthy bin closes
        # it.  A quiet bin leaves an open run open — blindness following
        # a brownout is one continuous distrust window, not two.
        if depressed:
            if self._depressed_since is None:
                self._depressed_since = bin_start
        elif not quiet and self._depressed_since is not None:
            self._depressed_closed.append((self._depressed_since, bin_start))
            self._depressed_since = None
        if self._history is not None:
            self._history.append(
                (bin_start + self.sentinel.config.bin_seconds, self.weight))
        if self._m_bins is not None:
            self._m_bins.labels(
                source=self.name,
                verdict=("quiet" if quiet
                         else "depressed" if depressed else "healthy")).inc()
        if self._m_weight is not None:
            self._m_weight.set(self.weight)

    # -- judging ------------------------------------------------------------

    def trusted_over(self, start: float, end: float) -> bool:
        """True when no suspicion, quarantine, or brownout overlaps
        ``[start, end)``.

        An *open* quiet run counts from its first quiet bin (padded by
        the sentinel margin, like a confirmed quarantine) — trust is
        withdrawn the moment the feed goes suspiciously silent, not one
        confirmation lag later.  Depressed (browned-out) runs gate the
        same way: the reliability weight sags too, but decay alone
        cannot protect a high-rate block — a tiny weight times a huge
        absence log-likelihood still leaks — so evidence from a feed
        running far under baseline is dropped outright until the feed
        recovers.

        A vantage that has never delivered a single packet is untrusted
        outright: its online sentinel has no baseline to judge silence
        against (cold-start warmup never seeds from empty bins), so
        without this gate a feed that was dead from the start would
        contribute full-weight absence evidence to every block — the
        one failure shape the warmup semantics cannot catch.
        """
        if self.observations == 0:
            return False
        margin = self.sentinel.config.margin
        suspect_since = self.sentinel.suspect_since
        if suspect_since is not None and suspect_since - margin < end:
            return False
        if (self._depressed_since is not None
                and self._depressed_since - margin < end):
            return False
        if any(d_start - margin < end and d_end + margin > start
               for d_start, d_end in self._depressed_closed):
            return False
        return not any(q_start < end and q_end > start
                       for q_start, q_end in
                       self.sentinel.quarantined_intervals())

    def effective_weight(self, bin_start: float, bin_end: float) -> float:
        """The weight a bin over ``[bin_start, bin_end)`` should use.

        Zero (hard gate) while the sentinel suspects an open failure,
        the bin overlaps a quarantine, or the feed is browned out
        (depressed run); otherwise the learned weight.
        Callers should count gated bins via :meth:`note_gated`.
        """
        if not self.trusted_over(bin_start, bin_end):
            return 0.0
        return self.weight

    def note_gated(self, count: int = 1) -> None:
        """Record ``count`` gated windows (one per block by default;
        the columnar engine gates a whole cohort in one call)."""
        self.gated_bins += int(count)
        if self._m_gated is not None:
            self._m_gated.inc(int(count))

    def weight_vector(self, edges: np.ndarray, bin_seconds: float,
                      stride: int = 1) -> np.ndarray:
        """Per-detector-bin effective weights for an offline replay.

        With ``stride == 1`` (the lead source), each bin
        ``[edge, edge + bin_seconds)`` gets zero when it overlaps a
        quarantine window or the open suspect run (hindsight gating —
        the whole window is known by replay time), otherwise the
        learned weight in force at the bin's close.  With a larger
        ``stride`` the source reports once per window of ``stride``
        bins: only each window's closing bin carries a weight (judged
        over the *whole* window span), every other bin is zero.
        Requires ``keep_weight_history=True``.
        """
        out = np.zeros(len(edges), dtype=float)
        span = stride * bin_seconds
        for index in range(stride - 1, len(edges), stride):
            close = float(edges[index]) + bin_seconds
            if not self.trusted_over(close - span, close):
                self.note_gated()
            else:
                out[index] = self.weight_at(close)
        return out

    def weight_at(self, time: float) -> float:
        """The recorded weight in force at ``time`` (offline replays).

        Requires ``keep_weight_history=True``; returns the weight after
        the last sentinel bin closing at or before ``time``, or the
        initial weight before any bin closed.
        """
        if self._history is None:
            raise ValueError("monitor was not built with "
                             "keep_weight_history=True")
        closes = [close for close, _ in self._history]
        index = bisect.bisect_right(closes, time) - 1
        return self.config.initial if index < 0 else self._history[index][1]

    # -- checkpointing ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "config": {
                "ewma_alpha": self.config.ewma_alpha,
                "floor": self.config.floor,
                "initial": self.config.initial,
            },
            "weight": self.weight,
            "observations": self.observations,
            "healthy_bins": self.healthy_bins,
            "quiet_bins": self.quiet_bins,
            "gated_bins": self.gated_bins,
            "depressed_since": self._depressed_since,
            "depressed_closed": [list(pair)
                                 for pair in self._depressed_closed],
            "sentinel": self.sentinel.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SourceMonitor":
        monitor = cls(
            str(data["name"]),
            VantageSentinel.from_dict(data["sentinel"]),
            config=ReliabilityConfig(**data["config"]),
        )
        monitor.weight = float(data["weight"])
        monitor.observations = int(data["observations"])
        monitor.healthy_bins = int(data["healthy_bins"])
        monitor.quiet_bins = int(data["quiet_bins"])
        monitor.gated_bins = int(data.get("gated_bins", 0))
        since = data.get("depressed_since")
        monitor._depressed_since = None if since is None else float(since)
        monitor._depressed_closed = [
            (float(s), float(e))
            for s, e in data.get("depressed_closed", [])]
        return monitor

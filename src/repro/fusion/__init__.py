"""Vantage-fault-tolerant multi-source evidence fusion.

Fuses several telemetry vantages (DNS passive tap, darknet/IBR
telescope, optional active corroboration) *inside* the belief filter:
each source contributes a reliability-weighted log-likelihood ratio per
bin, one :class:`~repro.core.sentinel.VantageSentinel` per source
judges that vantage's feed health, and a failing vantage's evidence is
gated off while the remaining sources keep producing outage calls.
"""

from .engine import (
    FusedBlockSpec,
    FusedDetection,
    FusedModel,
    FusedStreamingDetector,
    build_block_specs,
    detect_fused,
    fused_detector_from_json,
    intersect_interval_lists,
    train_fused,
    union_interval_lists,
)
from .reliability import ReliabilityConfig, SourceMonitor
from .sources import (
    DARKNET_POLICY,
    ActiveProbeSource,
    DarknetSource,
    MappingSource,
    SourceAdapter,
)

__all__ = [
    "ActiveProbeSource",
    "DARKNET_POLICY",
    "DarknetSource",
    "FusedBlockSpec",
    "FusedDetection",
    "FusedModel",
    "FusedStreamingDetector",
    "MappingSource",
    "ReliabilityConfig",
    "SourceAdapter",
    "SourceMonitor",
    "build_block_specs",
    "detect_fused",
    "fused_detector_from_json",
    "intersect_interval_lists",
    "train_fused",
    "union_interval_lists",
]

"""Uniform source adapters: every vantage type is one small class.

The fused detector consumes vantages through one interface —
:class:`SourceAdapter` — so adding a new telemetry source (another
telescope, a resolver tap, an active prober) is one file that answers
two questions: *what did you see per block over this window* and *what
tuning policy fits your noise profile*.  The shape follows the
collector/normaliser split of multi-source monitors like BigBen and
Dhruva's fusion engine: collection quirks stay in the adapter, the
engine sees only per-block arrival times.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from ..net.addr import Family
from ..core.parameters import TuningPolicy

__all__ = ["SourceAdapter", "MappingSource", "DarknetSource",
           "ActiveProbeSource", "DARKNET_POLICY"]

#: Tuning policy for darknet/IBR vantages: the spoofed share of IBR
#: keeps arriving from a dead block, so the per-block noise floor must
#: scale with the block's own rate (matches the offline
#: ``run_darknet_fusion`` experiment).
DARKNET_POLICY = TuningPolicy(noise_fraction_of_rate=0.04)


class SourceAdapter:
    """One vantage as the fusion engine sees it.

    ``name`` keys everything per-source downstream: sentinel and
    reliability state in checkpoints, metrics labels, health-report
    sections, CLI rendering.  Names must be unique within a fused run.
    """

    name: str = "source"

    def per_block(self, family: Family, start: float,
                  end: float) -> Dict[int, np.ndarray]:
        """Sorted arrival times per block key over ``[start, end)``."""
        raise NotImplementedError

    def tuning_policy(self) -> Optional[TuningPolicy]:
        """Per-source tuning policy, or None for the global default."""
        return None


class MappingSource(SourceAdapter):
    """Precomputed per-block arrival times (the DNS tap, replays, tests).

    ``per_family`` maps family -> {block key -> sorted times}; a plain
    {key -> times} mapping may be passed with ``family`` naming which
    family it covers.  Windowing slices each block's array to
    ``[start, end)`` so one mapping can back both train and detect.
    """

    def __init__(self, name: str,
                 per_family: Mapping,
                 family: Optional[Family] = None,
                 policy: Optional[TuningPolicy] = None) -> None:
        self.name = name
        if family is not None:
            per_family = {family: per_family}
        self._per_family = {fam: dict(blocks)
                            for fam, blocks in per_family.items()}
        self._policy = policy

    def per_block(self, family: Family, start: float,
                  end: float) -> Dict[int, np.ndarray]:
        blocks = self._per_family.get(family, {})
        out: Dict[int, np.ndarray] = {}
        for key, times in blocks.items():
            times = np.asarray(times)
            lo, hi = np.searchsorted(times, [start, end])
            out[key] = times[lo:hi]
        return out

    def tuning_policy(self) -> Optional[TuningPolicy]:
        return self._policy


class DarknetSource(SourceAdapter):
    """IBR telescope vantage over a simulated Internet.

    Wraps :class:`~repro.traffic.darknet.DarknetTelescope`; the stream
    is deterministic in ``seed`` (and safe to regenerate in spawned
    workers — the telescope derives per-block generators from a
    SeedSequence, never from global state).
    """

    def __init__(self, telescope, name: str = "darknet",
                 seed: Optional[int] = None,
                 policy: Optional[TuningPolicy] = None) -> None:
        self.name = name
        self.telescope = telescope
        self.seed = seed
        self._policy = policy if policy is not None else DARKNET_POLICY

    def per_block(self, family: Family, start: float,
                  end: float) -> Dict[int, np.ndarray]:
        return self.telescope.per_block(family, seed=self.seed,
                                        start=start, end=end)

    def tuning_policy(self) -> Optional[TuningPolicy]:
        return self._policy


class ActiveProbeSource(SourceAdapter):
    """Simulated active corroboration (Trinocular/Atlas-style rounds).

    Probes each block's known-active addresses once per ``period``
    seconds through an :class:`~repro.active.prober.ActiveProber`; a
    responsive round contributes one "arrival" at the probe time, so
    active reachability feeds the same presence/absence likelihood
    machinery as the passive taps.  Probe responses stop entirely when
    a block is down (no spoofing analogue), so the source's noise floor
    is the policy default.
    """

    def __init__(self, internet, name: str = "active",
                 period: float = 660.0, probes_per_round: int = 4,
                 network_loss: float = 0.01, seed: int = 20257,
                 policy: Optional[TuningPolicy] = None) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.name = name
        self.internet = internet
        self.period = float(period)
        self.probes_per_round = int(probes_per_round)
        self.network_loss = float(network_loss)
        self.seed = int(seed)
        self._policy = policy

    def per_block(self, family: Family, start: float,
                  end: float) -> Dict[int, np.ndarray]:
        # Local import: repro.active imports nothing from fusion, but
        # keeping the prober optional keeps this module importable in
        # minimal deployments that never probe.
        from ..active.prober import ActiveProber
        profiles = [profile for profile in self.internet.profiles
                    if profile.family is family]
        children = np.random.SeedSequence(self.seed).spawn(len(profiles))
        out: Dict[int, np.ndarray] = {}
        for profile, child in zip(profiles, children):
            rng = np.random.default_rng(child)
            prober = ActiveProber(self.internet, rng,
                                  network_loss=self.network_loss)
            # Deterministic phase per block so rounds do not synchronise
            # across the population (a synchronised probe fleet would
            # make every block's bin boundaries degenerate).
            phase = float(rng.random()) * self.period
            responses = []
            round_time = start + phase
            while round_time < end:
                _, responded = prober.probe_round(
                    profile, round_time, self.probes_per_round)
                if responded:
                    responses.append(round_time)
                round_time += self.period
            out[profile.key] = np.asarray(responses, dtype=float)
        return out

    def tuning_policy(self) -> Optional[TuningPolicy]:
        return self._policy

"""Sharded parallel execution of the batch pipeline.

The batch pipeline is embarrassingly parallel across blocks: training
fits each block's history independently, tuning plans each block's
parameters from its own history, and the vectorised belief pass is
row-independent (each block is one matrix row).  This module exploits
that by partitioning the block keyspace into deterministic contiguous
chunks, running each chunk through a worker-local
:class:`~repro.core.pipeline.PassiveOutagePipeline` in a separate
process, and merging the shard results into exactly what the
sequential path would have produced.

Equivalence is a hard guarantee, not an aspiration: shard results are
merged so that events, dead letters, guardrail counters, and the run
health report are bit-for-bit identical to a sequential run (pinned by
the property tests in ``tests/test_parallel.py``, including under
fault injection).  The ingredients:

* **Deterministic planning.**  Shards are contiguous chunks of the
  *sorted* key list; the chunk size defaults to a fixed fraction of
  the population (independent of the worker count), so ``--workers 1``
  and ``--workers 4`` execute the identical plan and differ only in
  which process runs each chunk.
* **Per-block independence.**  The detector groups blocks by
  (bin size, thresholds, diurnal-ness) and each group's belief pass is
  elementwise per row, so splitting a group across shards cannot
  change any block's verdict.
* **Canonical merge order.**  Workers discover dead letters in group
  iteration order, which depends on shard composition; the merged
  registry sorts entries canonically
  (:meth:`~repro.core.health.DeadLetterRegistry.merged`) so the union
  is order-independent.
* **Exact wire format.**  Shard results cross the process boundary as
  versioned JSON-able documents (:mod:`repro.core.serialize`); Python
  floats survive the JSON round-trip bit-for-bit via repr.
* **Parent-side policy.**  Workers run with the error budget disabled
  (``max_quarantine_frac=1.0``) and report everything; the parent
  applies :class:`~repro.core.health.ErrorBudget` to the merged union,
  so the budget verdict cannot depend on how blocks landed in shards.
  The merged report's ``accounts_for`` completeness proof holds over
  the union of the shard keyspaces exactly when it held per shard.
* **Telemetry fold-in.**  When the parent meters, each worker runs a
  private :class:`~repro.obs.metrics.MetricsRegistry`; its
  ``repro-metrics-v1`` snapshot rides home in the shard document and
  is folded into the parent via
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`.  The
  merged registries are then bound to the parent's metric series with
  ``backfill=False`` — the fold already counted them.

Shard results can be checkpointed: given a checkpoint directory, every
completed shard's document is written atomically as it finishes, under
a manifest naming the plan.  A killed run resumes by recomputing only
the missing shards — and because merge is deterministic, the resumed
run's output is identical to an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import os
import time as _time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict
from multiprocessing import get_context
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .core.checkpoint import (
    load_shard_result,
    read_shard_manifest,
    save_shard_result,
    write_shard_manifest,
)
from .core.detector import dead_letter_metric, guardrail_metric
from .core.events import RefinementConfig
from .core.health import ErrorBudgetExceeded, RunHealthReport
from .core.parameters import HomogeneousPlanner, TuningPolicy
from .core.pipeline import PassiveOutagePipeline, PipelineResult, TrainedModel
from .core.serialize import (
    block_result_from_dict,
    block_result_to_dict,
    model_blocks_from_dict,
    model_blocks_to_dict,
)
from .net.addr import Family
from .obs.metrics import NULL_REGISTRY, MetricsRegistry
from .obs.tracing import NULL_TRACER

__all__ = [
    "SHARD_RESULT_FORMAT",
    "plan_shards",
    "sharded_train",
    "sharded_detect",
    "set_default_parallelism",
    "get_default_parallelism",
]

#: Format tag of one shard's result document (the worker-result wire
#: format).  Versioned like every other persisted document in the repo
#: so a resume never misreads a stale or future shard file.
SHARD_RESULT_FORMAT = "repro-shard-result-v1"

#: Default number of shards a population is split into when no explicit
#: chunk size is given.  Deliberately independent of the worker count:
#: the plan — and therefore every merged artefact — must be a function
#: of the population alone, so ``--workers 1`` and ``--workers 4``
#: produce bit-identical output.  16 oversubscribes typical worker
#: counts enough that one slow shard does not serialise the pool.
DEFAULT_SHARD_COUNT = 16


# -- planning ---------------------------------------------------------------


def plan_shards(keys: Sequence[int],
                shard_chunk: Optional[int] = None) -> List[List[int]]:
    """Partition ``keys`` into deterministic contiguous sorted chunks.

    The plan depends only on the key population and the chunk size —
    never on the worker count or any runtime state — which is what
    makes sharded output reproducible across worker counts and across
    kill-and-resume.
    """
    ordered = sorted(keys)
    if not ordered:
        return []
    if shard_chunk is None:
        shard_chunk = max(1, -(-len(ordered) // DEFAULT_SHARD_COUNT))
    if shard_chunk < 1:
        raise ValueError("shard_chunk must be >= 1")
    return [ordered[i:i + shard_chunk]
            for i in range(0, len(ordered), shard_chunk)]


def _plan_digest(stage: str, family: Family, start: float, end: float,
                 shards: Sequence[Sequence[int]]) -> str:
    """Fingerprint of a shard plan, for matching cached shard results.

    Covers the stage, window, and the exact chunked keyspace, so a
    checkpoint directory left by a differently-planned (or differently-
    windowed) run reads as a miss rather than as poison.
    """
    parts = [stage, str(int(family)), repr(float(start)), repr(float(end))]
    for shard in shards:
        parts.append(",".join(str(key) for key in shard))
    blob = "|".join(parts).encode("utf-8")
    return hashlib.blake2b(blob, digest_size=8).hexdigest()


# -- process-wide defaults (used by the CLI's experiment command) -----------

_default_workers: Optional[int] = None
_default_shard_chunk: Optional[int] = None


def set_default_parallelism(workers: Optional[int],
                            shard_chunk: Optional[int] = None,
                            ) -> Tuple[Optional[int], Optional[int]]:
    """Set the process-wide default worker count for new pipelines.

    Pipelines constructed with ``workers=None`` pick this up, which is
    how ``repro experiment --workers N`` parallelises runners that
    build their own pipelines internally.  Returns the previous
    ``(workers, shard_chunk)`` so callers can restore it.
    """
    global _default_workers, _default_shard_chunk
    previous = (_default_workers, _default_shard_chunk)
    _default_workers = workers
    _default_shard_chunk = shard_chunk
    return previous


def get_default_parallelism() -> Tuple[Optional[int], Optional[int]]:
    """The process-wide default ``(workers, shard_chunk)``."""
    return _default_workers, _default_shard_chunk


# -- worker side ------------------------------------------------------------


def _pipeline_config(pipeline: PassiveOutagePipeline) -> Dict[str, Any]:
    """Everything a worker needs to rebuild an equivalent pipeline.

    The worker pipeline differs from the parent deliberately: no
    aggregation (a supernet may span shards, so the fallback runs
    parent-side over the merged result), no error budget (the budget
    is the parent's verdict over the union), and sequential execution
    (``workers=0`` — a worker must never recurse into the pool).
    """
    planner = pipeline.planner
    return {
        "policy": asdict(pipeline.policy),
        "refinement": asdict(pipeline.refinement),
        "homogeneous_bin": (planner.bin_seconds
                            if isinstance(planner, HomogeneousPlanner)
                            else None),
        "learn_diurnal": pipeline.learn_diurnal,
        "keep_belief_traces": pipeline.detector.keep_belief_traces,
        "metered": pipeline.metrics.enabled,
    }


def _worker_pipeline(config: Dict[str, Any],
                     ) -> Tuple[PassiveOutagePipeline, Any]:
    """Build the worker-local pipeline (and registry) from a config."""
    registry = MetricsRegistry() if config["metered"] else NULL_REGISTRY
    pipeline = PassiveOutagePipeline(
        policy=TuningPolicy(**config["policy"]),
        refinement=RefinementConfig(**config["refinement"]),
        homogeneous_bin=config["homogeneous_bin"],
        aggregation_levels=0,
        learn_diurnal=config["learn_diurnal"],
        keep_belief_traces=config["keep_belief_traces"],
        max_quarantine_frac=1.0,
        metrics=registry,
        tracer=NULL_TRACER,
        workers=0,
    )
    return pipeline, registry


def _shard_document(stage: str, payload: Dict[str, Any],
                    health: RunHealthReport, registry: Any) -> Dict[str, Any]:
    document = {
        "format": SHARD_RESULT_FORMAT,
        "stage": stage,
        "index": payload["index"],
        "plan_digest": payload["plan_digest"],
        "health": health.as_dict(),
    }
    if registry.enabled:
        document["metrics"] = registry.snapshot()
    return document


def _run_train_shard(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Train one shard's blocks in the calling process.

    Module-level (not a closure) so the spawn start method can pickle
    it; everything it needs arrives in the payload.
    """
    pipeline, registry = _worker_pipeline(payload["config"])
    model = pipeline.train(Family(payload["family"]), payload["per_block"],
                           payload["start"], payload["end"])
    document = _shard_document("train", payload, model.health, registry)
    document["blocks"] = model_blocks_to_dict(model.histories,
                                              model.parameters)
    return document


def _run_detect_shard(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Detect over one shard's blocks in the calling process."""
    pipeline, registry = _worker_pipeline(payload["config"])
    histories, parameters = model_blocks_from_dict(payload["blocks"])
    model = TrainedModel(
        family=Family(payload["family"]), histories=histories,
        parameters=parameters, train_start=payload["train_start"],
        train_end=payload["train_end"])
    result = pipeline.detect(model, payload["per_block"],
                             payload["start"], payload["end"])
    document = _shard_document("detect", payload, result.health, registry)
    document["results"] = [block_result_to_dict(result.blocks[key])
                           for key in sorted(result.blocks)]
    return document


# -- orchestration ----------------------------------------------------------


def _ensure_child_import_path() -> None:
    """Make sure spawned workers can ``import repro``.

    Spawned children rebuild ``sys.path`` from the environment; if the
    parent found this package through an in-process path tweak rather
    than ``PYTHONPATH``, the children would not.  Prepending the
    package root to ``PYTHONPATH`` (inherited by children) closes that
    gap without affecting the parent.
    """
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    parts = existing.split(os.pathsep) if existing else []
    if package_root not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([package_root] + parts)


def _load_cached_shards(checkpoint_dir: Optional[str], stage: str,
                        digest: str, n_shards: int) -> Dict[int, Dict]:
    """Cached shard documents matching this exact plan, by index."""
    if checkpoint_dir is None:
        return {}
    manifest = read_shard_manifest(checkpoint_dir)
    if manifest is None or manifest.get("plan_digest") != digest:
        return {}
    cached: Dict[int, Dict] = {}
    for index in range(n_shards):
        document = load_shard_result(checkpoint_dir, index)
        if (document is not None
                and document.get("format") == SHARD_RESULT_FORMAT
                and document.get("stage") == stage
                and document.get("index") == index
                and document.get("plan_digest") == digest):
            cached[index] = document
    return cached


def _execute_shards(stage: str, worker, payloads: List[Dict[str, Any]],
                    workers: int, checkpoint_dir: Optional[str],
                    digest: str, n_shards: int) -> List[Dict[str, Any]]:
    """Run (or reload) every shard and return documents in plan order.

    ``workers == 1`` runs the shards in-process through the *same*
    worker function and merge path as the pooled case — single-worker
    sharded runs are the equivalence baseline, not a separate code
    path.  Completed shards are checkpointed as they finish.
    """
    cached = _load_cached_shards(checkpoint_dir, stage, digest, n_shards)
    if checkpoint_dir is not None and not cached:
        # New or mismatched plan: stamp the manifest before computing,
        # so partial results written below are attributable to it.
        write_shard_manifest(checkpoint_dir, {
            "stage": stage, "plan_digest": digest, "n_shards": n_shards})
    documents: Dict[int, Dict[str, Any]] = dict(cached)
    pending = [p for p in payloads if p["index"] not in documents]

    def _completed(document: Dict[str, Any]) -> None:
        documents[document["index"]] = document
        if checkpoint_dir is not None:
            save_shard_result(checkpoint_dir, document["index"], document)

    if not pending:
        pass
    elif workers <= 1:
        for payload in pending:
            _completed(worker(payload))
    else:
        _ensure_child_import_path()
        with ProcessPoolExecutor(
                max_workers=min(workers, len(pending)),
                mp_context=get_context("spawn")) as pool:
            futures = {pool.submit(worker, payload) for payload in pending}
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    _completed(future.result())
    return [documents[index] for index in range(n_shards)]


def _fold_telemetry(pipeline: PassiveOutagePipeline,
                    documents: List[Dict[str, Any]]) -> bool:
    """Fold worker metric snapshots into the parent registry.

    Returns True when snapshots were folded — the signal that merged
    registries must bind to the parent's metric series *without*
    backfill (the fold already counted every dead letter and guardrail
    trip; backfilling would double them).
    """
    if not pipeline.metrics.enabled:
        return False
    folded = False
    for document in documents:
        snapshot = document.get("metrics")
        if snapshot is not None:
            pipeline.metrics.merge_snapshot(snapshot)
            folded = True
    return folded


def _merged_report(pipeline: PassiveOutagePipeline, run: str,
                   documents: List[Dict[str, Any]]) -> RunHealthReport:
    report = RunHealthReport.merged(
        (RunHealthReport.from_dict(document["health"])
         for document in documents),
        run=run, max_quarantine_frac=pipeline.budget.max_quarantine_frac)
    folded = _fold_telemetry(pipeline, documents)
    if pipeline.metrics.enabled:
        report.dead_letters.bind(dead_letter_metric(pipeline.metrics),
                                 backfill=not folded)
        report.guardrails.bind(guardrail_metric(pipeline.metrics),
                               backfill=not folded)
    return report


def sharded_train(pipeline: PassiveOutagePipeline, family: Family,
                  per_block: Mapping[int, np.ndarray],
                  start: float, end: float,
                  checkpoint_dir: Optional[str] = None) -> TrainedModel:
    """Train a model by sharding the population across workers.

    Returns a model identical (histories, parameters, dead letters,
    health accounting) to ``pipeline.train`` run sequentially; raises
    :class:`~repro.core.health.ErrorBudgetExceeded` on the *merged*
    quarantine fraction.
    """
    shards = plan_shards(per_block.keys(), pipeline.shard_chunk)
    digest = _plan_digest("train", family, start, end, shards)
    config = _pipeline_config(pipeline)
    payloads = [{
        "index": index, "plan_digest": digest, "config": config,
        "family": int(family), "start": float(start), "end": float(end),
        "per_block": {key: per_block[key] for key in shard
                      if key in per_block},
    } for index, shard in enumerate(shards)]
    with pipeline.tracer.span("train_sharded", family=family.name.lower(),
                              blocks=len(per_block), shards=len(shards)):
        documents = _execute_shards("train", _run_train_shard, payloads,
                                    pipeline.workers or 1, checkpoint_dir,
                                    digest, len(shards))

    histories: Dict[int, Any] = {}
    parameters: Dict[int, Any] = {}
    for document in documents:
        shard_histories, shard_parameters = model_blocks_from_dict(
            document["blocks"])
        histories.update(shard_histories)
        parameters.update(shard_parameters)
    report = _merged_report(pipeline, "train", documents)
    registry = report.dead_letters
    try:
        pipeline.budget.check("train", len(per_block), len(registry))
    except ErrorBudgetExceeded as error:
        report.budget_tripped = True
        error.report = report
        raise
    return TrainedModel(family=family, histories=histories,
                        parameters=parameters, train_start=start,
                        train_end=end, dead_letters=registry, health=report)


def sharded_detect(pipeline: PassiveOutagePipeline, model: TrainedModel,
                   per_block: Mapping[int, np.ndarray],
                   start: float, end: float,
                   checkpoint_dir: Optional[str] = None) -> PipelineResult:
    """Detect over a window by sharding the model's blocks.

    Shards partition the model's *entire* parameter keyspace (not just
    the measurable blocks), so the merged detect-stage accounting sums
    to exactly the sequential stage row.  The spatial-aggregation
    fallback runs parent-side over the merged result: a supernet's
    children may span shards, so no worker can see a whole supernet.
    """
    shards = plan_shards(model.parameters.keys(), pipeline.shard_chunk)
    digest = _plan_digest("detect", model.family, start, end, shards)
    config = _pipeline_config(pipeline)
    payloads = [{
        "index": index, "plan_digest": digest, "config": config,
        "family": int(model.family),
        "train_start": model.train_start, "train_end": model.train_end,
        "start": float(start), "end": float(end),
        "blocks": model_blocks_to_dict(
            {key: model.histories[key] for key in shard
             if key in model.histories},
            {key: model.parameters[key] for key in shard}),
        "per_block": {key: per_block[key] for key in shard
                      if key in per_block},
    } for index, shard in enumerate(shards)]
    with pipeline.tracer.span("detect_sharded",
                              family=model.family.name.lower(),
                              blocks=len(model.parameters),
                              shards=len(shards)):
        documents = _execute_shards("detect", _run_detect_shard, payloads,
                                    pipeline.workers or 1, checkpoint_dir,
                                    digest, len(shards))

    blocks = {}
    for document in documents:
        for entry in document["results"]:
            result = block_result_from_dict(entry)
            blocks[result.key] = result
    report = _merged_report(pipeline, "detect", documents)
    registry = report.dead_letters
    result = PipelineResult(family=model.family, start=start, end=end,
                            blocks=blocks, dead_letters=registry,
                            health=report)
    # Same ordering as the sequential path: the budget is judged on the
    # primary population before the best-effort aggregation fallback.
    try:
        pipeline.budget.check(
            "detect", report.stage("detect").attempted, len(registry))
    except ErrorBudgetExceeded as error:
        report.budget_tripped = True
        error.report = report
        raise
    if pipeline.aggregation_levels > 0 and model.unmeasurable_keys:
        aggregate_stage = report.stage("aggregate")
        clock = _time.perf_counter()
        with pipeline.tracer.span("aggregate",
                                  family=model.family.name.lower()):
            pipeline._detect_aggregated(model, per_block, start, end,
                                        result, registry)
        aggregate_stage.seconds = _time.perf_counter() - clock
        aggregate_stage.attempted = len(result.aggregated)
        aggregate_stage.succeeded = len(result.aggregated)
        pipeline._stage_seconds("aggregate", aggregate_stage.seconds)
    return result

"""Sharded parallel execution of the batch pipeline.

The batch pipeline is embarrassingly parallel across blocks: training
fits each block's history independently, tuning plans each block's
parameters from its own history, and the vectorised belief pass is
row-independent (each block is one matrix row).  This module exploits
that by partitioning the block keyspace into deterministic contiguous
chunks, running each chunk through a worker-local
:class:`~repro.core.pipeline.PassiveOutagePipeline` in a separate
process, and merging the shard results into exactly what the
sequential path would have produced.

Equivalence is a hard guarantee, not an aspiration: shard results are
merged so that events, dead letters, guardrail counters, and the run
health report are bit-for-bit identical to a sequential run (pinned by
the property tests in ``tests/test_parallel.py``, including under
fault injection).  The ingredients:

* **Deterministic planning.**  Shards are contiguous chunks of the
  *sorted* key list; the chunk size defaults to a fixed fraction of
  the population (independent of the worker count), so ``--workers 1``
  and ``--workers 4`` execute the identical plan and differ only in
  which process runs each chunk.
* **Per-block independence.**  The detector groups blocks by
  (bin size, thresholds, diurnal-ness) and each group's belief pass is
  elementwise per row, so splitting a group across shards cannot
  change any block's verdict.
* **Canonical merge order.**  Workers discover dead letters in group
  iteration order, which depends on shard composition; the merged
  registry sorts entries canonically
  (:meth:`~repro.core.health.DeadLetterRegistry.merged`) so the union
  is order-independent.
* **Exact wire format.**  Shard results cross the process boundary as
  versioned JSON-able documents (:mod:`repro.core.serialize`); Python
  floats survive the JSON round-trip bit-for-bit via repr.
* **Parent-side policy.**  Workers run with the error budget disabled
  (``max_quarantine_frac=1.0``) and report everything; the parent
  applies :class:`~repro.core.health.ErrorBudget` to the merged union,
  so the budget verdict cannot depend on how blocks landed in shards.
  The merged report's ``accounts_for`` completeness proof holds over
  the union of the shard keyspaces exactly when it held per shard.
* **Telemetry fold-in.**  When the parent meters, each worker runs a
  private :class:`~repro.obs.metrics.MetricsRegistry`; its
  ``repro-metrics-v1`` snapshot rides home in the shard document and
  is folded into the parent via
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`.  The
  merged registries are then bound to the parent's metric series with
  ``backfill=False`` — the fold already counted them.

Shard results can be checkpointed: given a checkpoint directory, every
completed shard's document is written atomically as it finishes, under
a manifest naming the plan.  A killed run resumes by recomputing only
the missing shards — and because merge is deterministic, the resumed
run's output is identical to an uninterrupted one.

**Supervision.**  The pool path above dies wholesale when one worker
process segfaults, OOMs, or hangs — process-fatal failures that never
surface as Python exceptions, so the per-block quarantine in
:mod:`repro.core.health` cannot catch them.  With a
:class:`SupervisionPolicy`, shards instead run under a
:class:`ShardSupervisor`: each shard attempt is its own child process
with a wall-clock deadline and an RSS ceiling; a dead/stalled/bloated
child is classified (``crash``/``hang``/``oom``), retried with bounded
exponential backoff and deterministic seeded jitter, and on retry
exhaustion the shard is **bisected** — the keyspace halves recursively
until the minimal poisoned block(s) are isolated and dead-lettered
under ``stage="supervision"``, giving process-fatal poison the same
per-block quarantine contract as exception-level poison.  The run then
completes *degraded*: its health report gains a ``coverage`` section
(planned/delivered/lost blocks plus every unit's attempt history),
still proves ``accounts_for()`` over the full population, and feeds
the error budget.  Attempt counts and bisection lineage persist in the
checkpoint manifest, so kill-and-resume never re-pays completed
retries.
"""

from __future__ import annotations

import hashlib
import os
import time as _time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field
from multiprocessing import get_context
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

import numpy as np

from .core.checkpoint import (
    discard_shard_result,
    load_shard_document,
    prune_stale_shards,
    read_shard_manifest,
    save_shard_result,
    write_shard_manifest,
)
from .core.detector import dead_letter_metric, guardrail_metric
from .core.events import RefinementConfig
from .core.health import (
    ErrorBudgetExceeded,
    RunHealthReport,
    ShardAttemptRecord,
    fold_lost_coverage,
)
from .core.parameters import HomogeneousPlanner, TuningPolicy
from .core.pipeline import PassiveOutagePipeline, PipelineResult, TrainedModel
from .core.serialize import (
    block_result_from_dict,
    block_result_to_dict,
    model_blocks_from_dict,
    model_blocks_to_dict,
)
from .net.addr import Family
from .obs.metrics import NULL_REGISTRY, MetricsRegistry
from .obs.explain import NULL_EXPLAIN, ExplainLog
from .obs.tracing import NULL_TRACER, SpanTracer

__all__ = [
    "SHARD_RESULT_FORMAT",
    "plan_shards",
    "sharded_train",
    "sharded_detect",
    "set_default_parallelism",
    "get_default_parallelism",
    "SupervisionPolicy",
    "ShardSupervisor",
    "ShardFatalError",
    "ShardCrash",
    "ShardHang",
    "ShardOOM",
    "ShardWorkerError",
]

#: Format tag of one shard's result document (the worker-result wire
#: format).  Versioned like every other persisted document in the repo
#: so a resume never misreads a stale or future shard file.
SHARD_RESULT_FORMAT = "repro-shard-result-v1"

#: Default number of shards a population is split into when no explicit
#: chunk size is given.  Deliberately independent of the worker count:
#: the plan — and therefore every merged artefact — must be a function
#: of the population alone, so ``--workers 1`` and ``--workers 4``
#: produce bit-identical output.  16 oversubscribes typical worker
#: counts enough that one slow shard does not serialise the pool.
DEFAULT_SHARD_COUNT = 16


# -- planning ---------------------------------------------------------------


def plan_shards(keys: Sequence[int],
                shard_chunk: Optional[int] = None) -> List[List[int]]:
    """Partition ``keys`` into deterministic contiguous sorted chunks.

    The plan depends only on the key population and the chunk size —
    never on the worker count or any runtime state — which is what
    makes sharded output reproducible across worker counts and across
    kill-and-resume.
    """
    ordered = sorted(keys)
    if not ordered:
        return []
    if shard_chunk is None:
        shard_chunk = max(1, -(-len(ordered) // DEFAULT_SHARD_COUNT))
    if shard_chunk < 1:
        raise ValueError("shard_chunk must be >= 1")
    return [ordered[i:i + shard_chunk]
            for i in range(0, len(ordered), shard_chunk)]


def _plan_digest(stage: str, family: Family, start: float, end: float,
                 shards: Sequence[Sequence[int]]) -> str:
    """Fingerprint of a shard plan, for matching cached shard results.

    Covers the stage, window, and the exact chunked keyspace, so a
    checkpoint directory left by a differently-planned (or differently-
    windowed) run reads as a miss rather than as poison.
    """
    parts = [stage, str(int(family)), repr(float(start)), repr(float(end))]
    for shard in shards:
        parts.append(",".join(str(key) for key in shard))
    blob = "|".join(parts).encode("utf-8")
    return hashlib.blake2b(blob, digest_size=8).hexdigest()


# -- process-wide defaults (used by the CLI's experiment command) -----------

_default_workers: Optional[int] = None
_default_shard_chunk: Optional[int] = None


def set_default_parallelism(workers: Optional[int],
                            shard_chunk: Optional[int] = None,
                            ) -> Tuple[Optional[int], Optional[int]]:
    """Set the process-wide default worker count for new pipelines.

    Pipelines constructed with ``workers=None`` pick this up, which is
    how ``repro experiment --workers N`` parallelises runners that
    build their own pipelines internally.  Returns the previous
    ``(workers, shard_chunk)`` so callers can restore it.
    """
    global _default_workers, _default_shard_chunk
    previous = (_default_workers, _default_shard_chunk)
    _default_workers = workers
    _default_shard_chunk = shard_chunk
    return previous


def get_default_parallelism() -> Tuple[Optional[int], Optional[int]]:
    """The process-wide default ``(workers, shard_chunk)``."""
    return _default_workers, _default_shard_chunk


# -- worker side ------------------------------------------------------------


def _pipeline_config(pipeline: PassiveOutagePipeline) -> Dict[str, Any]:
    """Everything a worker needs to rebuild an equivalent pipeline.

    The worker pipeline differs from the parent deliberately: no
    aggregation (a supernet may span shards, so the fallback runs
    parent-side over the merged result), no error budget (the budget
    is the parent's verdict over the union), and sequential execution
    (``workers=0`` — a worker must never recurse into the pool).
    """
    planner = pipeline.planner
    return {
        "policy": asdict(pipeline.policy),
        "refinement": asdict(pipeline.refinement),
        "homogeneous_bin": (planner.bin_seconds
                            if isinstance(planner, HomogeneousPlanner)
                            else None),
        "learn_diurnal": pipeline.learn_diurnal,
        "keep_belief_traces": pipeline.detector.keep_belief_traces,
        "metered": pipeline.metrics.enabled,
        "explained": pipeline.detector.explain.enabled,
        "traced": pipeline.tracer.enabled,
        # Distributed-trace context: trace id plus the dispatching span,
        # so worker spans join the parent's trace instead of minting
        # anonymous ones that the merged file cannot relate.
        "trace_ctx": pipeline.tracer.context(),
    }


def _worker_pipeline(config: Dict[str, Any],
                     ) -> Tuple[PassiveOutagePipeline, Any]:
    """Build the worker-local pipeline (and registry) from a config."""
    registry = MetricsRegistry() if config["metered"] else NULL_REGISTRY
    tracer = (SpanTracer.from_context(config.get("trace_ctx"))
              if config.get("traced") else NULL_TRACER)
    pipeline = PassiveOutagePipeline(
        policy=TuningPolicy(**config["policy"]),
        refinement=RefinementConfig(**config["refinement"]),
        homogeneous_bin=config["homogeneous_bin"],
        aggregation_levels=0,
        learn_diurnal=config["learn_diurnal"],
        keep_belief_traces=config["keep_belief_traces"],
        max_quarantine_frac=1.0,
        metrics=registry,
        tracer=tracer,
        workers=0,
    )
    if config.get("explained"):
        # Worker-local explain ring; its events ship home in the shard
        # document and re-sequence into the parent's log.
        pipeline.detector.explain = ExplainLog()
    return pipeline, registry


def _shard_document(stage: str, payload: Dict[str, Any],
                    health: RunHealthReport, registry: Any,
                    tracer: Any = NULL_TRACER,
                    explain: Any = NULL_EXPLAIN) -> Dict[str, Any]:
    document = {
        "format": SHARD_RESULT_FORMAT,
        "stage": stage,
        "index": payload["index"],
        "plan_digest": payload["plan_digest"],
        "health": health.as_dict(),
    }
    if "unit" in payload:
        # Supervised execution unit id (bisection lineage) — absent
        # from legacy pool-path documents, whose unit IS the index.
        document["unit"] = payload["unit"]
    if registry.enabled:
        document["metrics"] = registry.snapshot()
    if tracer.enabled:
        # Worker spans ride home in the result document; without this
        # every span a shard child recorded was silently dropped and
        # the parent's --trace-out file showed dispatch gaps instead.
        document["spans"] = tracer.export_spans()
    if explain.enabled and len(explain):
        document["explain"] = explain.events()
    return document


def _run_train_shard(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Train one shard's blocks in the calling process.

    Module-level (not a closure) so the spawn start method can pickle
    it; everything it needs arrives in the payload.
    """
    pipeline, registry = _worker_pipeline(payload["config"])
    model = pipeline.train(Family(payload["family"]), payload["per_block"],
                           payload["start"], payload["end"])
    document = _shard_document("train", payload, model.health, registry,
                               pipeline.tracer, pipeline.detector.explain)
    document["blocks"] = model_blocks_to_dict(model.histories,
                                              model.parameters)
    return document


def _run_detect_shard(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Detect over one shard's blocks in the calling process."""
    pipeline, registry = _worker_pipeline(payload["config"])
    histories, parameters = model_blocks_from_dict(payload["blocks"])
    model = TrainedModel(
        family=Family(payload["family"]), histories=histories,
        parameters=parameters, train_start=payload["train_start"],
        train_end=payload["train_end"])
    result = pipeline.detect(model, payload["per_block"],
                             payload["start"], payload["end"])
    document = _shard_document("detect", payload, result.health, registry,
                               pipeline.tracer, pipeline.detector.explain)
    document["results"] = [block_result_to_dict(result.blocks[key])
                           for key in sorted(result.blocks)]
    return document


# -- orchestration ----------------------------------------------------------


def _ensure_child_import_path() -> None:
    """Make sure spawned workers can ``import repro``.

    Spawned children rebuild ``sys.path`` from the environment; if the
    parent found this package through an in-process path tweak rather
    than ``PYTHONPATH``, the children would not.  Prepending the
    package root to ``PYTHONPATH`` (inherited by children) closes that
    gap without affecting the parent.
    """
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    parts = existing.split(os.pathsep) if existing else []
    if package_root not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([package_root] + parts)


def _cache_corrupt_metric(metrics: Any) -> Any:
    return metrics.counter(
        "shard_cache_corrupt_total",
        "Corrupt cached shard files found at resume (counted, deleted, "
        "and recomputed)")


def _load_cached_shards(checkpoint_dir: Optional[str], stage: str,
                        digest: str, n_shards: int,
                        metrics: Any = NULL_REGISTRY) -> Dict[int, Dict]:
    """Cached shard documents matching this exact plan, by index.

    A *missing* shard file is the normal resume case (the shard never
    completed); a *corrupt* one is an infrastructure fault — it is
    counted (``shard_cache_corrupt_total``) and deleted so this resume,
    and every later one, rewrites it instead of silently recomputing
    behind an undiagnosed rotting file.
    """
    if checkpoint_dir is None:
        return {}
    manifest = read_shard_manifest(checkpoint_dir)
    if manifest is None or manifest.get("plan_digest") != digest:
        return {}
    cached: Dict[int, Dict] = {}
    for index in range(n_shards):
        status, document = load_shard_document(checkpoint_dir, index)
        if status == "corrupt":
            _cache_corrupt_metric(metrics).inc()
            discard_shard_result(checkpoint_dir, index)
            continue
        if (status == "ok"
                and document.get("format") == SHARD_RESULT_FORMAT
                and document.get("stage") == stage
                and document.get("index") == index
                and document.get("plan_digest") == digest):
            cached[index] = document
    return cached


def _execute_shards(stage: str, worker, payloads: List[Dict[str, Any]],
                    workers: int, checkpoint_dir: Optional[str],
                    digest: str, n_shards: int,
                    metrics: Any = NULL_REGISTRY) -> List[Dict[str, Any]]:
    """Run (or reload) every shard and return documents in plan order.

    ``workers == 1`` runs the shards in-process through the *same*
    worker function and merge path as the pooled case — single-worker
    sharded runs are the equivalence baseline, not a separate code
    path.  Completed shards are checkpointed as they finish.
    """
    cached = _load_cached_shards(checkpoint_dir, stage, digest, n_shards,
                                 metrics)
    if checkpoint_dir is not None:
        # Plan-time hygiene: shard files whose digest mismatches the
        # current plan can never be read again — without pruning, a
        # reused checkpoint directory accumulates them forever.  Runs
        # after the cache load so in-plan corrupt files were already
        # counted and removed above.
        prune_stale_shards(checkpoint_dir, digest)
    if checkpoint_dir is not None and not cached:
        # New or mismatched plan: stamp the manifest before computing,
        # so partial results written below are attributable to it.
        write_shard_manifest(checkpoint_dir, {
            "stage": stage, "plan_digest": digest, "n_shards": n_shards})
    documents: Dict[int, Dict[str, Any]] = dict(cached)
    pending = [p for p in payloads if p["index"] not in documents]

    def _completed(document: Dict[str, Any]) -> None:
        documents[document["index"]] = document
        if checkpoint_dir is not None:
            save_shard_result(checkpoint_dir, document["index"], document)

    if not pending:
        pass
    elif workers <= 1:
        for payload in pending:
            _completed(worker(payload))
    else:
        _ensure_child_import_path()
        with ProcessPoolExecutor(
                max_workers=min(workers, len(pending)),
                mp_context=get_context("spawn")) as pool:
            futures = {pool.submit(worker, payload) for payload in pending}
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    _completed(future.result())
    return [documents[index] for index in range(n_shards)]


# -- supervised execution ---------------------------------------------------

#: Env var carrying the process-fault spec for the chaos suite.  The
#: literal is duplicated from :mod:`repro.testing.faults` on purpose:
#: this production module must not import the testing layer at module
#: scope (the import-health contract), and the env channel is the only
#: coupling point.
_PROCESS_FAULT_ENV = "REPRO_PROCESS_FAULTS"


class ShardFatalError(RuntimeError):
    """A shard's worker process died without a Python-level verdict.

    Base of the process-fatal outcome taxonomy.  Instances are what
    land in ``stage="supervision"`` dead letters when bisection
    isolates a poisoned block — the process-level analogue of
    :class:`~repro.core.health.BlockDataError`.
    """


class ShardCrash(ShardFatalError):
    """The worker process exited without delivering a result."""


class ShardHang(ShardFatalError):
    """The worker process overran its wall-clock deadline."""


class ShardOOM(ShardFatalError):
    """The worker process breached its resident-memory ceiling."""


class ShardWorkerError(RuntimeError):
    """A supervised worker raised a Python-level exception.

    Distinct from :class:`ShardFatalError` on purpose: per-block data
    problems are already contained *inside* the worker by the dead-
    letter scopes, so an exception escaping a worker is a harness bug —
    it propagates instead of being retried, exactly like the
    unsupervised pool path.
    """


_OUTCOME_ERRORS = {
    "crash": ShardCrash,
    "hang": ShardHang,
    "oom": ShardOOM,
}


@dataclass(frozen=True)
class SupervisionPolicy:
    """How supervised shard attempts are bounded, retried, and bisected.

    ``timeout`` is the per-attempt wall-clock deadline in seconds
    (None: no deadline); ``max_rss_mb`` the per-attempt resident-set
    ceiling in megabytes (None: unenforced; also unenforced off Linux,
    where ``/proc`` is unavailable).  ``retries`` bounds *failed*
    attempts per unit — a unit runs at most ``retries + 1`` times
    before it is bisected (or, at one block, lost).  Backoff before
    retry ``n`` is ``base * factor**(n-1)`` capped at ``cap``, scaled
    by a deterministic jitter in ``[0.5, 1.0]`` seeded from the plan
    digest and unit id, so two runs of the same plan wait identically
    and a thundering herd of retries still de-synchronises.
    """

    timeout: Optional[float] = None
    retries: int = 2
    max_rss_mb: Optional[float] = None
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_cap: float = 5.0
    poll_interval: float = 0.02

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.max_rss_mb is not None and self.max_rss_mb <= 0:
            raise ValueError("max_rss_mb must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1


def _supervised_entry(worker: Callable[[Dict[str, Any]], Dict[str, Any]],
                      payload: Dict[str, Any], conn: Any) -> None:
    """Child-process entry point for one supervised shard attempt.

    Sends ``("ok", document)`` or ``("error", message)`` up the pipe;
    a child that dies before sending anything is the supervisor's
    ``crash`` outcome.  Module-level so spawn can pickle it.
    """
    try:
        if os.environ.get(_PROCESS_FAULT_ENV):
            # Chaos-suite channel: only ever taken under the test env
            # var, and imported lazily so the production path never
            # touches the testing layer.
            from .testing.faults import activate_process_faults
            activate_process_faults(payload.get("keys", ()))
        document = worker(payload)
        conn.send(("ok", document))
    except BaseException as error:  # noqa: BLE001 — verdict must cross
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def _process_rss_mb(pid: int) -> Optional[float]:
    """Resident set size of ``pid`` in MB via /proc, None off Linux."""
    try:
        with open(f"/proc/{pid}/statm", "r", encoding="ascii") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGE_SIZE") / 1e6
    except (OSError, ValueError, IndexError, AttributeError):
        return None


def _backoff_delay(policy: SupervisionPolicy, digest: str, unit_id: str,
                   failures: int) -> float:
    """Deterministic jittered exponential backoff before retry N.

    Pure function of (policy, plan digest, unit lineage, failure
    count): resumed runs and equivalence tests see identical waits,
    with no global RNG state touched.
    """
    raw = policy.backoff_base * policy.backoff_factor ** max(0, failures - 1)
    capped = min(raw, policy.backoff_cap)
    seed = f"{digest}|{unit_id}|{failures}".encode("utf-8")
    word = int.from_bytes(
        hashlib.blake2b(seed, digest_size=4).digest(), "big")
    return capped * (0.5 + 0.5 * word / 0xFFFFFFFF)


def _split_keys(keys: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Bisect a unit's (sorted) keyspace; left half takes the odd one.

    Both halves of a >1-key unit are non-empty, so every bisection
    strictly shrinks the unit — termination at single blocks is
    structural, not probabilistic.
    """
    mid = (len(keys) + 1) // 2
    return list(keys[:mid]), list(keys[mid:])


@dataclass
class _Unit:
    """One supervised execution unit: a (sub-)shard with its history."""

    unit_id: str
    index: int
    keys: List[int]
    attempts: List[str] = field(default_factory=list)

    @property
    def failures(self) -> int:
        return sum(1 for outcome in self.attempts if outcome != "ok")


@dataclass
class _Running:
    """One in-flight supervised attempt."""

    unit: _Unit
    process: Any
    conn: Any
    deadline: Optional[float]


class ShardSupervisor:
    """Run shard units in supervised child processes, bisecting poison.

    Each attempt is its own spawn-context child with a private result
    pipe; the supervisor polls for results, deadlines, and RSS
    breaches, classifies failures (``crash``/``hang``/``oom``), retries
    with :func:`_backoff_delay`, and on retry exhaustion bisects the
    unit's keyspace (lineage ids ``"00003" -> "00003.0"/"00003.1"``)
    until single-block units either deliver or are declared *lost*.
    All attempt history and lineage state persists in the checkpoint
    manifest after every transition, so a killed run resumes without
    re-paying completed retries.
    """

    def __init__(self, stage: str,
                 worker: Callable[[Dict[str, Any]], Dict[str, Any]],
                 build_payload: Callable[[Sequence[int]], Dict[str, Any]],
                 policy: SupervisionPolicy, workers: int, digest: str,
                 n_shards: int, checkpoint_dir: Optional[str] = None,
                 metrics: Any = NULL_REGISTRY,
                 tracer: Any = NULL_TRACER) -> None:
        self._stage = stage
        self._worker = worker
        self._build_payload = build_payload
        self._policy = policy
        self._workers = max(1, workers)
        self._digest = digest
        self._n_shards = n_shards
        self._checkpoint_dir = checkpoint_dir
        self._metrics = metrics
        self._tracer = tracer
        self._ctx = get_context("spawn")
        #: unit_id -> {"attempts": [...], "status": ...} — the exact
        #: shape persisted under ``supervision.units`` in the manifest.
        self._state: Dict[str, Dict[str, Any]] = {}
        self._attempts_metric = metrics.counter(
            "shard_attempts_total",
            "Supervised shard attempts by outcome "
            "(ok/crash/hang/oom/error)", ("outcome",))
        self._retries_metric = metrics.counter(
            "shard_retries_total", "Supervised shard attempts re-queued "
            "after a transient process failure")
        self._bisections_metric = metrics.counter(
            "shard_bisections_total",
            "Shard units split in half after exhausting their retries")

    # -- manifest state -----------------------------------------------------

    def _write_manifest(self) -> None:
        if self._checkpoint_dir is None:
            return
        write_shard_manifest(self._checkpoint_dir, {
            "stage": self._stage, "plan_digest": self._digest,
            "n_shards": self._n_shards,
            "supervision": {"units": self._state},
        })

    def _record(self, unit: _Unit, status: str, write: bool = True) -> None:
        self._state[unit.unit_id] = {"attempts": list(unit.attempts),
                                     "status": status}
        if write:
            self._write_manifest()

    def _load_state(self) -> None:
        """Adopt a prior run's unit state when its plan matches ours."""
        self._state = {}
        if self._checkpoint_dir is None:
            return
        manifest = read_shard_manifest(self._checkpoint_dir)
        if (manifest is None
                or manifest.get("plan_digest") != self._digest
                or manifest.get("stage") != self._stage):
            return
        units = manifest.get("supervision", {})
        units = units.get("units", {}) if isinstance(units, dict) else {}
        if not isinstance(units, dict):
            return
        for unit_id, entry in units.items():
            if isinstance(entry, dict):
                self._state[str(unit_id)] = {
                    "attempts": [str(o) for o in entry.get("attempts", [])],
                    "status": str(entry.get("status", "pending")),
                }

    def _load_unit_document(self, unit: _Unit) -> Optional[Dict[str, Any]]:
        """A unit's cached result document, validated against the plan."""
        if self._checkpoint_dir is None:
            return None
        status, document = load_shard_document(self._checkpoint_dir,
                                               unit.unit_id)
        if status == "corrupt":
            _cache_corrupt_metric(self._metrics).inc()
            discard_shard_result(self._checkpoint_dir, unit.unit_id)
            return None
        if status != "ok":
            return None
        # Legacy pool-path documents carry no "unit" key — their unit
        # IS the zero-padded index, so a supervised resume can still
        # adopt shards completed by an unsupervised run of this plan.
        implied = "%05d" % document.get("index", -1)
        if (document.get("format") == SHARD_RESULT_FORMAT
                and document.get("stage") == self._stage
                and document.get("plan_digest") == self._digest
                and document.get("unit", implied) == unit.unit_id):
            return document
        return None

    def _expand(self, unit_id: str, index: int, keys: List[int],
                ready: "deque[_Unit]", documents: Dict[str, Dict[str, Any]],
                lost: List[_Unit]) -> None:
        """Resume walker: rebuild one unit's lineage from saved state.

        Unit keyspaces are never persisted — they are re-derived from
        the (deterministic) plan plus the recorded bisection decisions,
        which is what keeps the manifest O(units), not O(blocks).
        """
        entry = self._state.get(unit_id)
        unit = _Unit(unit_id=unit_id, index=index, keys=keys,
                     attempts=list(entry["attempts"]) if entry else [])
        status = entry["status"] if entry else "pending"
        if status == "bisected" and len(keys) > 1:
            left, right = _split_keys(keys)
            self._expand(unit_id + ".0", index, left, ready, documents, lost)
            self._expand(unit_id + ".1", index, right, ready, documents, lost)
            return
        if status == "lost":
            # The prior run already paid this unit's full retry and
            # bisection bill; honouring the verdict is the whole point
            # of persisting it.
            lost.append(unit)
            return
        document = self._load_unit_document(unit)
        if document is not None:
            documents[unit_id] = document
            self._record(unit, "done", write=False)
            return
        # "done" with a vanished/corrupt file falls through: recompute.
        # Only failed attempts count against the retry budget, so the
        # recompute costs nothing it should not.
        ready.append(unit)
        self._record(unit, "pending", write=False)

    # -- child lifecycle ----------------------------------------------------

    def _launch(self, unit: _Unit) -> _Running:
        payload = dict(self._build_payload(unit.keys))
        payload["index"] = unit.index
        payload["plan_digest"] = self._digest
        payload["unit"] = unit.unit_id
        payload["keys"] = list(unit.keys)
        receiver, sender = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_supervised_entry,
            args=(self._worker, payload, sender), daemon=True)
        process.start()
        sender.close()
        deadline = (None if self._policy.timeout is None
                    else _time.monotonic() + self._policy.timeout)
        return _Running(unit=unit, process=process, conn=receiver,
                        deadline=deadline)

    @staticmethod
    def _kill(slot: _Running) -> None:
        try:
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(1.0)
            if slot.process.is_alive():
                slot.process.kill()
            slot.process.join(1.0)
        finally:
            try:
                slot.conn.close()
            except Exception:
                pass

    def _poll(self, slot: _Running) -> Optional[Tuple[str, Optional[Dict]]]:
        """One supervision scan of a running attempt.

        Returns None while the attempt is still healthy, otherwise the
        reaped ``(outcome, document_or_None)``.  Liveness is read
        *before* the pipe so a child that died after sending still has
        its buffered result honoured.
        """
        alive = slot.process.is_alive()
        if slot.conn.poll(0):
            try:
                kind, value = slot.conn.recv()
            except (EOFError, OSError):
                kind, value = None, None  # torn message == crash
            self._kill(slot)
            if kind == "ok":
                return "ok", value
            if kind == "error":
                return "error", {"message": str(value)}
            return "crash", None
        if not alive:
            self._kill(slot)
            return "crash", None
        if (slot.deadline is not None
                and _time.monotonic() > slot.deadline):
            self._kill(slot)
            return "hang", None
        if self._policy.max_rss_mb is not None:
            rss = _process_rss_mb(slot.process.pid)
            if rss is not None and rss > self._policy.max_rss_mb:
                self._kill(slot)
                return "oom", None
        return None

    # -- outcome handling ---------------------------------------------------

    def _complete(self, unit: _Unit, document: Dict[str, Any],
                  documents: Dict[str, Dict[str, Any]]) -> None:
        unit.attempts.append("ok")
        self._attempts_metric.labels(outcome="ok").inc()
        documents[unit.unit_id] = document
        if self._checkpoint_dir is not None:
            save_shard_result(self._checkpoint_dir, unit.unit_id, document)
        self._record(unit, "done")

    def _failed(self, unit: _Unit, outcome: str, ready: "deque[_Unit]",
                waiting: List[Tuple[float, _Unit]],
                lost: List[_Unit]) -> None:
        unit.attempts.append(outcome)
        self._attempts_metric.labels(outcome=outcome).inc()
        if unit.failures <= self._policy.retries:
            self._retries_metric.inc()
            # Marker span: supervision decisions are part of the run's
            # timeline, so retries and bisections show up in the merged
            # trace between the worker attempts they separate.
            with self._tracer.span("shard_retry", unit=unit.unit_id,
                                   outcome=outcome,
                                   failures=unit.failures):
                pass
            delay = _backoff_delay(self._policy, self._digest, unit.unit_id,
                                   unit.failures)
            waiting.append((_time.monotonic() + delay, unit))
            self._record(unit, "pending")
        elif len(unit.keys) > 1:
            self._bisections_metric.inc()
            with self._tracer.span("shard_bisection", unit=unit.unit_id,
                                   keys=len(unit.keys)):
                pass
            self._record(unit, "bisected")
            left, right = _split_keys(unit.keys)
            for suffix, keys in (("0", left), ("1", right)):
                child = _Unit(unit_id=f"{unit.unit_id}.{suffix}",
                              index=unit.index, keys=keys)
                ready.append(child)
                self._record(child, "pending")
        else:
            self._record(unit, "lost")
            lost.append(unit)

    # -- scheduler ----------------------------------------------------------

    def execute(self, shards: Sequence[Sequence[int]],
                ) -> Tuple[List[Dict[str, Any]], List[_Unit],
                           List[ShardAttemptRecord]]:
        """Run every unit to a verdict; return (documents, lost, records).

        Documents come back sorted by lineage id (deterministic merge
        input regardless of completion order); ``lost`` holds the
        single-block units that kept killing their workers.
        """
        documents: Dict[str, Dict[str, Any]] = {}
        lost: List[_Unit] = []
        ready: "deque[_Unit]" = deque()
        waiting: List[Tuple[float, _Unit]] = []
        self._load_state()
        for index, shard in enumerate(shards):
            self._expand(f"{index:05d}", index, list(shard), ready,
                         documents, lost)
        if self._checkpoint_dir is not None:
            # After resume adoption (so in-plan corrupt files were
            # counted above), clear out files this plan can never read.
            prune_stale_shards(self._checkpoint_dir, self._digest)
        self._write_manifest()
        running: List[_Running] = []
        try:
            while ready or waiting or running:
                now = _time.monotonic()
                due = [pair for pair in waiting if pair[0] <= now]
                if due:
                    waiting = [pair for pair in waiting if pair[0] > now]
                    ready.extend(unit for _, unit in due)
                while ready and len(running) < self._workers:
                    running.append(self._launch(ready.popleft()))
                progressed = False
                for slot in list(running):
                    verdict = self._poll(slot)
                    if verdict is None:
                        continue
                    progressed = True
                    running.remove(slot)
                    outcome, value = verdict
                    if outcome == "ok":
                        self._complete(slot.unit, value, documents)
                    elif outcome == "error":
                        slot.unit.attempts.append("error")
                        self._attempts_metric.labels(outcome="error").inc()
                        self._record(slot.unit, "pending")
                        raise ShardWorkerError(
                            f"shard unit {slot.unit.unit_id} raised in "
                            f"its worker: {value['message']}")
                    else:
                        self._failed(slot.unit, outcome, ready, waiting,
                                     lost)
                if not progressed:
                    _time.sleep(self._policy.poll_interval)
        finally:
            for slot in running:
                self._kill(slot)
        records = [ShardAttemptRecord(unit=unit_id,
                                      outcomes=list(entry["attempts"]),
                                      status=entry["status"])
                   for unit_id, entry in sorted(self._state.items())]
        ordered = [documents[unit_id] for unit_id in sorted(documents)]
        return ordered, lost, records


def _run_shards(stage: str,
                worker: Callable[[Dict[str, Any]], Dict[str, Any]],
                build_payload: Callable[[Sequence[int]], Dict[str, Any]],
                shards: Sequence[Sequence[int]],
                pipeline: PassiveOutagePipeline,
                checkpoint_dir: Optional[str], digest: str,
                ) -> Tuple[List[Dict[str, Any]], List[_Unit],
                           Optional[List[ShardAttemptRecord]]]:
    """Dispatch a planned stage to the supervised or the pool path.

    Returns ``(documents, lost_units, attempt_records)``;
    ``attempt_records`` is None exactly when the run was unsupervised,
    which is also the signal that no coverage section applies.
    """
    supervision = getattr(pipeline, "supervision", None)
    if supervision is not None:
        _ensure_child_import_path()
        supervisor = ShardSupervisor(
            stage=stage, worker=worker, build_payload=build_payload,
            policy=supervision, workers=pipeline.workers or 1,
            digest=digest, n_shards=len(shards),
            checkpoint_dir=checkpoint_dir, metrics=pipeline.metrics,
            tracer=pipeline.tracer)
        return supervisor.execute(shards)
    payloads = [dict(build_payload(shard), index=index, plan_digest=digest)
                for index, shard in enumerate(shards)]
    documents = _execute_shards(stage, worker, payloads,
                                pipeline.workers or 1, checkpoint_dir,
                                digest, len(shards), pipeline.metrics)
    return documents, [], None


def _apply_supervision(report: RunHealthReport, stage_name: str,
                       planned: int, lost_units: List[_Unit],
                       lost_keys: Sequence[int],
                       records: Optional[List[ShardAttemptRecord]],
                       metrics: Any) -> None:
    """Fold supervised-run delivery accounting into a merged report.

    Thin adapter over :func:`repro.core.health.fold_lost_coverage`
    (shared with the partitioned live supervisor): this wrapper only
    translates bisection units into per-block supervision errors, with
    the last non-ok attempt outcome picking the error class.  Runs
    after :func:`_merged_report` binds the registry, before the budget
    verdict, so lost blocks are judged by the error budget exactly
    like data-poisoned ones.
    """
    if records is None:
        return
    lost_set = set(lost_keys)
    lost_errors: Dict[int, BaseException] = {}
    for unit in sorted(lost_units, key=lambda u: u.unit_id):
        failure = next(
            (o for o in reversed(unit.attempts) if o != "ok"), "crash")
        error_cls = _OUTCOME_ERRORS.get(failure, ShardFatalError)
        error = error_cls(
            f"worker process for unit {unit.unit_id} kept dying "
            f"({failure}) through {len(unit.attempts)} attempts "
            f"[{','.join(unit.attempts)}]; block isolated by bisection")
        for key in unit.keys:
            if key in lost_set:
                lost_errors[key] = error
    fold_lost_coverage(report, stage_name, planned, lost_errors, records,
                       metrics)


def _fold_telemetry(pipeline: PassiveOutagePipeline,
                    documents: List[Dict[str, Any]]) -> bool:
    """Fold worker metric snapshots into the parent registry.

    Returns True when snapshots were folded — the signal that merged
    registries must bind to the parent's metric series *without*
    backfill (the fold already counted every dead letter and guardrail
    trip; backfilling would double them).

    Worker spans fold here too: each shard document carries the spans
    its child recorded (rebased to the wall clock), and importing them
    keeps the parent's trace file one coherent timeline across every
    process the run touched.
    """
    if pipeline.tracer.enabled:
        for document in documents:
            pipeline.tracer.import_spans(document.get("spans"))
    if pipeline.detector.explain.enabled:
        for document in documents:
            events = document.get("explain")
            if events:
                pipeline.detector.explain.extend(events)
    if not pipeline.metrics.enabled:
        return False
    folded = False
    for document in documents:
        snapshot = document.get("metrics")
        if snapshot is not None:
            pipeline.metrics.merge_snapshot(snapshot)
            folded = True
    return folded


def _merged_report(pipeline: PassiveOutagePipeline, run: str,
                   documents: List[Dict[str, Any]]) -> RunHealthReport:
    report = RunHealthReport.merged(
        (RunHealthReport.from_dict(document["health"])
         for document in documents),
        run=run, max_quarantine_frac=pipeline.budget.max_quarantine_frac)
    folded = _fold_telemetry(pipeline, documents)
    if pipeline.metrics.enabled:
        report.dead_letters.bind(dead_letter_metric(pipeline.metrics),
                                 backfill=not folded)
        report.guardrails.bind(guardrail_metric(pipeline.metrics),
                               backfill=not folded)
    return report


def sharded_train(pipeline: PassiveOutagePipeline, family: Family,
                  per_block: Mapping[int, np.ndarray],
                  start: float, end: float,
                  checkpoint_dir: Optional[str] = None) -> TrainedModel:
    """Train a model by sharding the population across workers.

    Returns a model identical (histories, parameters, dead letters,
    health accounting) to ``pipeline.train`` run sequentially; raises
    :class:`~repro.core.health.ErrorBudgetExceeded` on the *merged*
    quarantine fraction.
    """
    shards = plan_shards(per_block.keys(), pipeline.shard_chunk)
    digest = _plan_digest("train", family, start, end, shards)
    config = _pipeline_config(pipeline)

    def build_payload(shard_keys: Sequence[int]) -> Dict[str, Any]:
        return {
            "config": config, "family": int(family),
            "start": float(start), "end": float(end),
            "per_block": {key: per_block[key] for key in shard_keys
                          if key in per_block},
        }

    with pipeline.tracer.span("train_sharded", family=family.name.lower(),
                              blocks=len(per_block), shards=len(shards)):
        documents, lost_units, records = _run_shards(
            "train", _run_train_shard, build_payload, shards, pipeline,
            checkpoint_dir, digest)

    histories: Dict[int, Any] = {}
    parameters: Dict[int, Any] = {}
    for document in documents:
        shard_histories, shard_parameters = model_blocks_from_dict(
            document["blocks"])
        histories.update(shard_histories)
        parameters.update(shard_parameters)
    report = _merged_report(pipeline, "train", documents)
    # Every planned train key is a per_block key, so a lost unit's whole
    # keyspace is lost coverage.
    lost_keys = sorted({key for unit in lost_units for key in unit.keys})
    _apply_supervision(report, "train", len(per_block), lost_units,
                       lost_keys, records, pipeline.metrics)
    registry = report.dead_letters
    try:
        pipeline.budget.check("train", len(per_block), len(registry))
    except ErrorBudgetExceeded as error:
        report.budget_tripped = True
        error.report = report
        raise
    return TrainedModel(family=family, histories=histories,
                        parameters=parameters, train_start=start,
                        train_end=end, dead_letters=registry, health=report)


def sharded_detect(pipeline: PassiveOutagePipeline, model: TrainedModel,
                   per_block: Mapping[int, np.ndarray],
                   start: float, end: float,
                   checkpoint_dir: Optional[str] = None) -> PipelineResult:
    """Detect over a window by sharding the model's blocks.

    Shards partition the model's *entire* parameter keyspace (not just
    the measurable blocks), so the merged detect-stage accounting sums
    to exactly the sequential stage row.  The spatial-aggregation
    fallback runs parent-side over the merged result: a supernet's
    children may span shards, so no worker can see a whole supernet.
    """
    shards = plan_shards(model.parameters.keys(), pipeline.shard_chunk)
    digest = _plan_digest("detect", model.family, start, end, shards)
    config = _pipeline_config(pipeline)

    def build_payload(shard_keys: Sequence[int]) -> Dict[str, Any]:
        return {
            "config": config, "family": int(model.family),
            "train_start": model.train_start, "train_end": model.train_end,
            "start": float(start), "end": float(end),
            "blocks": model_blocks_to_dict(
                {key: model.histories[key] for key in shard_keys
                 if key in model.histories},
                {key: model.parameters[key] for key in shard_keys}),
            "per_block": {key: per_block[key] for key in shard_keys
                          if key in per_block},
        }

    with pipeline.tracer.span("detect_sharded",
                              family=model.family.name.lower(),
                              blocks=len(model.parameters),
                              shards=len(shards)):
        documents, lost_units, records = _run_shards(
            "detect", _run_detect_shard, build_payload, shards, pipeline,
            checkpoint_dir, digest)

    blocks = {}
    for document in documents:
        for entry in document["results"]:
            result = block_result_from_dict(entry)
            blocks[result.key] = result
    report = _merged_report(pipeline, "detect", documents)
    # The detect stage row counts measurable blocks (unmeasurable ones
    # are the aggregation fallback's problem, lost or not), so coverage
    # is judged over the measurable population.
    measurable = {key for key, params in model.parameters.items()
                  if params.measurable}
    lost_keys = sorted(
        {key for unit in lost_units for key in unit.keys} & measurable)
    _apply_supervision(report, "detect", len(measurable), lost_units,
                       lost_keys, records, pipeline.metrics)
    registry = report.dead_letters
    result = PipelineResult(family=model.family, start=start, end=end,
                            blocks=blocks, dead_letters=registry,
                            health=report)
    # Same ordering as the sequential path: the budget is judged on the
    # primary population before the best-effort aggregation fallback.
    try:
        pipeline.budget.check(
            "detect", report.stage("detect").attempted, len(registry))
    except ErrorBudgetExceeded as error:
        report.budget_tripped = True
        error.report = report
        raise
    if pipeline.aggregation_levels > 0 and model.unmeasurable_keys:
        aggregate_stage = report.stage("aggregate")
        clock = _time.perf_counter()
        with pipeline.tracer.span("aggregate",
                                  family=model.family.name.lower()):
            pipeline._detect_aggregated(model, per_block, start, end,
                                        result, registry)
        aggregate_stage.seconds = _time.perf_counter() - clock
        aggregate_stage.attempted = len(result.aggregated)
        aggregate_stage.succeeded = len(result.aggregated)
        pipeline._stage_seconds("aggregate", aggregate_stage.seconds)
    return result

"""Admission control, load shedding, and the readiness gate.

Overload never degrades silently: past the connection/subscription
ceilings or the per-endpoint token buckets, the plane answers ``503``
with a ``Retry-After`` hint instead of queueing unboundedly.  The hint
is *deterministically jittered* — the same blake2b construction the
shard supervisor uses for restart backoff (`repro.parallel`), seeded
by (salt, endpoint, shed count) — so a thundering herd that arrived
together is told to come back spread out, and a replayed test sees the
same hints every run.

``/ready`` is distinct from ``/health``: health answers "is the
process alive", ready answers "should a load balancer route traffic
here".  The :class:`ReadyGate` trips ready on watermark staleness (the
detector stalled or fell behind) and on lost-partition coverage (too
much of the keyspace is dead-lettered to be worth serving).
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .snapshot import ServingSnapshot

__all__ = ["Admission", "AdmissionConfig", "ReadyGate", "TokenBucket",
           "retry_jitter"]


def retry_jitter(salt: str, endpoint: str, n: int, base: float) -> float:
    """Deterministic jittered retry hint in ``[base/2, base]`` seconds.

    Same construction as the supervisor's restart backoff: a blake2b
    word keyed by (salt, endpoint, n) scales the base into the upper
    half of its range, so hints are reproducible yet spread a
    simultaneous herd across half the window.
    """
    word = int.from_bytes(
        hashlib.blake2b(f"{salt}|{endpoint}|{n}".encode(),
                        digest_size=4).digest(), "big")
    return base * (0.5 + 0.5 * word / 0xFFFFFFFF)


class TokenBucket:
    """Classic token bucket; ``rate <= 0`` admits everything.

    Not thread-safe by design — the plane calls it only from its event
    loop.  ``clock`` is injectable for tests.
    """

    def __init__(self, rate: float, burst: Optional[float] = None,
                 clock=time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = float(burst if burst is not None else max(1.0, rate))
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_take(self) -> bool:
        """Admit one request if a token is available."""
        if self.rate <= 0:
            return True
        now = self._clock()
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def wait_time(self) -> float:
        """Seconds until the next token exists (0 when one is ready)."""
        if self.rate <= 0:
            return 0.0
        self._refill(self._clock())
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate


@dataclass
class AdmissionConfig:
    """Ceilings and rates for one plane instance."""

    #: concurrent connections accepted at all (HTTP + WebSocket).
    max_connections: int = 1024
    #: concurrent WebSocket subscriptions.
    max_subscribers: int = 256
    #: sustained queries/second admitted per shed-governed endpoint
    #: (``/v1/state``, ``/v1/events``); 0 disables shedding.
    shed_qps: float = 0.0
    #: bucket burst; defaults to one second's worth of tokens.
    shed_burst: Optional[float] = None
    #: base for the deterministic Retry-After jitter.
    retry_base_s: float = 1.0
    #: seed folded into the jitter (the run's plan digest, typically).
    salt: str = ""


class Admission:
    """Per-endpoint shedding plus ceiling checks, with explicit hints.

    ``/health``, ``/ready`` and the metrics expositions are never shed:
    an operator diagnosing an overloaded plane must still be able to
    see it.
    """

    SHED_ENDPOINTS = ("/v1/state", "/v1/events")

    def __init__(self, config: AdmissionConfig, clock=time.monotonic) -> None:
        self.config = config
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {
            endpoint: TokenBucket(config.shed_qps, config.shed_burst,
                                  clock=clock)
            for endpoint in self.SHED_ENDPOINTS
        }
        self._sheds: Dict[str, int] = {}

    def admit_query(self, endpoint: str) -> Tuple[bool, float]:
        """``(admitted, retry_after_s)`` for one query on ``endpoint``."""
        bucket = self._buckets.get(endpoint)
        if bucket is None or bucket.try_take():
            return True, 0.0
        return False, self._hint(endpoint, bucket.wait_time())

    def _hint(self, endpoint: str, wait: float) -> float:
        n = self._sheds.get(endpoint, 0)
        self._sheds[endpoint] = n + 1
        return wait + retry_jitter(self.config.salt, endpoint, n,
                                   self.config.retry_base_s)

    def connection_hint(self) -> float:
        """Retry-After for a connection/subscription ceiling rejection."""
        return self._hint("connect", 0.0)

    @property
    def sheds(self) -> int:
        return sum(self._sheds.values())


@dataclass(frozen=True)
class ReadyGate:
    """Routability verdict for ``/ready``; fails closed, with reasons."""

    #: trip when the served snapshot is older than this many wall
    #: seconds (the detector stalled, or publication stopped).
    max_lag_s: float = 60.0
    #: trip when more than this fraction of the monitored population is
    #: dead-lettered lost coverage.
    max_lost_fraction: float = 0.5

    def evaluate(self, snapshot: Optional[ServingSnapshot], now: float,
                 ) -> Tuple[bool, List[str]]:
        """``(ready, reasons)``; reasons name every tripped condition."""
        if snapshot is None:
            return False, ["no snapshot published yet"]
        reasons: List[str] = []
        staleness = max(0.0, now - snapshot.published_at)
        if staleness > self.max_lag_s:
            reasons.append(
                f"snapshot stale: {staleness:.1f}s > {self.max_lag_s:.1f}s")
        total = len(snapshot.states) + len(snapshot.lost)
        if total:
            lost_fraction = len(snapshot.lost) / total
            if lost_fraction > self.max_lost_fraction:
                reasons.append(
                    f"lost coverage: {len(snapshot.lost)}/{total} blocks "
                    f"({lost_fraction:.0%} > "
                    f"{self.max_lost_fraction:.0%})")
        return not reasons, reasons

"""The serving plane: asyncio HTTP + WebSocket front for a live run.

One :class:`ServingPlane` owns an event loop on a dedicated thread.
Producers (the detector bridges) call :meth:`ServingPlane.publish`
from their own thread; the loop assigns event sequence numbers, swaps
the immutable snapshot reference in, and fans events out to
subscribers.  Readers never lock anything: a query handler loads
``self._snapshot`` once (a single atomic attribute read) and works on
that immutable object, so a publish mid-request is invisible rather
than torn.

Endpoints (GET):

* ``/v1/state?address=A`` — longest-prefix-match state for an address;
* ``/v1/state?prefix=P``  — every monitored block at or under a CIDR;
* ``/v1/events?since=N``  — recent events after seq N (bounded ring);
* ``/v1/subscribe[?since=N]`` — WebSocket upgrade: snapshot-then-deltas
  resync, sequence-numbered events, client acks;
* ``/ready`` — the admission gate (503 when stale or coverage-lost);
* ``/health`` — liveness document (never shed, never 503);
* ``/metrics``, ``/metrics.json`` — the run registry's expositions.

Robustness contract highlights: every ``/v1`` response is stamped
``{watermark, staleness_s, degraded, ...}``; per-endpoint token
buckets shed with ``503`` + deterministic jittered ``Retry-After``;
per-client outboxes are bounded and a slow consumer is *evicted*, not
buffered; ``stop(drain=True)`` closes the listener first, then lets
subscribers flush and receive a proper 1001 close frame.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)
from urllib.parse import parse_qs

from ..net.addr import Address, AddressError, Family
from ..net.blocks import Block
from ..obs.metrics import resolve_registry
from ..obs.server import PROMETHEUS_CONTENT_TYPE
from . import ws
from .admission import Admission, AdmissionConfig, ReadyGate
from .events import EventBroker, EventSpec
from .snapshot import BlockServingState, LagPolicy, ServingSnapshot, build_snapshot

__all__ = ["ServeConfig", "ServingPlane"]

_JSON = "application/json"


@dataclass
class ServeConfig:
    """Tunables for one plane instance."""

    host: str = "127.0.0.1"
    port: int = 0
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    lag: LagPolicy = field(default_factory=LagPolicy)
    ready: ReadyGate = field(default_factory=ReadyGate)
    #: events queued per subscriber before it is evicted as a slow
    #: consumer.  This bounds per-client memory; the client resyncs on
    #: reconnect via snapshot-then-deltas.
    outbox_limit: int = 256
    #: events retained for delta resync (the broker ring).
    event_capacity: int = 4096
    #: seconds granted to in-flight connections on graceful stop.
    drain_s: float = 5.0
    #: keep-alive idle timeout for plain HTTP connections.
    idle_timeout_s: float = 30.0
    #: transport write high-water mark; deliberately small so a slow
    #: subscriber backpressures into its outbox (and is judged there)
    #: instead of hiding in a fat kernel buffer.
    write_high: int = 16 * 1024


@dataclass
class _Subscription:
    """Loop-thread bookkeeping for one WebSocket subscriber."""

    id: int
    writer: asyncio.StreamWriter
    outbox: Deque[Dict[str, Any]] = field(default_factory=deque)
    wake: Optional[asyncio.Event] = None
    acked_seq: int = 0
    delivered_seq: int = 0
    closing: bool = False
    writer_task: Optional["asyncio.Task[None]"] = None
    reader_task: Optional["asyncio.Task[None]"] = None


class ServingPlane:
    """Query/subscribe service over published serving snapshots.

    Thread model: :meth:`start` spawns the loop thread; :meth:`publish`
    and :meth:`stop` are safe from any thread; everything else runs on
    the loop.  Before :meth:`start` (unit tests), :meth:`publish`
    applies synchronously in the caller's thread.
    """

    def __init__(
        self,
        family: Family,
        config: Optional[ServeConfig] = None,
        registry: Any = None,
        health_provider: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> None:
        self.family = family
        self.config = config or ServeConfig()
        self.registry = resolve_registry(registry)
        self.health_provider = health_provider
        self.admission = Admission(self.config.admission)
        self._broker = EventBroker(self.config.event_capacity)
        self._snapshot: Optional[ServingSnapshot] = None
        self._snapshot_seq = 0
        self._subs: Dict[int, _Subscription] = {}
        self._next_sub_id = 0
        self._connections = 0
        self._evictions = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop_async: Optional[asyncio.Event] = None
        self._drain_on_stop = True
        self._start_error: Optional[BaseException] = None
        self._port: Optional[int] = None
        self._m_requests = self.registry.counter(
            "serve_requests_total", "Serving-plane requests by outcome",
            labelnames=("endpoint", "outcome"))
        self._m_shed = self.registry.counter(
            "serve_shed_total", "Requests shed by admission control",
            labelnames=("reason",))
        self._m_events = self.registry.counter(
            "serve_events_total", "Events published to the serve broker",
            labelnames=("kind",))
        self._m_snapshots = self.registry.counter(
            "serve_snapshots_published_total",
            "Serving snapshots published")
        self._m_evictions = self.registry.counter(
            "serve_evictions_total", "Slow subscribers evicted")
        self._m_subscribers = self.registry.gauge(
            "serve_subscribers", "Connected WebSocket subscribers")

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("plane is not started")
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    @property
    def snapshot(self) -> Optional[ServingSnapshot]:
        """The currently served snapshot (immutable; any thread)."""
        return self._snapshot

    @property
    def last_event_seq(self) -> int:
        return self._broker.last_seq

    @property
    def subscriber_count(self) -> int:
        return len(self._subs)

    def start(self) -> "ServingPlane":
        if self._thread is not None:
            raise RuntimeError("plane already started")
        started = threading.Event()
        self._thread = threading.Thread(target=self._run, args=(started,),
                                        name="serve-plane", daemon=True)
        self._thread.start()
        started.wait(10.0)
        if self._start_error is not None:
            error, self._start_error = self._start_error, None
            self._thread.join(1.0)
            self._thread = None
            raise error
        if self._port is None:
            raise RuntimeError("serving plane failed to start in time")
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop serving; with ``drain`` let in-flight clients finish.

        Draining closes the listener first (no new work), flushes every
        subscriber's outbox, and sends a 1001 going-away close frame —
        the SIGTERM path an operator's rolling restart relies on.
        """
        thread = self._thread
        if thread is None:
            return
        self._drain_on_stop = drain
        loop = self._loop
        if loop is not None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self._signal_stop)
        thread.join(self.config.drain_s + 10.0)
        self._thread = None

    def _signal_stop(self) -> None:
        if self._stop_async is not None:
            self._stop_async.set()

    def _run(self, started: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main(started))
        except BaseException as error:  # noqa: BLE001 — surfaced in start()
            self._start_error = error
        finally:
            self._loop = None
            with contextlib.suppress(Exception):
                loop.close()
            started.set()

    async def _main(self, started: threading.Event) -> None:
        self._stop_async = asyncio.Event()
        server = await asyncio.start_server(
            self._serve_client, self.config.host, self.config.port)
        self._server = server
        self._port = server.sockets[0].getsockname()[1]
        started.set()
        await self._stop_async.wait()
        server.close()
        await server.wait_closed()
        if self._drain_on_stop:
            for sub in list(self._subs.values()):
                if sub.wake is not None:
                    sub.wake.set()
            deadline = time.monotonic() + self.config.drain_s
            while self._subs and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
        for sub in list(self._subs.values()):
            self._drop_subscription(sub)
        current = asyncio.current_task()
        leftovers = [task for task in asyncio.all_tasks()
                     if task is not current]
        for task in leftovers:
            task.cancel()
        if leftovers:
            await asyncio.gather(*leftovers, return_exceptions=True)

    # -- producer API -------------------------------------------------------

    def publish(
        self,
        states: Mapping[int, BlockServingState],
        *,
        watermark: float,
        lost: Optional[Mapping[int, str]] = None,
        lost_blocks: Optional[Iterable[Block]] = None,
        events: Iterable[EventSpec] = (),
    ) -> None:
        """Publish a new snapshot plus the events that produced it.

        Callable from any thread.  The tries are built here (producer
        CPU); the loop thread only assigns sequence numbers, swaps the
        snapshot reference, and fans the events out, so publication
        never blocks the query path.
        """
        specs = list(events)
        core = build_snapshot(
            self.family, states, watermark=watermark, published_at=0.0,
            lost=lost, lost_blocks=lost_blocks)

        def apply() -> None:
            now = time.monotonic()
            wires: List[Dict[str, Any]] = []
            for spec in specs:
                event = self._broker.publish(spec, watermark,
                                             emitted_at=now)
                self._m_events.labels(kind=event.kind).inc()
                wires.append(event.to_wire())
            self._snapshot_seq += 1
            self._snapshot = dataclasses.replace(
                core, seq=self._snapshot_seq, published_at=now,
                events_through=self._broker.last_seq)
            self._m_snapshots.inc()
            for sub in list(self._subs.values()):
                for wire in wires:
                    self._enqueue(sub, wire)

        self._call(apply)

    def emit(self, specs: Iterable[EventSpec], watermark: float) -> None:
        """Publish events without replacing the snapshot (any thread)."""
        batch = list(specs)

        def apply() -> None:
            now = time.monotonic()
            for spec in batch:
                event = self._broker.publish(spec, watermark,
                                             emitted_at=now)
                self._m_events.labels(kind=event.kind).inc()
                wire = event.to_wire()
                for sub in list(self._subs.values()):
                    self._enqueue(sub, wire)

        self._call(apply)

    def _call(self, fn: Callable[[], None]) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(fn)
        else:
            fn()

    # -- HTTP ---------------------------------------------------------------

    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        self._connections += 1
        try:
            transport = writer.transport
            if transport is not None:
                transport.set_write_buffer_limits(
                    high=self.config.write_high)
            if self._connections > self.config.admission.max_connections:
                self._m_shed.labels(reason="connections").inc()
                hint = self.admission.connection_hint()
                self._write_response(
                    writer, 503,
                    self._json_body({"error": "overloaded",
                                     "reason": "connections",
                                     "retry_after_s": round(hint, 3)}),
                    _JSON, keep=False,
                    extra={"Retry-After": str(max(1, math.ceil(hint)))})
                await writer.drain()
                return
            while True:
                request = await self._read_request(reader)
                if request is None:
                    return
                method, target, headers = request
                path, _, query = target.partition("?")
                params = parse_qs(query)
                if method != "GET":
                    self._write_response(
                        writer, 405,
                        self._json_body({"error": "method not allowed"}),
                        _JSON, keep=False)
                    await writer.drain()
                    return
                if (path == "/v1/subscribe"
                        and "websocket" in headers.get("upgrade",
                                                       "").lower()):
                    await self._handle_subscribe(reader, writer, headers,
                                                 params)
                    return
                status, body, ctype, extra = self._dispatch(path, params)
                keep = (headers.get("connection", "").lower() != "close")
                self._write_response(writer, status, body, ctype,
                                     keep=keep, extra=extra)
                await writer.drain()
                if not keep:
                    return
        except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                ConnectionError, ws.WebSocketError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            self._connections -= 1
            with contextlib.suppress(Exception):
                writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, Dict[str, str]]]:
        try:
            line = await asyncio.wait_for(reader.readline(),
                                          self.config.idle_timeout_s)
        except asyncio.TimeoutError:
            return None
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for _ in range(100):
            raw = await asyncio.wait_for(reader.readline(), 5.0)
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, target, headers

    def _json_body(self, document: Dict[str, Any]) -> bytes:
        return json.dumps(document, separators=(",", ":"),
                          sort_keys=True).encode("utf-8")

    def _write_response(self, writer: asyncio.StreamWriter, status: int,
                        body: bytes, content_type: str, keep: bool = True,
                        extra: Optional[Dict[str, str]] = None) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed",
                  503: "Service Unavailable"}.get(status, "OK")
        lines = [f"HTTP/1.1 {status} {reason}",
                 f"Content-Type: {content_type}",
                 f"Content-Length: {len(body)}",
                 f"Connection: {'keep-alive' if keep else 'close'}"]
        for name, value in (extra or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + body)

    def _shed_response(self, endpoint: str, reason: str, hint: float,
                       ) -> Tuple[int, bytes, str, Dict[str, str]]:
        self._m_shed.labels(reason=reason).inc()
        self._m_requests.labels(endpoint=endpoint, outcome="shed").inc()
        body = self._json_body({
            "error": "overloaded", "reason": reason,
            "retry_after_s": round(hint, 3),
        })
        return 503, body, _JSON, {"Retry-After": str(max(1, math.ceil(hint)))}

    def _dispatch(self, path: str, params: Dict[str, List[str]],
                  ) -> Tuple[int, bytes, str, Dict[str, str]]:
        if path == "/metrics":
            self._m_requests.labels(endpoint=path, outcome="ok").inc()
            return (200, self.registry.to_prometheus().encode("utf-8"),
                    PROMETHEUS_CONTENT_TYPE, {})
        if path == "/metrics.json":
            self._m_requests.labels(endpoint=path, outcome="ok").inc()
            return (200, json.dumps(self.registry.snapshot(),
                                    indent=1).encode("utf-8"), _JSON, {})
        if path == "/health":
            self._m_requests.labels(endpoint=path, outcome="ok").inc()
            return 200, self._json_body(self._health_document()), _JSON, {}
        if path == "/ready":
            return self._handle_ready()
        if path == "/v1/state":
            return self._handle_state(params)
        if path == "/v1/events":
            return self._handle_events(params)
        self._m_requests.labels(endpoint="unknown", outcome="not_found").inc()
        return (404, self._json_body(
            {"error": "not found",
             "endpoints": ["/v1/state", "/v1/events", "/v1/subscribe",
                           "/ready", "/health", "/metrics",
                           "/metrics.json"]}), _JSON, {})

    def _health_document(self) -> Dict[str, Any]:
        base = (self.health_provider() if self.health_provider is not None
                else {"status": "serving", "run": None})
        snapshot = self._snapshot
        base["plane"] = {
            "subscribers": len(self._subs),
            "connections": self._connections,
            "sheds": self.admission.sheds,
            "evictions": self._evictions,
            "snapshot_seq": snapshot.seq if snapshot else None,
            "watermark": snapshot.watermark if snapshot else None,
            "last_event_seq": self._broker.last_seq,
        }
        return base

    def _handle_ready(self) -> Tuple[int, bytes, str, Dict[str, str]]:
        ready, reasons = self.config.ready.evaluate(self._snapshot,
                                                    time.monotonic())
        status = 200 if ready else 503
        self._m_requests.labels(endpoint="/ready",
                                outcome="ok" if ready else "not_ready").inc()
        return (status,
                self._json_body({"ready": ready, "reasons": reasons}),
                _JSON, {} if ready else {"Retry-After": "1"})

    def _stamp_snapshot(self, endpoint: str) -> Tuple[
            Optional[ServingSnapshot], Optional[Dict[str, Any]],
            Optional[Tuple[int, bytes, str, Dict[str, str]]]]:
        """Load the snapshot and judge staleness for one query.

        Returns ``(snapshot, stamp, error_response)``; exactly one of
        ``stamp`` / ``error_response`` is set.
        """
        snapshot = self._snapshot
        if snapshot is None:
            self._m_requests.labels(endpoint=endpoint,
                                    outcome="no_snapshot").inc()
            body = self._json_body({"error": "no snapshot published yet",
                                    "degraded": "no-snapshot"})
            return None, None, (503, body, _JSON, {"Retry-After": "1"})
        staleness = max(0.0, time.monotonic() - snapshot.published_at)
        verdict = self.config.lag.judge(staleness)
        if verdict == "fail":
            self._m_requests.labels(endpoint=endpoint,
                                    outcome="stale").inc()
            body = self._json_body({
                "error": "state too stale to serve",
                "degraded": "stale",
                "staleness_s": round(staleness, 3),
                "fail_after_s": self.config.lag.fail_after_s,
            })
            return None, None, (503, body, _JSON, {"Retry-After": "1"})
        stamp = snapshot.stamp(staleness,
                               "stale" if verdict == "stale" else None)
        return snapshot, stamp, None

    def _handle_state(self, params: Dict[str, List[str]],
                      ) -> Tuple[int, bytes, str, Dict[str, str]]:
        endpoint = "/v1/state"
        admitted, hint = self.admission.admit_query(endpoint)
        if not admitted:
            return self._shed_response(endpoint, "qps", hint)
        snapshot, stamp, error = self._stamp_snapshot(endpoint)
        if error is not None:
            return error
        assert snapshot is not None and stamp is not None
        address_arg = params.get("address", [None])[0]
        prefix_arg = params.get("prefix", [None])[0]
        try:
            if address_arg:
                document = snapshot.query_address(
                    Address.parse(address_arg))
            elif prefix_arg:
                document = snapshot.query_prefix(Block.parse(prefix_arg))
            else:
                self._m_requests.labels(endpoint=endpoint,
                                        outcome="error").inc()
                return (400, self._json_body(
                    {"error": "pass ?address= or ?prefix="}), _JSON, {})
        except (AddressError, ValueError) as error_:
            self._m_requests.labels(endpoint=endpoint,
                                    outcome="error").inc()
            return (400, self._json_body({"error": str(error_)}), _JSON, {})
        # Query-level degradation (lost coverage) outranks the
        # snapshot-level staleness flag; neither is ever silent.
        document["degraded"] = document.get("degraded") or stamp["degraded"]
        document["stamp"] = stamp
        self._m_requests.labels(endpoint=endpoint, outcome="ok").inc()
        return 200, self._json_body(document), _JSON, {}

    def _handle_events(self, params: Dict[str, List[str]],
                       ) -> Tuple[int, bytes, str, Dict[str, str]]:
        endpoint = "/v1/events"
        admitted, hint = self.admission.admit_query(endpoint)
        if not admitted:
            return self._shed_response(endpoint, "qps", hint)
        snapshot, stamp, error = self._stamp_snapshot(endpoint)
        if error is not None:
            return error
        try:
            since = int(params.get("since", ["0"])[0])
        except ValueError:
            self._m_requests.labels(endpoint=endpoint, outcome="error").inc()
            return (400, self._json_body({"error": "bad ?since="}),
                    _JSON, {})
        events, gap = self._broker.since(since)
        self._m_requests.labels(endpoint=endpoint, outcome="ok").inc()
        return 200, self._json_body({
            "events": [event.to_wire() for event in events],
            "gap": gap,
            "last_seq": self._broker.last_seq,
            "degraded": stamp["degraded"],
            "stamp": stamp,
        }), _JSON, {}

    # -- WebSocket subscriptions --------------------------------------------

    async def _handle_subscribe(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter,
                                headers: Dict[str, str],
                                params: Dict[str, List[str]]) -> None:
        if len(self._subs) >= self.config.admission.max_subscribers:
            self._m_shed.labels(reason="subscribers").inc()
            hint = self.admission.connection_hint()
            self._write_response(
                writer, 503,
                self._json_body({"error": "overloaded",
                                 "reason": "subscribers",
                                 "retry_after_s": round(hint, 3)}),
                _JSON, keep=False,
                extra={"Retry-After": str(max(1, math.ceil(hint)))})
            await writer.drain()
            return
        key = headers.get("sec-websocket-key")
        if not key:
            self._write_response(
                writer, 400,
                self._json_body({"error": "missing Sec-WebSocket-Key"}),
                _JSON, keep=False)
            await writer.drain()
            return
        writer.write((
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {ws.accept_key(key)}\r\n\r\n"
        ).encode("latin-1"))
        await writer.drain()

        since: Optional[int] = None
        raw_since = params.get("since", [None])[0]
        if raw_since is not None:
            try:
                since = int(raw_since)
            except ValueError:
                since = None

        self._next_sub_id += 1
        sub = _Subscription(id=self._next_sub_id, writer=writer)
        sub.wake = asyncio.Event()
        self._subs[sub.id] = sub
        self._m_subscribers.set(len(self._subs))
        # Resync plan — computed and enqueued synchronously with the
        # registration above (no await in between), so no published
        # event can fall between the resync tail and the live fan-out.
        deltas, gap = (self._broker.since(since) if since is not None
                       else ([], True))
        need_snapshot = since is None or gap
        snapshot = self._snapshot
        self._enqueue(sub, {
            "type": "hello", "client": sub.id,
            "resync": "snapshot" if need_snapshot else "delta",
            "last_seq": self._broker.last_seq,
        })
        if need_snapshot:
            if snapshot is not None:
                message = snapshot.snapshot_message()
                staleness = max(0.0,
                                time.monotonic() - snapshot.published_at)
                verdict = self.config.lag.judge(staleness)
                message["stamp"] = snapshot.stamp(
                    staleness, "stale" if verdict != "ok" else None)
                self._enqueue(sub, message)
                deltas, _ = self._broker.since(snapshot.events_through)
            else:
                deltas, _ = self._broker.since(0)
        for event in deltas:
            self._enqueue(sub, event.to_wire())
        sub.reader_task = asyncio.create_task(self._sub_reader(sub, reader))
        sub.writer_task = asyncio.create_task(self._sub_writer(sub))
        try:
            await asyncio.wait(
                {sub.reader_task, sub.writer_task},
                return_when=asyncio.FIRST_COMPLETED)
        finally:
            self._drop_subscription(sub)

    def _enqueue(self, sub: _Subscription, message: Dict[str, Any]) -> None:
        if sub.closing:
            return
        sub.outbox.append(message)
        if sub.wake is not None:
            sub.wake.set()
        if len(sub.outbox) > self.config.outbox_limit:
            self._evict(sub, "slow-consumer")

    def _evict(self, sub: _Subscription, reason: str) -> None:
        """Cut a slow consumer loose instead of buffering unboundedly."""
        if sub.closing:
            return
        sub.closing = True
        self._evictions += 1
        self._m_evictions.inc()
        asyncio.ensure_future(self._finish_eviction(sub, reason))

    async def _finish_eviction(self, sub: _Subscription,
                               reason: str) -> None:
        if sub.writer_task is not None:
            sub.writer_task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await sub.writer_task
        # Best-effort goodbye: the client's socket may be exactly what
        # is wedged, so cap the flush and close regardless.
        with contextlib.suppress(Exception):
            payload = self._json_body({
                "type": "evicted", "reason": reason,
                "delivered_seq": sub.delivered_seq,
            })
            sub.writer.write(ws.encode_frame(ws.OP_TEXT, payload))
            sub.writer.write(ws.encode_frame(
                ws.OP_CLOSE, ws.close_payload(1008, reason)))
            await asyncio.wait_for(sub.writer.drain(), 2.0)
        self._drop_subscription(sub)

    def _drop_subscription(self, sub: _Subscription) -> None:
        self._subs.pop(sub.id, None)
        self._m_subscribers.set(len(self._subs))
        for task in (sub.reader_task, sub.writer_task):
            if task is not None and not task.done():
                task.cancel()
        with contextlib.suppress(Exception):
            sub.writer.close()

    async def _sub_writer(self, sub: _Subscription) -> None:
        assert sub.wake is not None
        draining_close_sent = False
        try:
            while True:
                while sub.outbox:
                    message = sub.outbox.popleft()
                    data = self._json_body(message)
                    sub.writer.write(ws.encode_frame(ws.OP_TEXT, data))
                    await sub.writer.drain()
                    if message.get("type") == "event":
                        sub.delivered_seq = max(sub.delivered_seq,
                                                int(message["seq"]))
                if self._stopping and not sub.outbox:
                    # Graceful drain: everything flushed, say goodbye
                    # properly so the client distinguishes a rolling
                    # restart from a crash.
                    sub.writer.write(ws.encode_frame(
                        ws.OP_CLOSE, ws.close_payload(1001, "going away")))
                    await asyncio.wait_for(sub.writer.drain(), 2.0)
                    draining_close_sent = True
                    return
                sub.wake.clear()
                await sub.wake.wait()
        except (ConnectionError, asyncio.TimeoutError):
            pass
        finally:
            if draining_close_sent:
                sub.closing = True

    async def _sub_reader(self, sub: _Subscription,
                          reader: asyncio.StreamReader) -> None:
        try:
            while True:
                opcode, payload = await ws.read_frame(reader.readexactly)
                if opcode == ws.OP_CLOSE:
                    return
                if opcode == ws.OP_PING:
                    sub.writer.write(ws.encode_frame(ws.OP_PONG, payload))
                    continue
                if opcode != ws.OP_TEXT:
                    continue
                try:
                    message = json.loads(payload.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    continue
                if message.get("type") == "ack":
                    with contextlib.suppress(TypeError, ValueError):
                        sub.acked_seq = max(sub.acked_seq,
                                            int(message["seq"]))
        except (asyncio.IncompleteReadError, ConnectionError,
                ws.WebSocketError):
            return

    @property
    def _stopping(self) -> bool:
        return self._stop_async is not None and self._stop_async.is_set()

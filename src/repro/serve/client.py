"""Reference consumer for the serving plane's subscribe channel.

:class:`SubscriberState` is the pure state machine — apply a stream of
``snapshot``/``event`` messages, idempotently by seq, and hold the
reconstructed view.  It is what the resync property test drives with
fault-mutated message streams: any at-least-once interleaving of
drops-then-resyncs, duplicates and reorderings must converge to the
same final state.

:class:`SyncServeClient` wraps it in a blocking socket WebSocket
client (stdlib only) for tests, the chaos suite, and the smoke
example.  It is deliberately simple: connect, subscribe with a
``?since=`` cursor, iterate messages, ack.  Reconnect-and-resume is
the caller's loop — create a new client with
``since=state.last_seq`` and keep applying into the same state.
"""

from __future__ import annotations

import json
import socket
from base64 import b64encode
from os import urandom
from typing import Any, Dict, Iterator, Optional, Set, Tuple

from . import ws

__all__ = ["SubscriberState", "SyncServeClient", "http_get"]


class SubscriberState:
    """Client-side replica of the served view, idempotent by seq.

    ``blocks`` maps block string -> ``(up, belief, since)``; ``lost``
    is the set of lost-coverage prefixes.  ``apply`` returns True when
    the message changed the state (False for duplicates and stale
    re-deliveries), which is the at-least-once contract: re-applying
    any already-seen suffix is a no-op.
    """

    def __init__(self) -> None:
        self.blocks: Dict[str, Tuple[bool, Optional[float],
                                     Optional[float]]] = {}
        self.lost: Set[str] = set()
        self.last_seq = 0
        self.snapshot_seq = 0
        self.watermark: Optional[float] = None
        self.events_applied = 0
        self.snapshots_applied = 0
        self.gaps_detected = 0

    def view(self) -> Tuple[Tuple[Tuple[str, Tuple[bool, Optional[float],
                                                   Optional[float]]], ...],
                            Tuple[str, ...], int]:
        """Canonical comparable form (the property test's equality)."""
        return (tuple(sorted(self.blocks.items())),
                tuple(sorted(self.lost)), self.last_seq)

    def apply(self, message: Dict[str, Any]) -> bool:
        kind = message.get("type")
        if kind == "snapshot":
            return self._apply_snapshot(message)
        if kind == "event":
            return self._apply_event(message)
        return False

    def _apply_snapshot(self, message: Dict[str, Any]) -> bool:
        seq = int(message.get("seq", 0))
        events_through = int(message.get("events_through", 0))
        if (seq < self.snapshot_seq
                or events_through < self.last_seq):
            return False  # older than what events already built
        self.blocks = {
            str(block): (bool(up),
                         None if belief is None else float(belief),
                         None if since is None else float(since))
            for block, up, belief, since in message.get("blocks", ())
        }
        self.lost = set(message.get("lost", ()))
        self.snapshot_seq = seq
        self.last_seq = events_through
        self.watermark = message.get("watermark")
        self.snapshots_applied += 1
        return True

    def _apply_event(self, message: Dict[str, Any]) -> bool:
        seq = int(message["seq"])
        if seq <= self.last_seq:
            return False  # duplicate / re-delivery
        if seq != self.last_seq + 1:
            # Missed an event: never apply past a hole — skipping a
            # transition would corrupt the replica silently.  The
            # caller reconnects with ``since=last_seq`` and the server
            # re-delivers in order (or resyncs via snapshot).
            self.gaps_detected += 1
            return False
        self.last_seq = seq
        self.watermark = message.get("watermark")
        self.events_applied += 1
        kind = message.get("kind")
        block = message.get("block")
        when = message.get("time")
        if kind == "onset" and block is not None:
            self.blocks[block] = (False, None, when)
        elif kind == "recovery" and block is not None:
            self.blocks[block] = (True, None, when)
        elif kind == "retraction" and block is not None:
            self.blocks.pop(block, None)
            self.lost.add(block)
        elif kind == "coverage-change":
            detail = message.get("detail") or {}
            affected = detail.get("affected_prefixes") or ()
            if detail.get("lost", True):
                for prefix in affected:
                    self.lost.add(prefix)
                    self.blocks.pop(prefix, None)
            else:
                for prefix in affected:
                    self.lost.discard(prefix)
        return True


def http_get(host: str, port: int, path: str, timeout: float = 5.0,
             ) -> Tuple[int, Dict[str, str], bytes]:
    """One blocking HTTP GET; ``(status, headers, body)``.

    Headers come back lower-cased, so shed handling reads
    ``headers.get("retry-after")``.
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall((f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
                      "Connection: close\r\n\r\n").encode("latin-1"))
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", len(body)))
    return status, headers, body[:length]


class SyncServeClient:
    """Blocking WebSocket subscriber (tests / examples / chaos suite)."""

    def __init__(self, host: str, port: int,
                 since: Optional[int] = None,
                 timeout: float = 10.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        path = "/v1/subscribe" if since is None else (
            f"/v1/subscribe?since={since}")
        key = b64encode(urandom(16)).decode("ascii")
        self._sock.sendall((
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n\r\n"
        ).encode("latin-1"))
        status_line = self._file.readline().decode("latin-1")
        self.status = int(status_line.split()[1])
        self.headers: Dict[str, str] = {}
        while True:
            line = self._file.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            self.headers[name.strip().lower()] = value.strip()
        if self.status != 101:
            # Shed or rejected: the JSON body (with Retry-After in
            # self.headers) is still readable.
            length = int(self.headers.get("content-length", 0))
            self.reject_body = self._file.read(length) if length else b""
            self.close()
            return
        expect = ws.accept_key(key)
        got = self.headers.get("sec-websocket-accept")
        if got != expect:
            self.close()
            raise ws.WebSocketError(
                f"bad handshake accept: {got!r} != {expect!r}")

    @property
    def accepted(self) -> bool:
        return self.status == 101

    def settimeout(self, timeout: Optional[float]) -> None:
        self._sock.settimeout(timeout)

    def _readexactly(self, n: int) -> bytes:
        data = self._file.read(n)
        if data is None or len(data) < (n or 0):
            raise ws.WebSocketError("connection closed mid-frame")
        return data

    def recv_message(self) -> Optional[Dict[str, Any]]:
        """Next JSON message; None on close.  Pings answered inline."""
        while True:
            opcode, payload = ws.read_frame_blocking(self._readexactly)
            if opcode == ws.OP_CLOSE:
                return None
            if opcode == ws.OP_PING:
                self._sock.sendall(ws.encode_frame(ws.OP_PONG, payload,
                                                   mask=True))
                continue
            if opcode != ws.OP_TEXT:
                continue
            return json.loads(payload.decode("utf-8"))

    def messages(self) -> Iterator[Dict[str, Any]]:
        while True:
            message = self.recv_message()
            if message is None:
                return
            yield message

    def send_json(self, document: Dict[str, Any]) -> None:
        payload = json.dumps(document, separators=(",", ":")).encode()
        self._sock.sendall(ws.encode_frame(ws.OP_TEXT, payload, mask=True))

    def ack(self, seq: int) -> None:
        self.send_json({"type": "ack", "seq": int(seq)})

    def close(self) -> None:
        try:
            self._file.close()
        except Exception:
            pass
        try:
            self._sock.close()
        except Exception:
            pass

    def __enter__(self) -> "SyncServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

"""Minimal RFC 6455 WebSocket framing, stdlib only.

Just enough of the protocol for the serving plane's subscribe channel
and its test/smoke clients: the opening handshake digest, and
single-frame text/close/ping/pong encode/decode.  Fragmented messages
and extensions are rejected explicitly — the plane's own messages are
always single text frames, and a peer that fragments is outside the
contract.

Two decode entry points share the header logic: an ``async`` one for
the plane's :class:`asyncio.StreamReader` and a blocking one for the
synchronous client (which takes any ``readexactly(n)`` callable, e.g.
a socket file's ``read``).
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct
from typing import Awaitable, Callable, Tuple

__all__ = [
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "OP_TEXT",
    "WebSocketError",
    "accept_key",
    "close_payload",
    "encode_frame",
    "read_frame",
    "read_frame_blocking",
]

#: RFC 6455 §1.3 handshake GUID.
_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_TEXT = 0x1
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: payload bytes accepted per frame; the plane's largest message is a
#: full-population snapshot, well under this.
MAX_FRAME = 16 * 1024 * 1024


class WebSocketError(Exception):
    """Protocol violation or unsupported frame."""


def accept_key(key: str) -> str:
    """``Sec-WebSocket-Accept`` for a client's ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((key + _GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """One FIN frame.  ``mask=True`` for client->server direction."""
    header = bytearray([0x80 | (opcode & 0x0F)])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if mask:
        key = os.urandom(4)
        header += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + payload


def close_payload(code: int, reason: str = "") -> bytes:
    """Close-frame payload: status code plus UTF-8 reason."""
    return struct.pack(">H", code) + reason.encode("utf-8")


def _decode_lengths(b1: int, b2: int) -> Tuple[int, bool, int]:
    """``(opcode, masked, length_or_extended)`` from the first 2 bytes.

    Returns length ``126``/``127`` sentinels unresolved; callers read
    the extended length themselves (sync vs async).
    """
    if not b1 & 0x80:
        raise WebSocketError("fragmented frames are not supported")
    if b1 & 0x70:
        raise WebSocketError("reserved bits set (extensions unsupported)")
    opcode = b1 & 0x0F
    masked = bool(b2 & 0x80)
    return opcode, masked, b2 & 0x7F


def _unmask(payload: bytes, key: bytes) -> bytes:
    return bytes(b ^ key[i % 4] for i, b in enumerate(payload))


async def read_frame(readexactly: Callable[[int], Awaitable[bytes]],
                     ) -> Tuple[int, bytes]:
    """Read one frame from an async ``readexactly``; ``(opcode, payload)``."""
    head = await readexactly(2)
    opcode, masked, length = _decode_lengths(head[0], head[1])
    if length == 126:
        length = struct.unpack(">H", await readexactly(2))[0]
    elif length == 127:
        length = struct.unpack(">Q", await readexactly(8))[0]
    if length > MAX_FRAME:
        raise WebSocketError(f"frame of {length} bytes exceeds limit")
    key = await readexactly(4) if masked else b""
    payload = await readexactly(length) if length else b""
    if masked:
        payload = _unmask(payload, key)
    return opcode, payload


def read_frame_blocking(readexactly: Callable[[int], bytes],
                        ) -> Tuple[int, bytes]:
    """Blocking twin of :func:`read_frame` for the sync client."""
    head = readexactly(2)
    if len(head) < 2:
        raise WebSocketError("connection closed mid-frame")
    opcode, masked, length = _decode_lengths(head[0], head[1])
    if length == 126:
        length = struct.unpack(">H", readexactly(2))[0]
    elif length == 127:
        length = struct.unpack(">Q", readexactly(8))[0]
    if length > MAX_FRAME:
        raise WebSocketError(f"frame of {length} bytes exceeds limit")
    key = readexactly(4) if masked else b""
    payload = readexactly(length) if length else b""
    if masked:
        payload = _unmask(payload, key)
    if len(payload) < length:
        raise WebSocketError("connection closed mid-frame")
    return opcode, payload

"""Sequence-numbered event stream with a bounded replay ring.

The broker assigns every published event a monotone sequence number
and retains the last ``capacity`` events.  Delivery to subscribers is
at-least-once and idempotent by seq (mirroring the live heartbeat
protocol's ``metrics_seq`` guard): a client applies an event only when
its seq exceeds the last one applied, so duplicates and re-deliveries
are no-ops.  A reconnecting client asks for ``since(last_acked)``; if
the ring still holds seq ``last_acked + 1`` it gets pure deltas,
otherwise the gap is explicit and the plane resyncs it via
snapshot-then-deltas — never silently.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = ["EVENT_KINDS", "EventBroker", "ServeEvent"]

#: The event vocabulary.  ``onset``/``recovery`` are block state
#: transitions; ``retraction`` withdraws a block's evidence (the
#: detector dead-lettered it); ``coverage-change`` reports the lost
#: keyspace growing (partition dead-lettered) or shrinking.
EVENT_KINDS = ("onset", "recovery", "retraction", "coverage-change")


@dataclass(frozen=True)
class ServeEvent:
    """One immutable event on the wire.

    ``time`` is stream time (the transition's bin boundary);
    ``emitted_at`` is ``time.monotonic()`` at publication, which the
    delivery-latency benchmark subtracts client-side.
    """

    seq: int
    kind: str
    time: float
    watermark: float
    block: Optional[str] = None
    key: Optional[int] = None
    detail: Tuple[Tuple[str, Any], ...] = ()
    emitted_at: float = 0.0

    def to_wire(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "type": "event",
            "seq": self.seq,
            "kind": self.kind,
            "time": self.time,
            "watermark": self.watermark,
            "block": self.block,
            "emitted_at": self.emitted_at,
        }
        if self.key is not None:
            document["key"] = self.key
        if self.detail:
            document["detail"] = dict(self.detail)
        return document


@dataclass
class EventSpec:
    """Publisher-side event payload before the broker assigns a seq."""

    kind: str
    time: float
    block: Optional[str] = None
    key: Optional[int] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")


class EventBroker:
    """Bounded ring of sequence-numbered events.

    Single-writer (the plane's event loop); readers take immutable
    :class:`ServeEvent` objects.  The ring bounds replay memory: a
    consumer further behind than ``capacity`` events cannot be healed
    by deltas and must snapshot-resync, which :meth:`since` reports as
    an explicit gap.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._ring: Deque[ServeEvent] = deque(maxlen=self.capacity)
        self._last_seq = 0

    @property
    def last_seq(self) -> int:
        """Seq of the newest published event (0 = nothing published)."""
        return self._last_seq

    @property
    def oldest_retained(self) -> Optional[int]:
        """Seq of the oldest event still in the ring, or ``None``."""
        return self._ring[0].seq if self._ring else None

    def publish(self, spec: EventSpec, watermark: float,
                emitted_at: Optional[float] = None) -> ServeEvent:
        """Assign the next seq and retain the event; returns it."""
        self._last_seq += 1
        event = ServeEvent(
            seq=self._last_seq,
            kind=spec.kind,
            time=float(spec.time),
            watermark=float(watermark),
            block=spec.block,
            key=spec.key,
            detail=tuple(sorted(spec.detail.items())),
            emitted_at=(time.monotonic() if emitted_at is None
                        else float(emitted_at)),
        )
        self._ring.append(event)
        return event

    def since(self, seq: int) -> Tuple[List[ServeEvent], bool]:
        """Events with seq > ``seq``, plus whether a gap precedes them.

        ``gap`` is True when the ring no longer holds ``seq + 1`` even
        though newer events exist(ed) — the caller missed events it can
        never replay from here and must resync from a snapshot.
        """
        if seq >= self._last_seq:
            return [], False
        oldest = self.oldest_retained
        gap = oldest is None or seq + 1 < oldest
        return [event for event in self._ring if event.seq > seq], gap

"""Bridges from the live detection engines to the serving plane.

Two deployment shapes, one serving contract:

* :class:`EngineBridge` fronts an in-process
  :class:`~repro.live.LiveBlockEngine` — it reads the streaming
  detector directly (beliefs included) and converts fresh transitions
  and dead-letters into serve events.
* :class:`SupervisorBridge` fronts a
  :class:`~repro.live.LivePartitionSupervisor` — workers piggyback
  per-block transitions on their heartbeats (``ship_transitions``),
  the supervisor forwards them through its ``on_transitions`` hook,
  and the bridge applies them idempotently (strictly increasing
  transition time per block), so a restarted worker re-shipping its
  full history is a no-op.  A partition dead-lettered as lost coverage
  becomes a ``coverage-change`` event plus ``lost-coverage`` entries
  for exactly that partition's measurable keyspace.

Publication is *progress-driven*, never wall-clock-driven: a snapshot
is published only when something changed (transitions, coverage, or
an advanced watermark).  A stalled detector therefore starves
publication, the served snapshot ages honestly, and the plane's
staleness stamps and ``/ready`` gate trip — staleness is a signal
here, not something a republish loop is allowed to mask.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..net.blocks import Block
from .events import EventSpec
from .plane import ServingPlane
from .snapshot import BlockServingState

__all__ = [
    "EngineBridge",
    "SupervisorBridge",
    "detector_block_states",
    "fresh_transitions",
]

#: one (key, time, is_up) transition row, the piggyback wire shape.
TransitionRow = Tuple[int, float, bool]


def detector_block_states(detector: Any) -> Dict[int, BlockServingState]:
    """Served states straight from a streaming detector's live blocks."""
    states: Dict[int, BlockServingState] = {}
    for key, state in detector._states.items():
        transitions = state.transitions
        states[key] = BlockServingState(
            up=bool(state.belief.is_up),
            belief=float(state.belief.belief),
            since=float(transitions[-1][0]) if transitions else None,
        )
    return states


def fresh_transitions(detector: Any,
                      shipped: Dict[int, int]) -> List[TransitionRow]:
    """Transitions appended since the last call, updating ``shipped``.

    ``shipped`` maps block key -> transition count already taken; the
    worker keeps one per incarnation, so after a restart (counts reset,
    detector restored from checkpoint) the full history re-ships and
    the consumer's idempotent apply drops the duplicates.
    """
    rows: List[TransitionRow] = []
    for key in sorted(detector._states):
        transitions = detector._states[key].transitions
        seen = shipped.get(key, 0)
        if len(transitions) > seen:
            rows.extend((key, float(when), bool(up))
                        for when, up in transitions[seen:])
            shipped[key] = len(transitions)
    return rows


class EngineBridge:
    """Publish one in-process engine's state through a serving plane.

    Call :meth:`step` after feeding observations (per record or per
    batch — it is cheap when nothing changed) and once more with
    ``force=True`` after the final flush.
    """

    def __init__(self, engine: Any, plane: ServingPlane,
                 publish_min_interval_s: float = 0.25,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.engine = engine
        self.plane = plane
        self.publish_min_interval_s = float(publish_min_interval_s)
        self._clock = clock
        self.family = engine.detector.family
        self._depth = self.family.default_block_prefix
        self._shipped: Dict[int, int] = {}
        self._dead_seen = 0
        self._lost: Dict[int, str] = {}
        self._published_watermark = float("-inf")
        self._last_publish = float("-inf")

    def _block(self, key: int) -> str:
        return str(Block(self.family, key, self._depth))

    def step(self, force: bool = False) -> bool:
        """Publish if warranted; returns whether a snapshot went out."""
        detector = self.engine.detector
        specs: List[EventSpec] = []
        for key, when, up in fresh_transitions(detector, self._shipped):
            specs.append(EventSpec(
                kind="recovery" if up else "onset", time=when,
                block=self._block(key), key=key))
        entries = detector.dead_letters.entries
        if len(entries) > self._dead_seen:
            retracted: List[str] = []
            for entry in entries[self._dead_seen:]:
                key = int(entry.block_key)
                if key in self._lost:
                    continue
                self._lost[key] = "quarantined"
                self._shipped.pop(key, None)
                block = self._block(key)
                retracted.append(block)
                specs.append(EventSpec(
                    kind="retraction", time=float(detector.last_time),
                    block=block, key=key,
                    detail={"stage": entry.stage,
                            "error_type": entry.error_type}))
            self._dead_seen = len(entries)
            if retracted:
                specs.append(EventSpec(
                    kind="coverage-change", time=float(detector.last_time),
                    detail={"lost": True, "reason": "quarantined",
                            "affected_prefixes": sorted(retracted)}))
        now = self._clock()
        watermark = float(detector.last_time)
        advanced = watermark > self._published_watermark
        throttled = now - self._last_publish < self.publish_min_interval_s
        if not (specs or force or (advanced and not throttled)):
            return False
        self.plane.publish(
            detector_block_states(detector), watermark=watermark,
            lost=dict(self._lost), events=specs)
        self._published_watermark = watermark
        self._last_publish = now
        return True


class SupervisorBridge:
    """Publish a partitioned supervisor's state through a serving plane.

    Installs itself on the supervisor's ``on_transitions`` /
    ``on_service`` hooks.  State is reconstructed from worker
    transition reports (decision + time, no posterior — ``belief`` is
    served as ``None``), keyed by strictly increasing transition time
    per block so at-least-once shipping stays exact.
    """

    def __init__(self, supervisor: Any, plane: ServingPlane,
                 publish_min_interval_s: float = 0.25,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.supervisor = supervisor
        self.plane = plane
        self.publish_min_interval_s = float(publish_min_interval_s)
        self._clock = clock
        self.family = supervisor.model.family
        self._depth = self.family.default_block_prefix
        #: every measurable block starts served as up — the same prior
        #: the detector itself starts from (belief at the ceiling).
        self._states: Dict[int, BlockServingState] = {
            key: BlockServingState(up=True)
            for partition in supervisor.partitions
            for key in partition.measurable
        }
        self._applied: Dict[int, float] = {}
        self._pending: List[EventSpec] = []
        self._lost: Dict[int, str] = {}
        self._lost_partitions: Set[int] = set()
        self._published_watermark = float("-inf")
        self._last_publish = float("-inf")
        self._dirty = True
        supervisor.on_transitions = self.on_transitions
        supervisor.on_service = self.on_service

    def _block(self, key: int) -> str:
        return str(Block(self.family, key, self._depth))

    # -- supervisor hooks ---------------------------------------------------

    def on_transitions(self, rows: List[TransitionRow]) -> None:
        """Fold piggybacked transition rows; duplicates are no-ops."""
        for key, when, up in rows:
            key = int(key)
            when = float(when)
            if when <= self._applied.get(key, float("-inf")):
                continue  # re-shipped after a worker restart
            if key in self._lost:
                continue
            self._applied[key] = when
            self._states[key] = BlockServingState(up=bool(up), since=when)
            self._pending.append(EventSpec(
                kind="recovery" if up else "onset", time=when,
                block=self._block(key), key=key))
            self._dirty = True

    def on_service(self, force: bool = False) -> None:
        """Per-supervision-pass hook: fold coverage, maybe publish."""
        status = self.supervisor.live_status()
        for partition in status.partitions:
            if (partition.status != "lost"
                    or partition.index in self._lost_partitions):
                continue
            self._lost_partitions.add(partition.index)
            affected: List[str] = []
            for key in partition.measurable_keys:
                if key in self._lost:
                    continue
                self._lost[key] = "lost-coverage"
                self._states.pop(key, None)
                affected.append(self._block(key))
            self._pending.append(EventSpec(
                kind="coverage-change", time=status.global_watermark,
                detail={"lost": True, "reason": "lost-coverage",
                        "partition": partition.unit,
                        "affected_prefixes": sorted(affected)}))
            self._dirty = True
        if status.global_watermark > self._published_watermark:
            self._dirty = True
        now = self._clock()
        throttled = (now - self._last_publish < self.publish_min_interval_s
                     and not self._pending)
        if (self._dirty or force) and (force or not throttled):
            self.plane.publish(
                dict(self._states), watermark=status.global_watermark,
                lost=dict(self._lost), events=self._pending)
            self._pending = []
            self._dirty = False
            self._published_watermark = status.global_watermark
            self._last_publish = now

"""Resilient live serving plane for the streaming detector.

`ROADMAP` item 2: the system detects outages but nothing can *ask* it
anything.  This package fronts a running
:class:`~repro.live.LiveBlockEngine` (or the partitioned
:class:`~repro.live.LivePartitionSupervisor`) with an asyncio HTTP +
WebSocket service — stdlib only, like everything else in the repo:

* **query** current up/down state by address (longest-prefix match via
  :mod:`repro.net.trie`) or by prefix (subtree enumeration);
* **subscribe** to finalized onset/recovery/retraction events over a
  WebSocket with sequence-numbered, at-least-once delivery;
* **observe** the run itself: ``/health``, a ``/ready`` admission gate,
  and the :mod:`repro.obs` registry's Prometheus/JSON expositions.

Robustness is the contract, not a feature flag: every response is
stamped ``{watermark, staleness_s, degraded}``, slow consumers are
evicted (bounded outboxes) and resync via snapshot-then-deltas,
overload sheds with ``503`` + deterministic ``Retry-After`` hints, and
a dead-lettered partition's keyspace answers ``degraded:
"lost-coverage"`` instead of fabricating absence evidence.
"""

from .admission import Admission, AdmissionConfig, ReadyGate, TokenBucket
from .bridge import EngineBridge, SupervisorBridge
from .client import SubscriberState, SyncServeClient
from .events import EVENT_KINDS, EventBroker, EventSpec, ServeEvent
from .plane import ServeConfig, ServingPlane
from .snapshot import (
    BlockServingState,
    LagPolicy,
    ServingSnapshot,
    build_snapshot,
)

__all__ = [
    "Admission",
    "AdmissionConfig",
    "BlockServingState",
    "EngineBridge",
    "EventBroker",
    "EventSpec",
    "EVENT_KINDS",
    "LagPolicy",
    "ReadyGate",
    "ServeConfig",
    "ServeEvent",
    "ServingPlane",
    "ServingSnapshot",
    "SubscriberState",
    "SupervisorBridge",
    "SyncServeClient",
    "TokenBucket",
    "build_snapshot",
]

"""Immutable serving snapshots and the bounded-lag policy.

The serving hot path never reads detector internals: the publisher
(an :mod:`~repro.serve.bridge` bridge) assembles a
:class:`ServingSnapshot` — two frozen tries plus scalar metadata — and
the plane swaps it in with a single attribute assignment.  Readers in
any thread pick up whichever snapshot reference they observe; a
snapshot is never mutated after publication, so there is no lock and
no torn read on the query path.

Staleness is always explicit.  Every response carries a stamp
``{watermark, staleness_s, degraded, ...}`` and the
:class:`LagPolicy` decides what a stale snapshot means: by default the
plane serves it *flagged* (``degraded: "stale"``), because a monitoring
consumer usually prefers last-known state with an honest timestamp
over an error; past the optional hard bound it fails closed with a
503, because state older than that is indistinguishable from wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from ..net.addr import Address, Family
from ..net.blocks import Block
from ..net.trie import FrozenPrefixTrie, PrefixTrie

__all__ = [
    "BlockServingState",
    "LagPolicy",
    "ServingSnapshot",
    "build_snapshot",
]


@dataclass(frozen=True)
class BlockServingState:
    """Served state of one monitored block.

    ``belief`` is ``None`` when the publisher cannot see the posterior
    (the partitioned supervisor serves from worker transition reports,
    which carry the decision but not the filter state).
    """

    up: bool
    belief: Optional[float] = None
    #: stream time of the latest up/down transition; ``None`` when the
    #: block has never flipped since the monitor started.
    since: Optional[float] = None

    def to_wire(self) -> Dict[str, Any]:
        return {"up": self.up, "belief": self.belief, "since": self.since}


@dataclass(frozen=True)
class LagPolicy:
    """Bounded-lag contract between detector watermark and served state.

    ``stale_after_s``: past this many wall seconds since the last
    snapshot publication, responses are flagged ``degraded: "stale"``
    but still served.  ``fail_after_s``: past this hard bound the plane
    answers 503 instead (``None`` serves stale state forever, always
    flagged — the serve-stale-with-flag default).
    """

    stale_after_s: float = 30.0
    fail_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.stale_after_s < 0:
            raise ValueError("stale_after_s must be >= 0")
        if (self.fail_after_s is not None
                and self.fail_after_s < self.stale_after_s):
            raise ValueError("fail_after_s must be >= stale_after_s")

    def judge(self, staleness_s: float) -> str:
        """``"ok"``, ``"stale"`` (serve flagged) or ``"fail"`` (503)."""
        if self.fail_after_s is not None and staleness_s > self.fail_after_s:
            return "fail"
        if staleness_s > self.stale_after_s:
            return "stale"
        return "ok"


@dataclass(frozen=True)
class ServingSnapshot:
    """One immutable, point-in-time view of the monitored population.

    Published as a whole; never mutated afterwards.  ``events_through``
    is the event-broker sequence number already folded into this state,
    which is what makes snapshot-then-deltas resync exact: a client
    that applies this snapshot and then every event with a larger seq
    reconstructs the live view bit-for-bit.
    """

    seq: int
    family: Family
    #: stream time through which the detector judged this state.
    watermark: float
    #: ``time.monotonic()`` at publication; staleness is measured
    #: against it.
    published_at: float
    events_through: int
    #: block -> :class:`BlockServingState` for every monitored block.
    states: FrozenPrefixTrie
    #: block -> degradation reason ("lost-coverage" for a dead-lettered
    #: partition's keyspace, "quarantined" for a dead-lettered block).
    lost: FrozenPrefixTrie
    lost_prefixes: Tuple[str, ...]

    def stamp(self, staleness_s: float, degraded: Optional[str],
              ) -> Dict[str, Any]:
        """The ``stamp`` object attached to every served response."""
        return {
            "watermark": self.watermark,
            "staleness_s": round(staleness_s, 3),
            "degraded": degraded,
            "snapshot_seq": self.seq,
            "events_through": self.events_through,
        }

    # -- queries ------------------------------------------------------------

    def query_address(self, address: Address) -> Dict[str, Any]:
        """LPM query; ``degraded: "lost-coverage"`` under a lost keyspace."""
        lost_hit = self.lost.lookup(address)
        if lost_hit is not None:
            reason, lost_block = lost_hit
            return {
                "query": {"address": str(address)},
                "found": False,
                "degraded": reason,
                "affected_prefixes": [str(lost_block)],
            }
        hit = self.states.lookup(address)
        if hit is None:
            return {"query": {"address": str(address)}, "found": False,
                    "degraded": None}
        state, block = hit
        document = {"query": {"address": str(address)}, "found": True,
                    "block": str(block), "degraded": None}
        document.update(state.to_wire())
        return document

    def query_prefix(self, block: Block) -> Dict[str, Any]:
        """Subtree query: every monitored block at or under ``block``."""
        blocks = [
            dict({"block": str(covered)}, **state.to_wire())
            for covered, state in self.states.covered(block)
        ]
        affected = sorted(
            {str(covered) for covered, _ in self.lost.covered(block)}
            | ({str(hit[1])} if (hit := self.lost.lookup(
                block.network_address)) is not None else set())
        )
        down = sum(1 for entry in blocks if not entry["up"])
        return {
            "query": {"prefix": str(block)},
            "blocks": blocks,
            "count": len(blocks),
            "down": down,
            "degraded": "lost-coverage" if affected else None,
            "affected_prefixes": affected,
        }

    def snapshot_message(self) -> Dict[str, Any]:
        """Full-state resync payload for a (re)connecting subscriber."""
        return {
            "type": "snapshot",
            "seq": self.seq,
            "watermark": self.watermark,
            "events_through": self.events_through,
            "blocks": [
                [str(block), state.up, state.belief, state.since]
                for block, state in self.states.items()
            ],
            "lost": list(self.lost_prefixes),
        }


def build_snapshot(
    family: Family,
    states: Mapping[int, BlockServingState],
    *,
    watermark: float,
    published_at: float,
    lost: Optional[Mapping[int, str]] = None,
    seq: int = 0,
    events_through: int = 0,
    prefix_len: Optional[int] = None,
    lost_blocks: Optional[Iterable[Block]] = None,
) -> ServingSnapshot:
    """Assemble a snapshot from keyed block states.

    Integer keys are block prefixes at ``prefix_len`` (the family's
    default block prefix when omitted) — the same keying the detector
    and supervisor use.  ``lost_blocks`` adds arbitrary-width lost
    prefixes (a dead-lettered partition's keyspace aggregates).
    """
    depth = family.default_block_prefix if prefix_len is None else prefix_len
    state_trie: PrefixTrie = PrefixTrie(family)
    for key, state in states.items():
        state_trie.insert(Block(family, int(key), depth), state)
    lost_trie: PrefixTrie = PrefixTrie(family)
    for key, reason in (lost or {}).items():
        lost_trie.insert(Block(family, int(key), depth), reason)
    for block in (lost_blocks or ()):
        lost_trie.insert(block, "lost-coverage")
    frozen_lost = lost_trie.frozen()
    return ServingSnapshot(
        seq=seq,
        family=family,
        watermark=float(watermark),
        published_at=float(published_at),
        events_through=int(events_through),
        states=state_trie.frozen(),
        lost=frozen_lost,
        lost_prefixes=tuple(str(block) for block, _ in frozen_lost.items()),
    )

"""Per-block traffic-rate populations.

The paper's central difficulty is Internet diversity: a few blocks send
a root server queries every few seconds ("dense"), while most send a
query every few minutes or rarer ("sparse").  The per-block parameter
tuning exists exactly to cope with that spread.  This module draws
block-level mean query rates from a heavy-tailed mixture so the
simulated population reproduces the dense/sparse dichotomy the poster's
examples illustrate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["DensityClass", "RateMixture", "classify_rate",
           "DENSE_RATE_THRESHOLD"]

#: Blocks at or above this mean rate (queries/second) resolve a 5-minute
#: bin reliably: P(empty 300 s bin | up) = exp(-rate*300) <= ~2.5e-4 at
#: 0.0275 q/s.  Used only for reporting labels; the detector's own
#: tuning works from the measured rate, not the label.
DENSE_RATE_THRESHOLD = 1.0 / 36.0  # one query per 36 s


class DensityClass(enum.Enum):
    """Reporting label for a block's traffic density."""

    DENSE = "dense"
    SPARSE = "sparse"
    UNMEASURABLE = "unmeasurable"


def classify_rate(rate: float, min_measurable_rate: float = 1.0 / 7200.0
                  ) -> DensityClass:
    """Label a mean rate dense/sparse/unmeasurable.

    ``min_measurable_rate`` defaults to one query per two hours — below
    that even the coarsest time bin the system uses cannot distinguish
    "down" from "quiet", matching the paper's measurability cut-off.
    """
    if rate >= DENSE_RATE_THRESHOLD:
        return DensityClass.DENSE
    if rate >= min_measurable_rate:
        return DensityClass.SPARSE
    return DensityClass.UNMEASURABLE


@dataclass
class RateMixture:
    """Two-component lognormal mixture over block mean rates (q/s).

    Defaults produce a population whose dense fraction, sparse tail, and
    unmeasurable residue are in the proportions the paper's coverage
    numbers imply (roughly: a fifth dense, most of the rest sparse, a
    small unmeasurable tail).
    """

    dense_fraction: float = 0.22
    #: lognormal parameters of the dense component (median ~0.2 q/s).
    dense_mu: float = -1.6
    dense_sigma: float = 0.9
    #: lognormal parameters of the sparse component (median ~1/500 q/s).
    sparse_mu: float = -6.2
    sparse_sigma: float = 1.3

    def draw(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` block mean rates."""
        if count < 0:
            raise ValueError("count must be non-negative")
        dense_mask = rng.random(count) < self.dense_fraction
        rates = np.empty(count, dtype=float)
        n_dense = int(dense_mask.sum())
        rates[dense_mask] = rng.lognormal(self.dense_mu, self.dense_sigma,
                                          size=n_dense)
        rates[~dense_mask] = rng.lognormal(self.sparse_mu, self.sparse_sigma,
                                           size=count - n_dense)
        return rates

    def expected_dense_share(self, samples: int = 20000,
                             seed: int = 7) -> float:
        """Monte-Carlo estimate of the share of blocks labelled dense."""
        rng = np.random.default_rng(seed)
        rates = self.draw(rng, samples)
        labels = [classify_rate(rate) for rate in rates]
        return sum(label is DensityClass.DENSE for label in labels) / samples

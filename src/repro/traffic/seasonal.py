"""Diurnal and weekly modulation of traffic intensity.

The poster notes that future work will model seasonal and diurnal
effects; the simulator includes them anyway so that (a) the detector's
robustness to daily rate swings is testable, and (b) the per-block
history model can be extended to absorb them (see
``repro.core.history``).  Modulation is a smooth multiplicative factor
with mean ~1 over a day, so a block's configured mean rate stays its
daily average.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DiurnalPattern", "DAY_SECONDS", "WEEK_SECONDS"]

DAY_SECONDS = 86400.0
WEEK_SECONDS = 7 * DAY_SECONDS


@dataclass(frozen=True)
class DiurnalPattern:
    """Sinusoidal day/week modulation of an arrival rate.

    intensity(t) = max(0, 1 + a_day*sin(day phase) + a_week*sin(week phase))

    ``amplitude`` below 1 keeps the factor strictly positive; the draw
    helper therefore caps it.
    """

    amplitude: float = 0.0
    peak_hour: float = 14.0
    week_amplitude: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude <= 0.95:
            raise ValueError(f"diurnal amplitude out of range: {self.amplitude}")
        if not 0.0 <= self.week_amplitude <= 0.5:
            raise ValueError(f"weekly amplitude out of range: {self.week_amplitude}")

    @property
    def max_intensity(self) -> float:
        """Upper bound of :meth:`intensity`, used for thinning."""
        return 1.0 + self.amplitude + self.week_amplitude

    def intensity(self, times: np.ndarray) -> np.ndarray:
        """Vectorised multiplicative intensity at ``times`` (seconds)."""
        times = np.asarray(times, dtype=float)
        day_phase = 2.0 * np.pi * (times / DAY_SECONDS - self.peak_hour / 24.0)
        factor = 1.0 + self.amplitude * np.cos(day_phase)
        if self.week_amplitude:
            week_phase = 2.0 * np.pi * times / WEEK_SECONDS
            factor = factor + self.week_amplitude * np.cos(week_phase)
        return np.maximum(factor, 0.0)

    @classmethod
    def flat(cls) -> "DiurnalPattern":
        """No modulation (intensity identically 1)."""
        return cls(0.0, 0.0, 0.0)

    @classmethod
    def draw(cls, rng: np.random.Generator,
             mean_amplitude: float = 0.3) -> "DiurnalPattern":
        """Draw a random per-block pattern.

        Amplitudes are beta-distributed around ``mean_amplitude`` and the
        peak hour is uniform — blocks around the world peak at different
        local afternoons.
        """
        amplitude = min(0.95, float(rng.beta(2.0, 2.0 / mean_amplitude)))
        peak_hour = float(rng.uniform(0.0, 24.0))
        week_amplitude = float(rng.uniform(0.0, 0.15))
        return cls(amplitude, peak_hour, week_amplitude)

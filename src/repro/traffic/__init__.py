"""Traffic substrate: the simulated Internet and its arrival processes."""

from .darknet import DarknetConfig, DarknetTelescope
from .internet import BlockProfile, FamilyConfig, InternetConfig, SimulatedInternet
from .outages import IPV4_OUTAGE_MODEL, IPV6_OUTAGE_MODEL, OutageModel
from .rates import DENSE_RATE_THRESHOLD, DensityClass, RateMixture, classify_rate
from .seasonal import DAY_SECONDS, WEEK_SECONDS, DiurnalPattern
from .sources import (
    mmpp_times,
    modulated_poisson_times,
    poisson_times,
    suppress_intervals,
)

__all__ = [
    "DarknetConfig",
    "DarknetTelescope",
    "BlockProfile",
    "FamilyConfig",
    "InternetConfig",
    "SimulatedInternet",
    "IPV4_OUTAGE_MODEL",
    "IPV6_OUTAGE_MODEL",
    "OutageModel",
    "DENSE_RATE_THRESHOLD",
    "DensityClass",
    "RateMixture",
    "classify_rate",
    "DAY_SECONDS",
    "WEEK_SECONDS",
    "DiurnalPattern",
    "mmpp_times",
    "modulated_poisson_times",
    "poisson_times",
    "suppress_intervals",
]

"""Darknet (Internet background radiation) as a second passive source.

The poster's future work: "we plan to extend this work to other passive
data sources (such as darknets)".  A darknet telescope watches an
unused prefix; the traffic arriving there — scanner probes, backscatter
from spoofed-source floods, misconfiguration — comes from live hosts
everywhere, so per-block IBR arrival is an outage signal with exactly
the same shape as root-server queries: it stops when the block dies.
This is the signal Chocolatine consumes at AS level; here it feeds the
per-block detector and fuses with the DNS vantage.

Differences from the DNS source that the model preserves:

* the per-block IBR rate is only weakly correlated with its resolver
  query rate (scanners are not resolvers) — fusing the two therefore
  genuinely adds coverage rather than just doubling one signal;
* a share of IBR is spoofed, so some "arrivals" from a block continue
  while it is down (higher noise floor than the DNS source);
* scanning is burstier than resolver traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..net.addr import Family
from .internet import BlockProfile, SimulatedInternet
from .sources import mmpp_times, poisson_times, suppress_intervals

__all__ = ["DarknetConfig", "DarknetTelescope"]


@dataclass(frozen=True)
class DarknetConfig:
    """Shape of the IBR a darknet telescope attracts.

    ``rate_exponent``/``rate_noise_sigma`` set how a block's IBR rate
    derives from its DNS rate: ``ibr = scale * dns**exponent * lognoise``
    — exponent < 1 flattens the relationship, so some DNS-quiet blocks
    are IBR-loud (the coverage win) and vice versa.
    """

    rate_scale: float = 0.25
    rate_exponent: float = 0.55
    rate_noise_sigma: float = 1.0
    #: fraction of a block's IBR that is spoofed (keeps flowing during
    #: outages, raising the detector's noise floor for this source).
    spoofed_fraction: float = 0.02
    #: fraction of blocks whose IBR is bursty scanning (MMPP).
    bursty_fraction: float = 0.5
    seed: int = 31337


class DarknetTelescope:
    """Generates per-block IBR observation streams over a simulated
    Internet, sharing that Internet's ground truth."""

    def __init__(self, internet: SimulatedInternet,
                 config: Optional[DarknetConfig] = None) -> None:
        self.internet = internet
        self.config = config or DarknetConfig()
        self._rates: Dict[Tuple[Family, int], float] = {}
        rng = np.random.default_rng(self.config.seed)
        for profile in internet.profiles:
            base = max(profile.mean_rate, 1e-7)
            rate = (self.config.rate_scale
                    * base ** self.config.rate_exponent
                    * float(rng.lognormal(0.0,
                                          self.config.rate_noise_sigma)))
            self._rates[(profile.family, profile.key)] = rate

    def ibr_rate_for(self, profile: BlockProfile) -> float:
        """The block's mean IBR arrival rate at the telescope (pkts/s)."""
        return self._rates[(profile.family, profile.key)]

    def observations(
        self, seed: Optional[int] = None,
        start: Optional[float] = None, end: Optional[float] = None,
    ) -> Iterator[Tuple[BlockProfile, np.ndarray]]:
        """Yield ``(profile, sorted IBR arrival times)`` per block.

        Legitimate (non-spoofed) IBR is suppressed during ground-truth
        outages; the spoofed share flows regardless — it never saw the
        block, only its address space.
        """
        config = self.config
        start = self.internet.config.start if start is None else start
        end = self.internet.config.end if end is None else end
        base_seed = config.seed if seed is None else seed
        children = np.random.SeedSequence(base_seed).spawn(
            len(self.internet.profiles))
        for profile, child in zip(self.internet.profiles, children):
            rng = np.random.default_rng(child)
            rate = self._rates[(profile.family, profile.key)]
            genuine_rate = rate * (1.0 - config.spoofed_fraction)
            spoofed_rate = rate * config.spoofed_fraction
            if rng.random() < config.bursty_fraction:
                genuine = mmpp_times(rng, genuine_rate, start, end,
                                     burst_factor=8.0)
            else:
                genuine = poisson_times(rng, genuine_rate, start, end)
            down = [(max(s, start), min(e, end))
                    for s, e in profile.truth.down_intervals
                    if e > start and s < end]
            genuine = suppress_intervals(genuine, down)
            spoofed = poisson_times(rng, spoofed_rate, start, end)
            merged = np.concatenate([genuine, spoofed])
            merged.sort()
            yield profile, merged

    def per_block(self, family: Family, seed: Optional[int] = None,
                  start: Optional[float] = None,
                  end: Optional[float] = None) -> Dict[int, np.ndarray]:
        """Observation streams for one family, keyed by block."""
        return {profile.key: times
                for profile, times in self.observations(seed, start, end)
                if profile.family is family}

"""Ground-truth outage schedules for the simulated Internet.

Outage behaviour follows the phenomenology the paper (and its prior
work) reports: most blocks see no outage on a given day; blocks that do
mostly see one; durations are a mixture of *short* events (around 5–10
minutes — the class prior systems miss) and *long* events (11 minutes to
hours).  IPv6 blocks are given a higher outage propensity, matching the
paper's Figure 2a finding that the IPv6 outage **rate** (12 %) exceeds
IPv4's (5.5 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..timeline import Timeline, merge_intervals

__all__ = ["OutageModel", "IPV4_OUTAGE_MODEL", "IPV6_OUTAGE_MODEL"]


@dataclass(frozen=True)
class OutageModel:
    """Parameters of the per-block daily outage draw.

    ``outage_probability`` is the chance a block has at least one outage
    in a 24-hour window; given an outage, ``short_fraction`` of events
    are short (lognormal around ~6 min) and the rest long (lognormal
    around ~45 min).  ``extra_event_mean`` adds a Poisson number of
    additional events for flappy blocks.
    """

    outage_probability: float = 0.055
    short_fraction: float = 0.45
    short_log_mean: float = np.log(380.0)
    short_log_sigma: float = 0.35
    long_log_mean: float = np.log(5400.0)
    long_log_sigma: float = 1.0
    extra_event_mean: float = 0.35
    min_duration: float = 120.0
    max_duration: float = 12.0 * 3600.0

    def draw_durations(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` outage durations from the short/long mixture."""
        short_mask = rng.random(count) < self.short_fraction
        durations = np.where(
            short_mask,
            rng.lognormal(self.short_log_mean, self.short_log_sigma, size=count),
            rng.lognormal(self.long_log_mean, self.long_log_sigma, size=count),
        )
        return np.clip(durations, self.min_duration, self.max_duration)

    def draw_timeline(self, rng: np.random.Generator,
                      start: float, end: float) -> Timeline:
        """Draw one block's ground-truth timeline over ``[start, end)``.

        The window is scaled: a 12-hour window halves the chance of
        seeing an outage relative to the daily probability.
        """
        span = end - start
        day_fraction = span / 86400.0
        if rng.random() >= self.outage_probability * day_fraction:
            return Timeline.always_up(start, end)
        count = 1 + rng.poisson(self.extra_event_mean)
        durations = self.draw_durations(rng, count)
        starts = rng.uniform(start, end, size=count)
        intervals: List[Tuple[float, float]] = [
            (float(s), float(min(s + d, end)))
            for s, d in zip(starts, durations)
        ]
        return Timeline(start, end, merge_intervals(intervals))

    def expected_outage_rate(self) -> float:
        """Expected fraction of blocks with >= 1 outage per day."""
        return self.outage_probability


#: Defaults calibrated to the paper's Figure 2a outage rates: ~5.5 % of
#: measurable IPv4 /24s and ~12 % of measurable IPv6 /48s show a
#: >= 10-minute outage on the evaluation day (IPv6 draws are inflated
#: because short events below 10 minutes do not qualify).
IPV4_OUTAGE_MODEL = OutageModel(outage_probability=0.055)
IPV6_OUTAGE_MODEL = OutageModel(outage_probability=0.17,
                                short_fraction=0.35)

"""The simulated Internet: block populations, truth, and traffic.

This is the substrate that replaces the paper's real-world data.  It
holds one :class:`BlockProfile` per simulated edge block (/24 IPv4 or
/48 IPv6) with:

* a mean query rate toward the passive vantage point (B-root), drawn
  from the heavy-tailed dense/sparse mixture;
* an arrival process (Poisson / diurnally modulated / bursty MMPP);
* a ground-truth up/down :class:`~repro.timeline.Timeline` with injected
  short and long outages;
* a set of active addresses that answer (or don't) active probes, so
  Trinocular and RIPE-style comparators observe the *same* truth.

Everything downstream — the passive detector, the active comparators,
and the evaluation — consumes this one object, which is what makes the
confusion-matrix experiments meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..net.addr import Family
from ..net.blocks import Block
from ..timeline import Timeline
from .outages import IPV4_OUTAGE_MODEL, OutageModel
from .rates import RateMixture
from .seasonal import DiurnalPattern
from .sources import (
    mmpp_times,
    modulated_poisson_times,
    poisson_times,
    suppress_intervals,
)

__all__ = ["BlockProfile", "FamilyConfig", "InternetConfig", "SimulatedInternet"]


@dataclass
class BlockProfile:
    """Everything the simulation knows about one edge block."""

    block: Block
    mean_rate: float
    pattern: DiurnalPattern
    arrival_kind: str
    truth: Timeline
    active_addresses: np.ndarray
    probe_response_prob: float
    as_id: int
    visible_to_vantage: bool = True
    #: stray (spoofed / scanning) queries that leak even while down,
    #: exercising the detector's noise term.
    noise_rate: float = 0.0

    @property
    def key(self) -> int:
        """Right-aligned block prefix key."""
        return self.block.prefix

    @property
    def family(self) -> Family:
        return self.block.family


@dataclass
class FamilyConfig:
    """Population parameters for one address family."""

    n_blocks: int
    outage_model: OutageModel
    rate_mixture: RateMixture = field(default_factory=RateMixture)
    #: fraction of existing blocks that route any traffic toward the
    #: passive vantage point (B-root sees only recursive resolvers).
    vantage_visibility: float = 1.0
    mean_diurnal_amplitude: float = 0.25
    bursty_fraction: float = 0.15
    modulated_fraction: float = 0.35
    mean_active_addresses: float = 12.0
    probe_response_mean: float = 0.8
    noise_rate: float = 1.0 / 36000.0  # one stray packet per 10 h


@dataclass
class InternetConfig:
    """Full simulation configuration.

    ``start``/``end`` bound the simulated clock; outages are only
    injected after ``start + training_seconds`` so the leading window is
    clean history the detector can train on.
    """

    start: float = 0.0
    end: float = 2.0 * 86400.0
    training_seconds: float = 86400.0
    seed: int = 42
    n_ases: int = 400
    ipv4: FamilyConfig = field(default_factory=lambda: FamilyConfig(
        n_blocks=4000, outage_model=IPV4_OUTAGE_MODEL))
    ipv6: Optional[FamilyConfig] = None

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("simulation must cover a positive span")
        if self.training_seconds < 0:
            raise ValueError("training_seconds must be non-negative")
        if self.start + self.training_seconds > self.end:
            raise ValueError("training window exceeds the simulation span")

    @property
    def eval_start(self) -> float:
        """First instant at which outages may occur."""
        return self.start + self.training_seconds


def _draw_v4_prefixes(rng: np.random.Generator, count: int,
                      num_providers: int = 0) -> np.ndarray:
    """Distinct /24 keys clustered into provider /16 allocations.

    Real address space is allocated in contiguous ranges, so sibling
    /24s under a /20 or /16 routinely belong to the same network — the
    structure spatial aggregation and regional corroboration rely on.
    Provider /16s get Zipf-weighted shares of the population.
    """
    if num_providers <= 0:
        num_providers = max(8, count // 6)
    providers = np.unique(rng.integers(1 << 8, 224 << 8,
                                       size=num_providers))
    weights = np.arange(1, len(providers) + 1, dtype=float) ** -1.1
    weights /= weights.sum()
    keys = set()
    while len(keys) < count:
        remaining = count - len(keys)
        chosen = rng.choice(providers, size=remaining, p=weights)
        subnets = rng.integers(0, 256, size=remaining)
        for provider, subnet in zip(chosen, subnets):
            keys.add((int(provider) << 8) | int(subnet))
    return np.array(sorted(keys), dtype=np.int64)


def _draw_v6_prefixes(rng: np.random.Generator, count: int,
                      num_providers: int = 120) -> np.ndarray:
    """Distinct /48 keys clustered into provider /32s (2000::/4-ish)."""
    providers = np.unique(rng.integers(0x20010000, 0x3FFF0000,
                                       size=num_providers))
    weights = np.arange(1, len(providers) + 1, dtype=float) ** -1.1
    weights /= weights.sum()
    keys = set()
    while len(keys) < count:
        remaining = count - len(keys)
        chosen = rng.choice(providers, size=remaining, p=weights)
        subnets = rng.integers(0, 1 << 16, size=remaining)
        for provider, subnet in zip(chosen, subnets):
            keys.add((int(provider) << 16) | int(subnet))
    return np.array(sorted(keys), dtype=np.uint64)


class SimulatedInternet:
    """A population of blocks with shared ground truth.

    Build with :meth:`build`; then draw passive observations with
    :meth:`passive_observations` and active-probe responses with
    :meth:`probe`.
    """

    def __init__(self, config: InternetConfig,
                 profiles: List[BlockProfile]) -> None:
        self.config = config
        self.profiles = profiles
        self._by_key: Dict[Tuple[Family, int], BlockProfile] = {
            (p.family, p.key): p for p in profiles
        }
        self._address_index: Dict[Tuple[Family, int], Dict[int, float]] = {}
        for profile in profiles:
            per_address = {}
            for address in profile.active_addresses:
                per_address[int(address)] = profile.probe_response_prob
            self._address_index[(profile.family, profile.key)] = per_address

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, config: InternetConfig) -> "SimulatedInternet":
        """Materialise the population described by ``config``."""
        rng = np.random.default_rng(config.seed)
        profiles: List[BlockProfile] = []
        for family, family_config in ((Family.IPV4, config.ipv4),
                                      (Family.IPV6, config.ipv6)):
            if family_config is None or family_config.n_blocks == 0:
                continue
            profiles.extend(cls._build_family(config, family, family_config, rng))
        return cls(config, profiles)

    @classmethod
    def _build_family(cls, config: InternetConfig, family: Family,
                      family_config: FamilyConfig,
                      rng: np.random.Generator) -> Iterator[BlockProfile]:
        count = family_config.n_blocks
        if family is Family.IPV4:
            prefixes = _draw_v4_prefixes(rng, count)
            prefix_len, span_bits = 24, 8
        else:
            prefixes = _draw_v6_prefixes(rng, count)
            prefix_len, span_bits = 48, 80

        rates = family_config.rate_mixture.draw(rng, count)
        visible = rng.random(count) < family_config.vantage_visibility
        kinds = rng.choice(
            np.array(["poisson", "modulated", "mmpp"], dtype=object),
            size=count,
            p=[1.0 - family_config.modulated_fraction
               - family_config.bursty_fraction,
               family_config.modulated_fraction,
               family_config.bursty_fraction])
        as_ids = cls._draw_as_ids(rng, count, config.n_ases)
        address_counts = 1 + rng.poisson(
            family_config.mean_active_addresses - 1, size=count)

        for index in range(count):
            block = Block(family, int(prefixes[index]), prefix_len)
            truth = family_config.outage_model.draw_timeline(
                rng, config.eval_start, config.end)
            # Expand truth to the full simulated span (training is clean).
            truth = Timeline(config.start, config.end, truth.down_intervals)
            n_addresses = min(int(address_counts[index]),
                              1 << min(span_bits, 16))
            base = int(prefixes[index]) << span_bits
            if span_bits > 63:
                # 2**80 host offsets overflow int64; draw the low 63 bits,
                # which is ample entropy for distinct active addresses.
                offsets = rng.integers(0, 1 << 63, size=n_addresses)
                addresses = np.unique(
                    np.array([base + int(o) for o in offsets], dtype=object))
            else:
                offsets = rng.integers(0, 1 << span_bits, size=n_addresses)
                addresses = np.unique(base + offsets)
            pattern = (DiurnalPattern.draw(
                rng, family_config.mean_diurnal_amplitude)
                if kinds[index] == "modulated" else DiurnalPattern.flat())
            yield BlockProfile(
                block=block,
                mean_rate=float(rates[index]),
                pattern=pattern,
                arrival_kind=str(kinds[index]),
                truth=truth,
                active_addresses=np.asarray(addresses),
                probe_response_prob=float(np.clip(
                    rng.normal(family_config.probe_response_mean, 0.1),
                    0.3, 0.98)),
                as_id=int(as_ids[index]),
                visible_to_vantage=bool(visible[index]),
                noise_rate=family_config.noise_rate,
            )

    @staticmethod
    def _draw_as_ids(rng: np.random.Generator, count: int,
                     n_ases: int) -> np.ndarray:
        """Zipf-ish AS sizes: a few large ASes own many blocks."""
        weights = np.arange(1, n_ases + 1, dtype=float) ** -1.0
        weights /= weights.sum()
        return rng.choice(n_ases, size=count, p=weights)

    # -- lookup --------------------------------------------------------------

    def profile_for(self, family: Family, key: int) -> Optional[BlockProfile]:
        return self._by_key.get((family, key))

    def truth_for(self, family: Family, key: int) -> Optional[Timeline]:
        profile = self.profile_for(family, key)
        return profile.truth if profile else None

    def blocks(self, family: Optional[Family] = None) -> List[Block]:
        return [p.block for p in self.profiles
                if family is None or p.family is family]

    def family_profiles(self, family: Family) -> List[BlockProfile]:
        return [p for p in self.profiles if p.family is family]

    # -- passive side ---------------------------------------------------------

    def arrivals_for(self, profile: BlockProfile,
                     rng: np.random.Generator,
                     start: Optional[float] = None,
                     end: Optional[float] = None) -> np.ndarray:
        """One block's query arrival times toward the vantage point.

        Ground-truth outages suppress arrivals; a trickle of noise
        arrivals is injected during down intervals.
        """
        start = self.config.start if start is None else start
        end = self.config.end if end is None else end
        if not profile.visible_to_vantage:
            return np.empty(0, dtype=float)
        if profile.arrival_kind == "mmpp":
            times = mmpp_times(rng, profile.mean_rate, start, end)
        elif profile.arrival_kind == "modulated":
            times = modulated_poisson_times(
                rng, profile.mean_rate, profile.pattern, start, end)
        else:
            times = poisson_times(rng, profile.mean_rate, start, end)
        down = [(max(s, start), min(e, end))
                for s, e in profile.truth.down_intervals if e > start and s < end]
        times = suppress_intervals(times, down)
        if profile.noise_rate > 0 and down:
            noise_pieces = [poisson_times(rng, profile.noise_rate, s, e)
                            for s, e in down]
            noise = np.concatenate([times] + noise_pieces)
            noise.sort()
            times = noise
        return times

    def passive_observations(
        self, seed: Optional[int] = None,
        start: Optional[float] = None, end: Optional[float] = None,
    ) -> Iterator[Tuple[BlockProfile, np.ndarray]]:
        """Yield ``(profile, sorted arrival times)`` for every visible block.

        A fresh child generator per block keeps draws reproducible and
        independent of iteration order changes elsewhere.
        """
        base_seed = self.config.seed if seed is None else seed
        root = np.random.SeedSequence(base_seed)
        children = root.spawn(len(self.profiles))
        for profile, child in zip(self.profiles, children):
            if not profile.visible_to_vantage:
                continue
            rng = np.random.default_rng(child)
            yield profile, self.arrivals_for(profile, rng, start, end)

    # -- active side ------------------------------------------------------------

    def probe(self, family: Family, address_value: int, time: float,
              rng: np.random.Generator) -> bool:
        """Simulate one active probe (ICMP echo style).

        Responds only when the enclosing block exists, is up at ``time``,
        the address is one of the block's live addresses, and the
        per-probe response draw succeeds.
        """
        key = address_value >> (family.bits - family.default_block_prefix)
        per_address = self._address_index.get((family, key))
        if not per_address:
            return False
        response_prob = per_address.get(int(address_value))
        if response_prob is None:
            return False
        profile = self._by_key[(family, key)]
        if not profile.truth.is_up_at(min(time, profile.truth.end)):
            return False
        return bool(rng.random() < response_prob)

    def probe_block(self, profile: BlockProfile, time: float,
                    rng: np.random.Generator,
                    max_probes: int = 1) -> int:
        """Probe up to ``max_probes`` of a block's live addresses;
        returns the number of responses (stops at the first)."""
        responses = 0
        for address in profile.active_addresses[:max_probes]:
            if self.probe(profile.family, int(address), time, rng):
                responses += 1
                break
        return responses

    def inject_regional_outage(self, family: Family, super_key: int,
                               levels: int, start: float,
                               end: float) -> int:
        """Force an outage interval onto every block under a supernet.

        Models a regional event (power failure, cable cut): all blocks
        whose key collapses to ``super_key`` after dropping ``levels``
        bits go down together over ``[start, end)``.  Must be called
        *before* :meth:`passive_observations` so the injected outage
        suppresses traffic.  Returns the number of blocks affected.
        """
        affected = 0
        for profile in self.family_profiles(family):
            if profile.key >> levels != super_key:
                continue
            profile.truth = Timeline(
                profile.truth.start, profile.truth.end,
                profile.truth.down_intervals + [(start, end)])
            affected += 1
        return affected

    # -- bookkeeping -------------------------------------------------------------

    def truth_outage_rate(self, family: Family,
                          min_duration: float = 0.0) -> float:
        """Fraction of family blocks with >= 1 (long-enough) outage."""
        profiles = self.family_profiles(family)
        if not profiles:
            return 0.0
        hit = sum(bool(p.truth.events(min_duration)) for p in profiles)
        return hit / len(profiles)

    def describe(self) -> str:
        """One-paragraph summary for logs and examples."""
        lines = [f"SimulatedInternet over [{self.config.start}, "
                 f"{self.config.end}) s, seed={self.config.seed}"]
        for family in (Family.IPV4, Family.IPV6):
            profiles = self.family_profiles(family)
            if not profiles:
                continue
            visible = sum(p.visible_to_vantage for p in profiles)
            with_outage = sum(bool(p.truth.events()) for p in profiles)
            lines.append(
                f"  {family.name}: {len(profiles)} blocks "
                f"({visible} visible to vantage), "
                f"{with_outage} with >=1 outage")
        return "\n".join(lines)

"""Dependency-free metrics: counters, gauges, histograms, one registry.

The detector is an always-on service at the ROADMAP's target scale, and
an always-on service whose internals are invisible cannot be operated:
"the monitor is slow" must decompose into ingest lag, per-stage
latency, belief-update throughput, and quarantine churn *without*
attaching a debugger to production.  This module is the vocabulary for
that: a Prometheus-style metrics registry with zero dependencies beyond
the standard library, importable from every layer of the package
(including the ingest side, which must never import the analysis core).

Three metric types, all thread-safe:

* :class:`Counter` — monotone, cumulative (``records_admitted_total``);
* :class:`Gauge` — last-value, may go down (``reorder_buffer_occupancy``);
* :class:`Histogram` — fixed log-spaced buckets plus streaming summary
  statistics (sum, count, min, max) from which quantiles are estimated
  by interpolation, so latency distributions cost O(buckets) memory no
  matter how many observations land.

Metrics are owned by a :class:`MetricsRegistry` and addressed by name
plus optional labels (``belief_updates_total{family="ipv4"}``), with
one child per distinct label combination.  The registry snapshots to a
deterministic JSON document (:meth:`MetricsRegistry.snapshot`), renders
the Prometheus text exposition format (:meth:`MetricsRegistry.
to_prometheus`), and *restores* from a snapshot bit-for-bit
(:meth:`MetricsRegistry.restore`) — which is what lets cumulative
counters ride inside a streaming-detector checkpoint and survive
kill-and-resume.

Instrumentation must cost nothing when unwanted: :data:`NULL_REGISTRY`
is a no-op registry with the same construction API, and every
instrumented hot path either holds a no-op child (method calls that do
nothing) or branches on ``registry.enabled`` before touching a clock.
The benchmark suite pins the no-op overhead of the vectorised belief
pass below noise.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "resolve_registry",
    "log_spaced_buckets",
    "DEFAULT_SECONDS_BUCKETS",
    "render_snapshot",
    "SNAPSHOT_FORMAT",
    "GAUGE_MERGE_POLICIES",
    "diff_snapshots",
    "negate_snapshot",
]

SNAPSHOT_FORMAT = "repro-metrics-v1"

#: How a gauge series folds when another process's snapshot merges in.
#:
#: ``max`` — high-watermark gauges (peak occupancy, furthest watermark):
#: the largest reading from any process is the one an operator wants,
#: and it is the only fold independent of merge order.  ``last`` —
#: freshness gauges (watermark *lag*, clock readings): the most recently
#: delivered value wins, because an old high reading going *down* is
#: exactly the news the gauge exists to carry.
GAUGE_MERGE_POLICIES = ("max", "last")

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def log_spaced_buckets(minimum: float = 1e-6, maximum: float = 1e3,
                       per_decade: int = 3) -> Tuple[float, ...]:
    """Fixed log-spaced histogram bucket upper bounds.

    ``per_decade`` bounds per factor of ten, from ``minimum`` up to and
    including the first bound at or above ``maximum``; rounded to four
    significant digits so the exposition format stays readable.
    """
    if minimum <= 0 or maximum <= minimum:
        raise ValueError("need 0 < minimum < maximum")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    bounds: List[float] = []
    step = int(round(math.log10(minimum) * per_decade))
    while True:
        value = float(f"{10.0 ** (step / per_decade):.4g}")
        bounds.append(value)
        if value >= maximum:
            return tuple(bounds)
        step += 1


#: Default buckets for wall-clock timings: 1µs .. 1000s, 3 per decade.
DEFAULT_SECONDS_BUCKETS = log_spaced_buckets(1e-6, 1e3, 3)


def _quantile_from_buckets(bounds: Sequence[float],
                           bucket_counts: Sequence[int], quantile: float,
                           minimum: Optional[float],
                           maximum: Optional[float]) -> float:
    """Estimate a quantile from cumulative histogram buckets.

    Linear interpolation inside the bucket that crosses the target rank
    (the ``histogram_quantile`` estimate), clamped to the observed
    min/max so a sparse histogram cannot report values outside the data.
    """
    total = sum(bucket_counts)
    if total == 0:
        return float("nan")
    if not 0.0 <= quantile <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    target = quantile * total
    cumulative = 0
    for index, count in enumerate(bucket_counts):
        cumulative += count
        if cumulative >= target and count > 0:
            upper = (bounds[index] if index < len(bounds)
                     else (maximum if maximum is not None else bounds[-1]))
            lower = bounds[index - 1] if index > 0 else 0.0
            fraction = (target - (cumulative - count)) / count
            estimate = lower + (upper - lower) * fraction
            if minimum is not None:
                estimate = max(estimate, minimum)
            if maximum is not None:
                estimate = min(estimate, maximum)
            return estimate
    return maximum if maximum is not None else float(bounds[-1])


class Counter:
    """Monotone cumulative count.  Negative increments are refused."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-value metric; may move in both directions."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value: float = 0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    def set_to_max(self, value: float) -> None:
        """High-watermark update: keep the larger of current and value."""
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> float:
        return self._value


class _HistogramTimer:
    """Context manager observing its own wall-clock duration."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class Histogram:
    """Fixed-bucket histogram with streaming summary statistics.

    Buckets are *upper bounds* with Prometheus ``le`` semantics (a value
    lands in the first bucket whose bound is >= it; anything above the
    last bound lands in the implicit ``+Inf`` bucket).  Quantiles are
    estimated from the bucket counts by linear interpolation, clamped to
    the observed min/max.
    """

    __slots__ = ("_lock", "bounds", "_bucket_counts", "_sum", "_count",
                 "_min", "_max")

    def __init__(self, lock: threading.RLock,
                 bounds: Sequence[float]) -> None:
        cleaned = tuple(float(b) for b in bounds)
        if not cleaned or any(not math.isfinite(b) for b in cleaned):
            raise ValueError("histogram bounds must be finite and non-empty")
        if list(cleaned) != sorted(set(cleaned)):
            raise ValueError("histogram bounds must be strictly increasing")
        self._lock = lock
        self.bounds = cleaned
        self._bucket_counts: List[int] = [0] * (len(cleaned) + 1)
        self._sum = 0.0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        # ``bisect_left`` gives exact Prometheus ``le`` semantics for
        # finite values (an observation exactly on a bound belongs to
        # that bound's bucket).  NaN is the one value it misroutes:
        # every comparison is False, so bisect_left returns 0 and the
        # poison lands in the *smallest* bucket.  Route it to +Inf
        # instead (the only bucket whose ``le`` contract it satisfies
        # vacuously) and keep it out of sum/min/max, where a single
        # NaN would irreversibly poison the streaming statistics.
        if math.isnan(value):
            with self._lock:
                self._bucket_counts[-1] += 1
                self._count += 1
            return
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def time(self) -> _HistogramTimer:
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def minimum(self) -> Optional[float]:
        return self._min

    @property
    def maximum(self) -> Optional[float]:
        return self._max

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else float("nan")

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, ``+Inf`` bucket last."""
        return list(self._bucket_counts)

    def cumulative_counts(self) -> List[int]:
        """Cumulative counts per bound (``le`` semantics), +Inf last."""
        out: List[int] = []
        running = 0
        for count in self._bucket_counts:
            running += count
            out.append(running)
        return out

    def quantile(self, quantile: float) -> float:
        return _quantile_from_buckets(self.bounds, self._bucket_counts,
                                      quantile, self._min, self._max)


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge}


class MetricFamily:
    """One named metric and its labelled children.

    ``labels(**values)`` returns (creating on first use) the child for
    one label combination; a family declared without label names has a
    single default child and proxies the child API (``inc``, ``set``,
    ``observe``, ...) directly, so unlabelled metrics read naturally::

        registry.counter("runs_total").inc()
        registry.counter("hits_total", labelnames=("kind",)) \\
                .labels(kind="exact").inc()
    """

    def __init__(self, name: str, kind: str, help_text: str,
                 labelnames: Tuple[str, ...],
                 lock: threading.RLock,
                 buckets: Optional[Tuple[float, ...]] = None,
                 merge: Optional[str] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = buckets
        #: Gauge fold policy (see :data:`GAUGE_MERGE_POLICIES`); gauges
        #: default to ``max``, other kinds have a fixed additive fold.
        self.merge = (merge or "max") if kind == "gauge" else None
        self._lock = lock
        self._children: Dict[Tuple[str, ...], Any] = {}

    def _make_child(self) -> Any:
        if self.kind == "histogram":
            return Histogram(self._lock, self.buckets or
                             DEFAULT_SECONDS_BUCKETS)
        return _CHILD_TYPES[self.kind](self._lock)

    def labels(self, **labelvalues: Any) -> Any:
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}")
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _default(self) -> Any:
        if self.labelnames:
            raise ValueError(
                f"metric {self.name} is labelled {self.labelnames}; "
                f"address a child via .labels(...)")
        return self.labels()

    # -- unlabelled proxies -------------------------------------------------

    def inc(self, amount: float = 1) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def set_to_max(self, value: float) -> None:
        self._default().set_to_max(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def time(self) -> _HistogramTimer:
        return self._default().time()

    @property
    def value(self) -> float:
        return self._default().value

    def quantile(self, quantile: float) -> float:
        return self._default().quantile(quantile)

    def series(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """(label values, child) pairs, sorted for determinism."""
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """Thread-safe registry of named metric families.

    Registering the same name twice returns the existing family (the
    first help string wins) provided type, label names, and buckets
    agree; a conflicting re-registration raises :class:`ValueError`
    rather than silently forking the series.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, MetricFamily] = {}

    # -- registration -------------------------------------------------------

    def _register(self, name: str, kind: str, help_text: str,
                  labelnames: Iterable[str],
                  buckets: Optional[Sequence[float]] = None,
                  merge: Optional[str] = None) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        names = tuple(str(label) for label in labelnames)
        for label in names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        if merge is not None and merge not in GAUGE_MERGE_POLICIES:
            raise ValueError(
                f"unknown gauge merge policy {merge!r}; "
                f"expected one of {GAUGE_MERGE_POLICIES}")
        bounds = (tuple(float(b) for b in buckets)
                  if buckets is not None else None)
        if bounds is not None:
            # Fail at registration, not at first observation: children
            # are created lazily and a bad bucket spec should not hide
            # until the hot path touches it.
            if not bounds or any(not math.isfinite(b) for b in bounds):
                raise ValueError(
                    "histogram bounds must be finite and non-empty")
            if list(bounds) != sorted(set(bounds)):
                raise ValueError(
                    "histogram bounds must be strictly increasing")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != names or (
                        bounds is not None and family.buckets != bounds) or (
                        merge is not None and family.merge != merge):
                    raise ValueError(
                        f"metric {name} already registered as "
                        f"{family.kind}{family.labelnames}; cannot "
                        f"re-register as {kind}{names}")
                return family
            family = MetricFamily(name, kind, help_text, names, self._lock,
                                  bounds, merge)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = ()) -> MetricFamily:
        return self._register(name, "counter", help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Iterable[str] = (),
              merge: Optional[str] = None) -> MetricFamily:
        return self._register(name, "gauge", help_text, labelnames,
                              merge=merge)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        return self._register(name, "histogram", help_text, labelnames,
                              buckets or DEFAULT_SECONDS_BUCKETS)

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """Current value of one counter/gauge series, or None.

        Strictly read-only: unlike ``get(...).labels(...)`` this never
        registers the family or creates the child, so probing a metric
        (supervisor heartbeat displays, tests, the CLI summary) cannot
        perturb the snapshot it is about to compare.  Histograms have
        no single value and read as None; so do unknown families,
        mismatched label sets, and never-touched label combinations.
        """
        with self._lock:
            family = self._families.get(name)
            if family is None or family.kind == "histogram":
                return None
            if set(labels) != set(family.labelnames):
                return None
            key = tuple(str(labels[label])
                        for label in family.labelnames)
            child = family._children.get(key)
            return None if child is None else child.value

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name]
                    for name in sorted(self._families)]

    # -- snapshot / restore -------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic JSON-able document of every series' value.

        Families sort by name and series by label values, so two
        registries with identical contents produce identical documents
        — the property the checkpoint round-trip tests pin.
        """
        metrics: List[Dict[str, Any]] = []
        with self._lock:
            for family in self.families():
                entry: Dict[str, Any] = {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "label_names": list(family.labelnames),
                }
                if family.kind == "histogram":
                    entry["buckets"] = list(family.buckets or ())
                if family.kind == "gauge":
                    entry["merge"] = family.merge
                series: List[Dict[str, Any]] = []
                for labelvalues, child in family.series():
                    row: Dict[str, Any] = {"labels": list(labelvalues)}
                    if family.kind == "histogram":
                        row["bucket_counts"] = child.bucket_counts()
                        row["sum"] = child.sum
                        row["count"] = child.count
                        row["min"] = child.minimum
                        row["max"] = child.maximum
                    else:
                        row["value"] = child.value
                    series.append(row)
                entry["series"] = series
                metrics.append(entry)
        return {"format": SNAPSHOT_FORMAT, "metrics": metrics}

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Load a snapshot's values, re-registering families as needed.

        Existing children named in the snapshot are *overwritten* (this
        is checkpoint resume, not merging); children absent from the
        snapshot are left untouched.  Counter values restore exactly
        (ints stay ints), so kill-and-resume is bit-for-bit.
        """
        if snapshot.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(
                f"not a {SNAPSHOT_FORMAT} snapshot: "
                f"{snapshot.get('format')!r}")
        for entry in snapshot.get("metrics", []):
            kind = entry["type"]
            labelnames = tuple(entry.get("label_names", ()))
            if kind == "histogram":
                family = self.histogram(entry["name"], entry.get("help", ""),
                                        labelnames,
                                        entry.get("buckets") or None)
            elif kind == "counter":
                family = self.counter(entry["name"], entry.get("help", ""),
                                      labelnames)
            elif kind == "gauge":
                family = self.gauge(entry["name"], entry.get("help", ""),
                                    labelnames, merge=entry.get("merge"))
            else:
                raise ValueError(f"unknown metric type {kind!r}")
            for row in entry.get("series", []):
                child = family.labels(**dict(zip(labelnames, row["labels"])))
                with self._lock:
                    if kind == "histogram":
                        counts = [int(c) for c in row["bucket_counts"]]
                        if len(counts) != len(child.bounds) + 1:
                            raise ValueError(
                                f"snapshot for {entry['name']} has "
                                f"{len(counts)} buckets, metric has "
                                f"{len(child.bounds) + 1}")
                        child._bucket_counts = counts
                        child._sum = float(row["sum"])
                        child._count = int(row["count"])
                        child._min = row.get("min")
                        child._max = row.get("max")
                    else:
                        child._value = row["value"]

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's snapshot *into* this one.

        The parallel pipeline's fold-in path: each worker process runs
        with its own registry and ships a ``repro-metrics-v1`` snapshot
        home, where the parent accumulates them.  Unlike
        :meth:`restore` (which overwrites — checkpoint resume), merging
        is additive and commutative over disjoint work:

        * counters add (negative rows subtract — the rollback path a
          supervisor uses to retract a dead worker's partial fold);
        * histograms add bucket counts, sum, and count, and combine
          min/max;
        * gauges fold per their declared policy (see
          :data:`GAUGE_MERGE_POLICIES`): ``max`` keeps the high
          watermark, ``last`` lets the delivered value win — the fold
          freshness gauges such as watermark lag need, where max would
          pin the series at its worst-ever reading forever.

        The policy travels inside the snapshot (``merge`` on gauge
        entries), so the parent folds correctly even for families it
        first learns about from the wire.  Families absent from this
        registry are registered on the fly, exactly as :meth:`restore`
        does.
        """
        if snapshot.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(
                f"not a {SNAPSHOT_FORMAT} snapshot: "
                f"{snapshot.get('format')!r}")
        for entry in snapshot.get("metrics", []):
            kind = entry["type"]
            labelnames = tuple(entry.get("label_names", ()))
            if kind == "histogram":
                family = self.histogram(entry["name"], entry.get("help", ""),
                                        labelnames,
                                        entry.get("buckets") or None)
            elif kind == "counter":
                family = self.counter(entry["name"], entry.get("help", ""),
                                      labelnames)
            elif kind == "gauge":
                family = self.gauge(entry["name"], entry.get("help", ""),
                                    labelnames, merge=entry.get("merge"))
            else:
                raise ValueError(f"unknown metric type {kind!r}")
            policy = entry.get("merge") or family.merge or "max"
            for row in entry.get("series", []):
                child = family.labels(**dict(zip(labelnames, row["labels"])))
                with self._lock:
                    if kind == "histogram":
                        counts = [int(c) for c in row["bucket_counts"]]
                        if len(counts) != len(child.bounds) + 1:
                            raise ValueError(
                                f"snapshot for {entry['name']} has "
                                f"{len(counts)} buckets, metric has "
                                f"{len(child.bounds) + 1}")
                        child._bucket_counts = [
                            a + b for a, b
                            in zip(child._bucket_counts, counts)]
                        child._sum += float(row["sum"])
                        child._count += int(row["count"])
                        for bound_name, pick in (("min", min), ("max", max)):
                            theirs = row.get(bound_name)
                            if theirs is not None:
                                ours = getattr(child, f"_{bound_name}")
                                setattr(child, f"_{bound_name}",
                                        theirs if ours is None
                                        else pick(ours, theirs))
                    elif kind == "counter":
                        child._value += row["value"]
                    elif policy == "last":
                        child._value = row["value"]
                    else:
                        child._value = max(child._value, row["value"])

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=1)

    # -- exposition ---------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Label names render sorted (with ``le`` always last on histogram
        bucket lines), values escape backslash/quote/newline, and
        histogram buckets are cumulative with a closing ``+Inf``.
        """
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} "
                             f"{_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labelvalues, child in family.series():
                pairs = sorted(zip(family.labelnames, labelvalues))
                if family.kind == "histogram":
                    cumulative = child.cumulative_counts()
                    bounds = [_format_number(b) for b in child.bounds]
                    bounds.append("+Inf")
                    for bound, count in zip(bounds, cumulative):
                        bucket_pairs = pairs + [("le", bound)]
                        lines.append(f"{family.name}_bucket"
                                     f"{_render_labels(bucket_pairs)} "
                                     f"{count}")
                    lines.append(f"{family.name}_sum{_render_labels(pairs)} "
                                 f"{_format_number(child.sum)}")
                    lines.append(f"{family.name}_count"
                                 f"{_render_labels(pairs)} {child.count}")
                else:
                    lines.append(f"{family.name}{_render_labels(pairs)} "
                                 f"{_format_number(child.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(str(value))}"'
                     for name, value in pairs)
    return "{" + inner + "}"


def _format_number(value: Any) -> str:
    number = float(value)
    # Prometheus 0.0.4 spells the non-finite values +Inf/-Inf/NaN; the
    # int() fast path below would raise OverflowError/ValueError on
    # them (observed when a histogram sum went infinite).
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if math.isnan(number):
        return "NaN"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


# -- snapshot arithmetic (the cross-process aggregation plane) --------------


def _series_index(entry: Dict[str, Any]) -> Dict[Tuple[str, ...],
                                                 Dict[str, Any]]:
    return {tuple(row.get("labels", ())): row
            for row in entry.get("series", [])}


def diff_snapshots(current: Dict[str, Any],
                   previous: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """``current - previous`` as a mergeable incremental snapshot.

    This is the heartbeat-piggyback encoding: a worker snapshots its
    registry each heartbeat and ships only the *delta* since the last
    one, so the parent can fold it with :meth:`MetricsRegistry.
    merge_snapshot` without ever double-counting.  Counter values and
    histogram bucket counts / sum / count subtract; gauges always carry
    their current reading (they are last-value, not cumulative — there
    is nothing to subtract).  Series whose cumulative delta is zero are
    dropped, as are families left with no series, so an idle worker's
    heartbeat costs a few bytes.  ``previous=None`` yields ``current``
    itself (the first heartbeat ships the whole state).

    Deltas may legitimately go *negative* — a worker restarted from a
    checkpoint older than its last heartbeat re-counts the replayed
    rows, and the supervisor first retracts the dead incarnation's
    fold — which is why :meth:`merge_snapshot` adds counters without a
    sign check.
    """
    if current.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(
            f"not a {SNAPSHOT_FORMAT} snapshot: {current.get('format')!r}")
    if previous is None:
        return current
    if previous.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(
            f"not a {SNAPSHOT_FORMAT} snapshot: {previous.get('format')!r}")
    before = {entry["name"]: entry
              for entry in previous.get("metrics", [])}
    metrics: List[Dict[str, Any]] = []
    for entry in current.get("metrics", []):
        kind = entry["type"]
        prior = _series_index(before.get(entry["name"], {}))
        series: List[Dict[str, Any]] = []
        for row in entry.get("series", []):
            if kind == "gauge":
                series.append(dict(row))
                continue
            base = prior.get(tuple(row.get("labels", ())))
            if kind == "counter":
                delta = row["value"] - (base["value"] if base else 0)
                if delta:
                    series.append({"labels": list(row["labels"]),
                                   "value": delta})
                continue
            counts = list(row["bucket_counts"])
            if base is not None:
                counts = [a - b for a, b
                          in zip(counts, base["bucket_counts"])]
            if not any(counts):
                continue
            series.append({
                "labels": list(row["labels"]),
                "bucket_counts": counts,
                "sum": row["sum"] - (base["sum"] if base else 0.0),
                "count": row["count"] - (base["count"] if base else 0),
                # Streaming min/max are not invertible; ship the
                # cumulative readings, which min/max-combine correctly.
                "min": row.get("min"),
                "max": row.get("max"),
            })
        if series:
            slim = {key: value for key, value in entry.items()
                    if key != "series"}
            slim["series"] = series
            metrics.append(slim)
    return {"format": SNAPSHOT_FORMAT, "metrics": metrics}


def negate_snapshot(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """A snapshot that, merged in, retracts ``snapshot``'s counts.

    The supervisor's rollback primitive: when a worker dies and
    restarts from a checkpoint, everything its dead incarnation folded
    into the global registry is retracted with the negated accumulation
    before the restarted worker re-reports from its checkpoint state —
    otherwise the replayed stretch would count twice.  Counters and
    histogram counts/sums negate; gauges are dropped (a last-value
    reading cannot be "un-observed" — the next heartbeat refreshes it)
    and so are histogram min/max (not invertible; the global envelope
    stays conservative).
    """
    if snapshot.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(
            f"not a {SNAPSHOT_FORMAT} snapshot: {snapshot.get('format')!r}")
    metrics: List[Dict[str, Any]] = []
    for entry in snapshot.get("metrics", []):
        kind = entry["type"]
        if kind == "gauge":
            continue
        series: List[Dict[str, Any]] = []
        for row in entry.get("series", []):
            if kind == "counter":
                if row["value"]:
                    series.append({"labels": list(row["labels"]),
                                   "value": -row["value"]})
                continue
            counts = [-c for c in row["bucket_counts"]]
            if not any(counts):
                continue
            series.append({
                "labels": list(row["labels"]),
                "bucket_counts": counts,
                "sum": -row["sum"],
                "count": -row["count"],
                "min": None,
                "max": None,
            })
        if series:
            slim = {key: value for key, value in entry.items()
                    if key != "series"}
            slim["series"] = series
            metrics.append(slim)
    return {"format": SNAPSHOT_FORMAT, "metrics": metrics}


# -- the no-op implementation ----------------------------------------------


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


class _NullMetric:
    """Answers the whole child/family API with no-ops."""

    __slots__ = ()

    def labels(self, **labelvalues: Any) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_to_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> _NullTimer:
        return _NULL_TIMER

    @property
    def value(self) -> float:
        return 0

    def quantile(self, quantile: float) -> float:
        return float("nan")


_NULL_TIMER = _NullTimer()
_NULL_METRIC = _NullMetric()


class NullRegistry:
    """Opt-out registry: same construction API, every operation a no-op.

    ``enabled`` is False so hot paths can skip even the clock reads
    that would feed a histogram.  This is the default registry — code
    is instrumented everywhere, and pays nothing until an operator
    swaps in a real :class:`MetricsRegistry`.
    """

    enabled = False

    def counter(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = ()) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help_text: str = "",
              labelnames: Iterable[str] = (),
              merge: Optional[str] = None) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> _NullMetric:
        return _NULL_METRIC

    def get(self, name: str) -> None:
        return None

    def families(self) -> List[MetricFamily]:
        return []

    def value(self, name: str, **labels: Any) -> Optional[float]:
        return None

    def snapshot(self) -> Dict[str, Any]:
        return {"format": SNAPSHOT_FORMAT, "metrics": []}

    def restore(self, snapshot: Dict[str, Any]) -> None:
        pass

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        pass

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=1)

    def to_prometheus(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()

_global_registry: Any = NULL_REGISTRY


def get_registry() -> Any:
    """The process-wide default registry (NULL_REGISTRY until set)."""
    return _global_registry


def set_registry(registry: Optional[Any]) -> Any:
    """Install a process-wide default registry; returns the previous one.

    Pass None to reset to :data:`NULL_REGISTRY`.  Components resolve
    the default at *construction* time, so install the registry before
    building the pipeline/detector it should observe.
    """
    global _global_registry
    previous = _global_registry
    _global_registry = registry if registry is not None else NULL_REGISTRY
    return previous


def resolve_registry(metrics: Optional[Any]) -> Any:
    """``metrics`` if given, else the process-wide default."""
    return metrics if metrics is not None else _global_registry


# -- snapshot rendering (the ``inspect`` subcommand) ------------------------


def render_snapshot(snapshot: Dict[str, Any]) -> str:
    """Human-readable tables from a metrics snapshot document.

    Counters and gauges render as ``name{labels}  value`` lines;
    histograms render as the stage-latency table (count, mean, p50,
    p90, p99, max) the ``inspect`` subcommand promises.
    """
    if snapshot.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(
            f"not a {SNAPSHOT_FORMAT} snapshot: {snapshot.get('format')!r}")
    scalars: List[Tuple[str, str, Any]] = []
    histograms: List[Tuple[str, Dict[str, Any], Dict[str, Any]]] = []
    for entry in snapshot.get("metrics", []):
        labelnames = entry.get("label_names", [])
        for row in entry.get("series", []):
            rendered = _render_labels(
                sorted(zip(labelnames, row.get("labels", []))))
            name = f"{entry['name']}{rendered}"
            if entry["type"] == "histogram":
                histograms.append((name, entry, row))
            else:
                scalars.append((entry["type"], name, row.get("value", 0)))
    lines: List[str] = []
    if scalars:
        lines.append("counters and gauges")
        lines.append("-------------------")
        width = max(len(name) for _, name, _ in scalars)
        for kind, name, value in scalars:
            lines.append(f"  {name:<{width}}  {_format_number(value)}"
                         + ("  (gauge)" if kind == "gauge" else ""))
    if histograms:
        if lines:
            lines.append("")
        lines.append("stage latency (histograms)")
        lines.append("--------------------------")
        header = (f"  {'metric':<44} {'count':>8} {'mean':>10} "
                  f"{'p50':>10} {'p90':>10} {'p99':>10} {'max':>10}")
        lines.append(header)
        for name, entry, row in histograms:
            counts = [int(c) for c in row.get("bucket_counts", [])]
            count = int(row.get("count", 0))
            mean = (float(row.get("sum", 0.0)) / count if count
                    else float("nan"))
            bounds = entry.get("buckets", [])
            quantiles = [
                _quantile_from_buckets(bounds, counts, q,
                                       row.get("min"), row.get("max"))
                for q in (0.5, 0.9, 0.99)]
            maximum = row.get("max")
            cells = [f"{mean:>10.4g}"] + [f"{q:>10.4g}" for q in quantiles]
            cells.append(f"{maximum:>10.4g}" if maximum is not None
                         else f"{'-':>10}")
            lines.append(f"  {name:<44} {count:>8} " + " ".join(cells))
    if not lines:
        lines.append("(empty metrics snapshot)")
    return "\n".join(lines)

"""Observability: metrics, spans, provenance, and the serving plane.

This package sits at the very bottom of the dependency graph — pure
standard library, importable from the ingest layers (telescope, dns)
and the analysis core alike without creating cycles.  See
:mod:`repro.obs.metrics` for counters/gauges/histograms,
:mod:`repro.obs.tracing` for wall-time span trees with cross-process
trace propagation, :mod:`repro.obs.explain` for the decision-provenance
event log, and :mod:`repro.obs.server` for the opt-in HTTP endpoint
that serves all three live.
"""

from .explain import (
    EXPLAIN_FORMAT,
    NULL_EXPLAIN,
    ExplainLog,
    NullExplainLog,
    format_explain,
    get_explain,
    read_explain_jsonl,
    resolve_explain,
    set_explain,
)
from .metrics import (
    DEFAULT_SECONDS_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NullRegistry,
    diff_snapshots,
    get_registry,
    log_spaced_buckets,
    negate_snapshot,
    render_snapshot,
    resolve_registry,
    set_registry,
)
from .server import ObservabilityServer
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanTracer,
    get_tracer,
    resolve_tracer,
    set_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "resolve_registry",
    "log_spaced_buckets",
    "render_snapshot",
    "diff_snapshots",
    "negate_snapshot",
    "DEFAULT_SECONDS_BUCKETS",
    "Span",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "resolve_tracer",
    "EXPLAIN_FORMAT",
    "ExplainLog",
    "NullExplainLog",
    "NULL_EXPLAIN",
    "get_explain",
    "set_explain",
    "resolve_explain",
    "format_explain",
    "read_explain_jsonl",
    "ObservabilityServer",
]

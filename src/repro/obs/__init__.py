"""Observability: metrics registry and span tracing for the detector.

This package sits at the very bottom of the dependency graph — pure
standard library, importable from the ingest layers (telescope, dns)
and the analysis core alike without creating cycles.  See
:mod:`repro.obs.metrics` for counters/gauges/histograms and
:mod:`repro.obs.tracing` for wall-time span trees.
"""

from .metrics import (
    DEFAULT_SECONDS_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    log_spaced_buckets,
    render_snapshot,
    resolve_registry,
    set_registry,
)
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanTracer,
    get_tracer,
    resolve_tracer,
    set_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "resolve_registry",
    "log_spaced_buckets",
    "render_snapshot",
    "DEFAULT_SECONDS_BUCKETS",
    "Span",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "resolve_tracer",
]

"""Decision provenance: *why* did the detector flip this block?

A binary up/down verdict is unaccountable on its own — the confounder
literature (surges that mimic outages, vantage failures that mimic
recoveries) means every onset the detector finalizes must be
reconstructible from evidence after the fact.  This module is the
audit trail: a bounded, thread-safe ring buffer of structured events
recorded *at the moment of decision*, from the same floats the belief
math used — not a post-hoc recomputation that could silently diverge.

Event kinds (the ``event`` field):

* ``transition`` — a streaming bin closed and the block's belief
  crossed a hysteresis threshold.  Carries the bin's evidence (count,
  expected-empty probability), the posterior, and the belief
  trajectory over the deciding bins.  Fused transitions additionally
  carry one row per vantage: reliability weight, observed count, the
  likelihood parameters, the weighted log-likelihood-ratio
  contribution, and the sentinel/quarantine state — summing the
  contributions reproduces the fused update bit-for-bit.
* ``onset`` / ``recovery`` — a finalized outage boundary (what
  ``finalize`` emitted after refinement).
* ``retraction`` — a decision that was withdrawn: the block was
  quarantined and its timeline suppressed.

Events are surfaced three ways: the ``/events`` endpoint
(:mod:`repro.obs.server`), ``repro-outage inspect --explain <block>``
over a JSONL export, and heartbeat piggybacking from partition workers
(:meth:`ExplainLog.events_since` gives the incremental slice, the
monotone ``seq`` makes re-delivery idempotent).

Like the registry and tracer, the explain log is opt-out:
:data:`NULL_EXPLAIN` answers the whole API as a no-op with
``enabled=False``, so the detector hot path pays one attribute load
when provenance is off.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "EXPLAIN_FORMAT",
    "ExplainLog",
    "NullExplainLog",
    "NULL_EXPLAIN",
    "get_explain",
    "set_explain",
    "resolve_explain",
    "format_explain",
    "read_explain_jsonl",
]

EXPLAIN_FORMAT = "repro-explain-v1"

#: Default ring capacity: enough for every decision of a sizeable run
#: while bounding a pathological flapping block to constant memory.
DEFAULT_CAPACITY = 4096


class ExplainLog:
    """Bounded ring of decision events with a monotone sequence.

    ``seq`` increases forever even as old events fall off the ring, so
    an incremental reader (the heartbeat piggyback) can ask "everything
    after N" and re-deliveries are detectable — the idempotence
    contract the cross-process fold relies on.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=self.capacity)
        self._seq = 0

    def record(self, event: Dict[str, Any]) -> int:
        """Append one event; assigns and returns its ``seq``."""
        with self._lock:
            self._seq += 1
            event = dict(event)
            event["seq"] = self._seq
            self._events.append(event)
            return self._seq

    def extend(self, events: Iterable[Dict[str, Any]]) -> int:
        """Fold foreign events (a worker's slice) in; returns count.

        Each event is re-sequenced locally — the caller guards against
        re-delivery with the *sender's* seq before calling.
        """
        count = 0
        for event in events:
            event = dict(event)
            event.pop("seq", None)
            self.record(event)
            count += 1
        return count

    @property
    def last_seq(self) -> int:
        return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def events(self, block: Optional[int] = None) -> List[Dict[str, Any]]:
        """Buffered events in arrival order, optionally for one block."""
        with self._lock:
            events = list(self._events)
        if block is None:
            return events
        return [event for event in events if event.get("block") == block]

    def events_since(self, seq: int) -> List[Dict[str, Any]]:
        """Buffered events with ``seq`` strictly greater than ``seq``."""
        with self._lock:
            return [event for event in self._events
                    if event.get("seq", 0) > seq]

    # -- persistence --------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per line, header line first."""
        lines = [json.dumps({"format": EXPLAIN_FORMAT,
                             "capacity": self.capacity,
                             "last_seq": self.last_seq})]
        for event in self.events():
            lines.append(json.dumps(event, sort_keys=True))
        return "\n".join(lines) + "\n"


def read_explain_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load an explain JSONL export; validates the header line."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"{path} is empty")
    header = json.loads(lines[0])
    if header.get("format") != EXPLAIN_FORMAT:
        raise ValueError(
            f"not a {EXPLAIN_FORMAT} export: {header.get('format')!r}")
    return [json.loads(line) for line in lines[1:]]


class NullExplainLog:
    """Opt-out explain log: every operation a no-op."""

    enabled = False
    capacity = 0
    last_seq = 0

    def record(self, event: Dict[str, Any]) -> int:
        return 0

    def extend(self, events: Iterable[Dict[str, Any]]) -> int:
        return 0

    def __len__(self) -> int:
        return 0

    def events(self, block: Optional[int] = None) -> List[Dict[str, Any]]:
        return []

    def events_since(self, seq: int) -> List[Dict[str, Any]]:
        return []

    def to_jsonl(self) -> str:
        return json.dumps({"format": EXPLAIN_FORMAT, "capacity": 0,
                           "last_seq": 0}) + "\n"


NULL_EXPLAIN = NullExplainLog()

_global_explain: Any = NULL_EXPLAIN


def get_explain() -> Any:
    """The process-wide default explain log (NULL_EXPLAIN until set)."""
    return _global_explain


def set_explain(explain: Optional[Any]) -> Any:
    """Install a process-wide default explain log; returns the previous.

    Pass None to reset to :data:`NULL_EXPLAIN`.  Like the registry and
    tracer defaults, detectors resolve this at construction time.
    """
    global _global_explain
    previous = _global_explain
    _global_explain = explain if explain is not None else NULL_EXPLAIN
    return previous


def resolve_explain(explain: Optional[Any]) -> Any:
    """``explain`` if given, else the process-wide default."""
    return explain if explain is not None else _global_explain


# -- rendering (the ``inspect --explain`` subcommand) ------------------------


def format_explain(events: List[Dict[str, Any]],
                   block: Optional[int] = None) -> str:
    """Human-readable audit trail for one block (or every block).

    Floats render via ``repr`` so the per-source log-likelihood rows
    and their sum are *exactly* the numbers the belief update consumed
    — an auditor can re-add the printed contributions and land on the
    printed total bit-for-bit.
    """
    if block is not None:
        events = [event for event in events if event.get("block") == block]
    if not events:
        return ("(no explain events" +
                (f" for block {block:#x})" if block is not None else ")"))
    lines: List[str] = []
    for event in events:
        kind = event.get("event", "?")
        key = event.get("block")
        head = f"block {key:#x}" if isinstance(key, int) else "block ?"
        if kind == "transition":
            direction = "DOWN" if not event.get("is_up") else "UP"
            lines.append(
                f"{head} t={event.get('time', 0.0):,.1f}s "
                f"transition -> {direction} "
                f"(belief {event.get('belief')!r})")
            sources = event.get("sources")
            if sources:
                total = 0.0
                for row in sources:
                    lines.append(
                        f"    {row.get('source', '?'):<12} "
                        f"weight={row.get('weight')!r} "
                        f"count={row.get('count')} "
                        f"p_empty={row.get('p_empty')!r} "
                        f"noise={row.get('noise')!r} "
                        f"llr={row.get('llr')!r}"
                        + (" [gated]" if row.get("gated") else "")
                        + (" [quarantined]" if row.get("quarantined")
                           else ""))
                    if not row.get("gated"):
                        total += row.get("llr", 0.0)
                lines.append(f"    weighted log-likelihood sum = "
                             f"{event.get('weighted_llr')!r}"
                             + ("" if event.get("weighted_llr") == total
                                else f" (re-added: {total!r})"))
            else:
                lines.append(
                    f"    count={event.get('count')} "
                    f"p_empty={event.get('p_empty')!r}")
            trajectory = event.get("trajectory")
            if trajectory:
                path = " -> ".join(f"{belief:.6g}"
                                   for _, belief in trajectory)
                lines.append(f"    belief trajectory: {path}")
        elif kind in ("onset", "recovery"):
            lines.append(
                f"{head} {kind} at t={event.get('time', 0.0):,.1f}s"
                + (f" (duration {event.get('duration'):,.0f}s)"
                   if event.get("duration") is not None else ""))
        elif kind == "retraction":
            lines.append(
                f"{head} RETRACTED: {event.get('reason', 'unknown')}")
        else:
            lines.append(f"{head} {kind}: {json.dumps(event)}")
    return "\n".join(lines)

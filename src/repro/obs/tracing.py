"""Lightweight span tracing: where does wall-time go inside a run?

Metrics (:mod:`repro.obs.metrics`) answer "how much, how often"; spans
answer "in what order, nested how".  A :class:`SpanTracer` records
wall-clock intervals opened with the :meth:`SpanTracer.span` context
manager::

    with tracer.span("train", family="ipv4"):
        with tracer.span("tune"):
            ...

and exports two views:

* a Chrome-trace JSON document (:meth:`SpanTracer.to_chrome_json`) —
  complete ("X"-phase) events that ``chrome://tracing`` and Perfetto
  render as a nested flame chart, nesting inferred from time
  containment per thread;
* a flat stage-latency table (:meth:`SpanTracer.stage_table`) —
  per-span-name count / total / mean / max, the "where did the seconds
  go" summary the CLI prints.

Like the metrics registry, tracing is opt-out by default: the
:data:`NULL_TRACER` records nothing and its ``span`` is a no-op
context manager, so instrumented code pays one generator frame per
span only when a real tracer is installed.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "resolve_tracer",
]


@dataclass(frozen=True)
class Span:
    """One finished wall-clock interval."""

    name: str
    start: float  #: seconds since the tracer's epoch
    end: float
    thread_id: int
    depth: int    #: nesting depth within its thread (0 = top level)
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanTracer:
    """Collects spans; thread-safe; export to Chrome trace or a table."""

    enabled = True

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self.spans: List[Span] = []

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[None]:
        """Record the wall-time of the enclosed block as one span."""
        stack = self._stack()
        depth = len(stack)
        stack.append(name)
        start = time.perf_counter() - self._epoch
        try:
            yield
        finally:
            end = time.perf_counter() - self._epoch
            stack.pop()
            span = Span(name=name, start=start, end=end,
                        thread_id=threading.get_ident(), depth=depth,
                        args=args)
            with self._lock:
                self.spans.append(span)

    # -- exports ------------------------------------------------------------

    def chrome_trace(self) -> Dict[str, Any]:
        """Chrome-trace document (``chrome://tracing`` / Perfetto).

        Complete events on one pid, one tid per recording thread;
        timestamps in microseconds since the tracer epoch.  Events on
        the same tid nest by time containment, which is exactly how the
        spans were recorded.
        """
        with self._lock:
            spans = list(self.spans)
        events = [
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": os.getpid(),
                "tid": span.thread_id % 1_000_000,
                "args": {key: _jsonable(value)
                         for key, value in span.args.items()},
            }
            for span in sorted(spans, key=lambda s: (s.start, -s.depth))
        ]
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_chrome_json(self) -> str:
        return json.dumps(self.chrome_trace(), indent=1)

    def stage_table(self) -> List[Dict[str, Any]]:
        """Aggregate spans by name: count, total/mean/max seconds.

        Sorted by total descending — the first row is where the run
        spent its time.
        """
        with self._lock:
            spans = list(self.spans)
        rows: Dict[str, Dict[str, Any]] = {}
        for span in spans:
            row = rows.setdefault(span.name, {
                "name": span.name, "count": 0, "total_seconds": 0.0,
                "max_seconds": 0.0})
            row["count"] += 1
            row["total_seconds"] += span.duration
            row["max_seconds"] = max(row["max_seconds"], span.duration)
        for row in rows.values():
            row["mean_seconds"] = row["total_seconds"] / row["count"]
        return sorted(rows.values(),
                      key=lambda row: (-row["total_seconds"], row["name"]))

    def format_stage_table(self) -> str:
        rows = self.stage_table()
        if not rows:
            return "(no spans recorded)"
        lines = [f"  {'stage':<28} {'count':>7} {'total_s':>10} "
                 f"{'mean_s':>10} {'max_s':>10}"]
        for row in rows:
            lines.append(
                f"  {row['name']:<28} {row['count']:>7} "
                f"{row['total_seconds']:>10.4g} "
                f"{row['mean_seconds']:>10.4g} "
                f"{row['max_seconds']:>10.4g}")
        return "\n".join(lines)


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class NullTracer:
    """Opt-out tracer: ``span`` is a do-nothing context manager."""

    enabled = False
    spans: List[Span] = []

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[None]:
        yield

    def chrome_trace(self) -> Dict[str, Any]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def to_chrome_json(self) -> str:
        return json.dumps(self.chrome_trace(), indent=1)

    def stage_table(self) -> List[Dict[str, Any]]:
        return []

    def format_stage_table(self) -> str:
        return "(no spans recorded)"


NULL_TRACER = NullTracer()

_global_tracer: Any = NULL_TRACER


def get_tracer() -> Any:
    """The process-wide default tracer (NULL_TRACER until set)."""
    return _global_tracer


def set_tracer(tracer: Optional[Any]) -> Any:
    """Install a process-wide default tracer; returns the previous one."""
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer if tracer is not None else NULL_TRACER
    return previous


def resolve_tracer(tracer: Optional[Any]) -> Any:
    """``tracer`` if given, else the process-wide default."""
    return tracer if tracer is not None else _global_tracer

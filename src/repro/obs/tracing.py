"""Lightweight span tracing: where does wall-time go inside a run?

Metrics (:mod:`repro.obs.metrics`) answer "how much, how often"; spans
answer "in what order, nested how".  A :class:`SpanTracer` records
wall-clock intervals opened with the :meth:`SpanTracer.span` context
manager::

    with tracer.span("train", family="ipv4"):
        with tracer.span("tune"):
            ...

and exports two views:

* a Chrome-trace JSON document (:meth:`SpanTracer.to_chrome_json`) —
  complete ("X"-phase) events that ``chrome://tracing`` and Perfetto
  render as a nested flame chart, nesting inferred from time
  containment per thread;
* a flat stage-latency table (:meth:`SpanTracer.stage_table`) —
  per-span-name count / total / mean / max, the "where did the seconds
  go" summary the CLI prints.

Runs that cross process boundaries stay one trace: every tracer carries
a **trace id**, the parent stamps its id (plus the dispatching span's
id) into worker payloads via :meth:`SpanTracer.context`, workers build
their tracer with :meth:`SpanTracer.from_context` and ship finished
spans home as plain rows (:meth:`SpanTracer.export_spans`), and the
parent folds them in with :meth:`SpanTracer.import_spans`.  Exported
rows are anchored to the *wall clock*, not the per-process
``perf_counter`` epoch, so parent and child spans land on one shared
timeline; each process keeps its own ``pid`` lane in the Chrome trace.

Like the metrics registry, tracing is opt-out by default: the
:data:`NULL_TRACER` records nothing and its ``span`` is a no-op
context manager, so instrumented code pays one generator frame per
span only when a real tracer is installed.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "Span",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "resolve_tracer",
]


@dataclass(frozen=True)
class Span:
    """One finished wall-clock interval."""

    name: str
    start: float  #: seconds since the tracer's epoch
    end: float
    thread_id: int
    depth: int    #: nesting depth within its thread (0 = top level)
    args: Dict[str, Any] = field(default_factory=dict)
    span_id: int = 0   #: per-tracer ordinal, 0 = unassigned
    pid: int = 0       #: recording process, 0 = this process

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanTracer:
    """Collects spans; thread-safe; export to Chrome trace or a table.

    ``trace_id`` names the distributed trace this tracer belongs to; a
    fresh root tracer mints its own, a worker tracer built via
    :meth:`from_context` inherits the parent's.  ``parent_span_id`` is
    the dispatching span in the parent (0 for a root tracer) — it rides
    into every span's Chrome args so the cross-process nesting is
    recoverable from the merged file.
    """

    enabled = True

    def __init__(self, trace_id: Optional[str] = None,
                 parent_span_id: int = 0) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.parent_span_id = int(parent_span_id)
        self._epoch = time.perf_counter()
        #: Wall-clock reading taken at the same instant as the epoch:
        #: exported spans are rebased onto it so spans recorded in
        #: different processes (different perf_counter origins) land on
        #: one shared timeline.
        self._wall_epoch = time.time()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self.spans: List[Span] = []

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[None]:
        """Record the wall-time of the enclosed block as one span."""
        stack = self._stack()
        depth = len(stack)
        # Ids are allocated at span *start* so a still-open span can be
        # named as the parent in a dispatch context (the whole point of
        # dispatching under a span).
        with self._lock:
            self._next_id += 1
            span_id = self._next_id
        stack.append(span_id)
        start = time.perf_counter() - self._epoch
        try:
            yield
        finally:
            end = time.perf_counter() - self._epoch
            stack.pop()
            span = Span(name=name, start=start, end=end,
                        thread_id=threading.get_ident(), depth=depth,
                        args=args, span_id=span_id)
            with self._lock:
                self.spans.append(span)
            self._local.last_span_id = span_id

    @property
    def last_span_id(self) -> int:
        """Id of the most recently *finished* span on this thread."""
        return getattr(self._local, "last_span_id", 0)

    # -- cross-process propagation ------------------------------------------

    def context(self) -> Dict[str, Any]:
        """Trace context to stamp into a worker dispatch payload.

        The parent span id is the innermost span currently *open* on
        the calling thread if any (the dispatching span), else the last
        finished one, else this tracer's own inherited parent.
        """
        stack = self._stack()
        parent = (stack[-1] if stack
                  else (self.last_span_id or self.parent_span_id))
        return {"trace_id": self.trace_id, "parent_span_id": parent}

    @classmethod
    def from_context(cls, context: Optional[Dict[str, Any]]) -> "SpanTracer":
        """Worker-side constructor: join the parent's trace."""
        if not context:
            return cls()
        return cls(trace_id=str(context.get("trace_id") or "") or None,
                   parent_span_id=int(context.get("parent_span_id", 0)))

    def export_spans(self) -> List[Dict[str, Any]]:
        """Finished spans as JSON-able rows on the wall-clock timeline.

        The return payload a worker ships home; feed it to the parent's
        :meth:`import_spans`.  Rows carry this process's pid and the
        tracer's trace id / parent span id, so the merged trace keeps
        one lane per process and the cross-process edges survive.
        """
        with self._lock:
            spans = list(self.spans)
        return [
            {
                "name": span.name,
                "wall_start": self._wall_epoch + span.start,
                "wall_end": self._wall_epoch + span.end,
                "thread_id": span.thread_id,
                "depth": span.depth,
                "args": {key: _jsonable(value)
                         for key, value in span.args.items()},
                "span_id": span.span_id,
                "pid": os.getpid(),
                "trace_id": self.trace_id,
                "parent_span_id": self.parent_span_id,
            }
            for span in spans
        ]

    def import_spans(self, rows: Optional[Sequence[Dict[str, Any]]]) -> int:
        """Fold a worker's exported spans into this tracer.

        Wall-clock anchors are rebased onto this tracer's epoch, so an
        imported span sorts correctly against locally recorded ones.
        Rows from a different trace id are still imported (the file
        should not silently lose data) but keep their original id in
        ``args`` so the discontinuity is visible.  Returns the number
        of spans imported.
        """
        if not rows:
            return 0
        imported: List[Span] = []
        for row in rows:
            args = dict(row.get("args") or {})
            row_trace = row.get("trace_id")
            if row_trace and row_trace != self.trace_id:
                args["trace_id"] = row_trace
            parent = int(row.get("parent_span_id", 0))
            if parent:
                args.setdefault("parent_span_id", parent)
            imported.append(Span(
                name=str(row["name"]),
                start=float(row["wall_start"]) - self._wall_epoch,
                end=float(row["wall_end"]) - self._wall_epoch,
                thread_id=int(row.get("thread_id", 0)),
                depth=int(row.get("depth", 0)),
                args=args,
                span_id=int(row.get("span_id", 0)),
                pid=int(row.get("pid", 0)),
            ))
        with self._lock:
            self.spans.extend(imported)
        return len(imported)

    # -- exports ------------------------------------------------------------

    def chrome_trace(self) -> Dict[str, Any]:
        """Chrome-trace document (``chrome://tracing`` / Perfetto).

        Complete events, one pid lane per recording process (imported
        worker spans keep theirs), one tid per recording thread;
        timestamps in microseconds since the tracer epoch.  Events on
        the same pid/tid nest by time containment, which is exactly how
        the spans were recorded.  Every event is stamped with the trace
        id, so a merged multi-process file is self-describing.
        """
        with self._lock:
            spans = list(self.spans)
        own_pid = os.getpid()
        events = []
        for span in sorted(spans, key=lambda s: (s.start, -s.depth)):
            args = {key: _jsonable(value)
                    for key, value in span.args.items()}
            args.setdefault("trace_id", self.trace_id)
            if span.span_id:
                args.setdefault("span_id", span.span_id)
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": span.pid or own_pid,
                "tid": span.thread_id % 1_000_000,
                "args": args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "metadata": {"trace_id": self.trace_id}}

    def to_chrome_json(self) -> str:
        return json.dumps(self.chrome_trace(), indent=1)

    def stage_table(self) -> List[Dict[str, Any]]:
        """Aggregate spans by name: count, total/mean/max seconds.

        Sorted by total descending — the first row is where the run
        spent its time.
        """
        with self._lock:
            spans = list(self.spans)
        rows: Dict[str, Dict[str, Any]] = {}
        for span in spans:
            row = rows.setdefault(span.name, {
                "name": span.name, "count": 0, "total_seconds": 0.0,
                "max_seconds": 0.0})
            row["count"] += 1
            row["total_seconds"] += span.duration
            row["max_seconds"] = max(row["max_seconds"], span.duration)
        for row in rows.values():
            row["mean_seconds"] = row["total_seconds"] / row["count"]
        return sorted(rows.values(),
                      key=lambda row: (-row["total_seconds"], row["name"]))

    def format_stage_table(self) -> str:
        rows = self.stage_table()
        if not rows:
            return "(no spans recorded)"
        lines = [f"  {'stage':<28} {'count':>7} {'total_s':>10} "
                 f"{'mean_s':>10} {'max_s':>10}"]
        for row in rows:
            lines.append(
                f"  {row['name']:<28} {row['count']:>7} "
                f"{row['total_seconds']:>10.4g} "
                f"{row['mean_seconds']:>10.4g} "
                f"{row['max_seconds']:>10.4g}")
        return "\n".join(lines)


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class NullTracer:
    """Opt-out tracer: ``span`` is a do-nothing context manager."""

    enabled = False
    spans: List[Span] = []
    trace_id = ""
    parent_span_id = 0

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[None]:
        yield

    def context(self) -> Dict[str, Any]:
        return {}

    def export_spans(self) -> List[Dict[str, Any]]:
        return []

    def import_spans(self, rows: Optional[Sequence[Dict[str, Any]]]) -> int:
        return 0

    def chrome_trace(self) -> Dict[str, Any]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def to_chrome_json(self) -> str:
        return json.dumps(self.chrome_trace(), indent=1)

    def stage_table(self) -> List[Dict[str, Any]]:
        return []

    def format_stage_table(self) -> str:
        return "(no spans recorded)"


NULL_TRACER = NullTracer()

_global_tracer: Any = NULL_TRACER


def get_tracer() -> Any:
    """The process-wide default tracer (NULL_TRACER until set)."""
    return _global_tracer


def set_tracer(tracer: Optional[Any]) -> Any:
    """Install a process-wide default tracer; returns the previous one."""
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer if tracer is not None else NULL_TRACER
    return previous


def resolve_tracer(tracer: Optional[Any]) -> Any:
    """``tracer`` if given, else the process-wide default."""
    return tracer if tracer is not None else _global_tracer

"""Pull-based observability endpoint: the run, readable over HTTP.

The telemetry core (:mod:`repro.obs.metrics`, :mod:`repro.obs.tracing`,
:mod:`repro.obs.explain`) is deliberately pull-snapshot shaped — no
background flusher, no export interval.  This module is the one place
that shape is *served*: an opt-in, stdlib-only
:class:`~http.server.ThreadingHTTPServer` that renders whatever the
run's registry/tracer/explain log currently hold, on demand, from a
daemon thread.  Nothing is pushed and nothing is buffered here; a
scrape observes exactly the state a checkpoint would have embedded at
that instant.

Endpoints (all GET):

* ``/metrics`` — Prometheus text exposition (version 0.0.4);
* ``/metrics.json`` — the ``repro-metrics-v1`` snapshot document;
* ``/health`` — liveness document shaped like a
  :class:`~repro.core.health.RunHealthReport` dict, extended by the
  partitioned-live supervisor with per-partition status and watermark
  lag;
* ``/trace`` — the Chrome trace-event document assembled so far
  (parent and imported worker spans under one trace id);
* ``/events`` — the decision-provenance explain log
  (``repro-explain-v1``).

The server is wired behind ``--obs-port`` on ``detect``/``live``/
``experiment``; port 0 binds an ephemeral port (tests, and operators
who let the supervisor pick) and the bound port is reported via
:attr:`ObservabilityServer.port`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional

from .explain import EXPLAIN_FORMAT, NULL_EXPLAIN
from .metrics import NULL_REGISTRY
from .tracing import NULL_TRACER

__all__ = ["ObservabilityServer"]

#: Content type the Prometheus scraper expects for the text format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _ObsHandler(BaseHTTPRequestHandler):
    """Renders the owning server's telemetry objects; never logs."""

    server: "ObservabilityServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:
        pass  # a scrape every second must not spam the operator's tty

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, document: Dict[str, Any]) -> None:
        self._send(200, json.dumps(document, indent=1).encode("utf-8"),
                   "application/json")

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        obs = self.server
        path = self.path.split("?", 1)[0]
        endpoint = {
            "/metrics": "metrics", "/metrics.json": "metrics_json",
            "/health": "health", "/trace": "trace", "/events": "events",
        }.get(path)
        obs.requests_seen.labels(
            endpoint=endpoint or "unknown").inc()
        obs.scrape_started()
        try:
            if endpoint == "metrics":
                self._send(200, obs.registry.to_prometheus().encode("utf-8"),
                           PROMETHEUS_CONTENT_TYPE)
            elif endpoint == "metrics_json":
                self._send_json(obs.registry.snapshot())
            elif endpoint == "health":
                self._send_json(obs.health_document())
            elif endpoint == "trace":
                self._send_json(obs.tracer.chrome_trace())
            elif endpoint == "events":
                self._send_json({"format": EXPLAIN_FORMAT,
                                 "events": obs.explain.events()})
            else:
                self._send(404, b"not found: try /metrics, /metrics.json, "
                                b"/health, /trace, /events\n", "text/plain")
        except BrokenPipeError:
            pass  # scraper went away mid-response; nothing to salvage
        finally:
            obs.scrape_finished()


class ObservabilityServer(ThreadingHTTPServer):
    """Serve one run's telemetry objects over HTTP from a daemon thread.

    The registry/tracer/explain objects are held by reference — the
    server renders their *live* state per request, it does not copy or
    subscribe.  ``health_provider`` is a zero-argument callable
    returning the ``/health`` document; the partitioned-live supervisor
    installs one that reports per-partition status and watermark lag,
    other commands leave the minimal default (process liveness).
    """

    daemon_threads = True

    def __init__(self, port: int = 0, host: str = "127.0.0.1",
                 registry: Any = None, tracer: Any = None,
                 explain: Any = None,
                 health_provider: Optional[
                     Callable[[], Dict[str, Any]]] = None) -> None:
        super().__init__((host, port), _ObsHandler)
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.explain = explain if explain is not None else NULL_EXPLAIN
        self.health_provider = health_provider
        #: Scrape traffic is itself telemetry: which endpoints are hit,
        #: how often, folds into the same registry it serves.
        self.requests_seen = self.registry.counter(
            "obs_http_requests_total",
            "observability endpoint requests served",
            labelnames=("endpoint",))
        self._thread: Optional[threading.Thread] = None
        #: in-flight scrape accounting for :meth:`stop`'s drain — a
        #: scrape that already entered ``do_GET`` finishes its response
        #: before the socket is torn down.
        self._inflight = 0
        self._inflight_cv = threading.Condition()

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def health_document(self) -> Dict[str, Any]:
        if self.health_provider is not None:
            return self.health_provider()
        return {"status": "alive", "run": None}

    def start(self) -> "ObservabilityServer":
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="obs-server", daemon=True)
        self._thread.start()
        return self

    def scrape_started(self) -> None:
        with self._inflight_cv:
            self._inflight += 1

    def scrape_finished(self) -> None:
        with self._inflight_cv:
            self._inflight -= 1
            if self._inflight == 0:
                self._inflight_cv.notify_all()

    @property
    def inflight(self) -> int:
        with self._inflight_cv:
            return self._inflight

    def stop(self, drain_s: float = 5.0) -> None:
        """Stop accepting, drain in-flight scrapes, release the port.

        ``shutdown`` only stops the accept loop; handler threads may
        still be mid-response (daemon threads — a bare ``server_close``
        would yank their socket).  Wait up to ``drain_s`` for the
        in-flight count to reach zero before closing, so an operator's
        final scrape completes and the port is provably free on return.
        """
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._inflight_cv:
            self._inflight_cv.wait_for(lambda: self._inflight == 0,
                                       timeout=drain_s)
        self.server_close()

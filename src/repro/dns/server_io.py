"""Asyncio UDP front-end for the root server + passive tap.

Everything else in the repository drives the pipeline from simulated or
recorded streams; this module is the live path: a datagram endpoint
that answers DNS queries with :class:`~repro.dns.rootserver.RootServer`
and *taps* every request as a passive observation — the exact coupling
the paper's vantage point has (the detector is a bump in the wire of a
production service).

The tap is a plain callable so it can feed a
:class:`~repro.core.detector.StreamingDetector`, a
:class:`~repro.telescope.capture.CaptureWriter`, or both.

Only UDP is implemented: at a root server UDP carries the overwhelming
majority of queries, and the passive signal needs arrival events, not
connection state.
"""

from __future__ import annotations

import asyncio
import time as time_module
from typing import Callable, Optional, Tuple

from ..net.addr import parse_address
from ..telescope.records import Observation
from .message import Message
from .name import DnsError
from .rootserver import RootServer

__all__ = ["ObservationTap", "UdpRootServer", "udp_query"]

#: Signature of a passive tap: called once per decodable request.
ObservationTap = Callable[[Observation], None]


class _RootProtocol(asyncio.DatagramProtocol):
    """Datagram glue between the event loop and the zone logic."""

    def __init__(self, server: "UdpRootServer") -> None:
        self._server = server
        self._transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:
        self._transport = transport

    def datagram_received(self, data: bytes, peer: Tuple) -> None:
        response = self._server.handle_datagram(data, peer)
        if response is not None and self._transport is not None:
            self._transport.sendto(response, peer)


class UdpRootServer:
    """A live UDP root-like name server with a passive observation tap.

    Usage::

        server = UdpRootServer(RootServer(zone), tap=detector_feed)
        await server.start(host="127.0.0.1", port=0)
        ...
        await server.stop()
    """

    def __init__(self, engine: RootServer,
                 tap: Optional[ObservationTap] = None,
                 clock: Callable[[], float] = time_module.time) -> None:
        self.engine = engine
        self.tap = tap
        self.clock = clock
        self.datagrams_received = 0
        self.datagrams_dropped = 0
        #: undecodable datagrams, by cause — a rising malformed count is
        #: an operational signal (scanner, corruption on the path, or a
        #: broken resolver), distinct from ordinary drops.
        self.malformed_datagrams = 0
        self.last_malformed_error: Optional[str] = None
        self._transport: Optional[asyncio.DatagramTransport] = None

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving; ``port=0`` picks a free port."""
        if self._transport is not None:
            raise RuntimeError("server already started")
        loop = asyncio.get_running_loop()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _RootProtocol(self), local_addr=(host, port))

    @property
    def bound_address(self) -> Tuple[str, int]:
        """The (host, port) actually bound (after :meth:`start`)."""
        if self._transport is None:
            raise RuntimeError("server not started")
        sockname = self._transport.get_extra_info("sockname")
        return sockname[0], sockname[1]

    async def stop(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    # -- datagram path ------------------------------------------------------

    def handle_datagram(self, data: bytes,
                        peer: Tuple) -> Optional[bytes]:
        """Decode, tap, answer.  Returns response bytes or None (drop)."""
        self.datagrams_received += 1
        arrival = self.clock()
        qtype = 0
        try:
            request = Message.decode(data)
            if request.questions:
                qtype = request.questions[0].qtype
        except DnsError as error:
            self.datagrams_dropped += 1
            self.malformed_datagrams += 1
            self.last_malformed_error = str(error)
            return None
        if self.tap is not None:
            family, value = parse_address(peer[0])
            self.tap(Observation(arrival, family, value, qtype))
        response = self.engine.respond(request)
        return response.encode() if response is not None else None

    def stats(self) -> dict:
        """Operational counters for dashboards and health checks."""
        return {
            "datagrams_received": self.datagrams_received,
            "datagrams_dropped": self.datagrams_dropped,
            "malformed_datagrams": self.malformed_datagrams,
            "last_malformed_error": self.last_malformed_error,
        }


class _ClientProtocol(asyncio.DatagramProtocol):
    def __init__(self, future: "asyncio.Future[bytes]") -> None:
        self._future = future

    def datagram_received(self, data: bytes, peer: Tuple) -> None:
        if not self._future.done():
            self._future.set_result(data)

    def error_received(self, exc: Exception) -> None:
        if not self._future.done():
            self._future.set_exception(exc)


async def udp_query(host: str, port: int, request: Message,
                    timeout: float = 2.0, retries: int = 2,
                    backoff: float = 2.0) -> Message:
    """Send one query over UDP and await the decoded response.

    UDP gives no delivery guarantee, so a lost datagram must not hang
    the caller forever: each attempt waits ``timeout * backoff**attempt``
    seconds, the request is retransmitted up to ``retries`` times
    (datagrams are idempotent queries), and the final failure raises
    :class:`asyncio.TimeoutError` naming the attempt count.
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if backoff < 1.0:
        raise ValueError("backoff must be >= 1.0")
    loop = asyncio.get_running_loop()
    future: "asyncio.Future[bytes]" = loop.create_future()
    transport, _ = await loop.create_datagram_endpoint(
        lambda: _ClientProtocol(future), remote_addr=(host, port))
    payload = request.encode()
    try:
        attempts = retries + 1
        for attempt in range(attempts):
            transport.sendto(payload)
            done, _ = await asyncio.wait(
                {future}, timeout=timeout * backoff ** attempt)
            if done:
                return Message.decode(future.result())
        raise asyncio.TimeoutError(
            f"no response from {host}:{port} after {attempts} attempts "
            f"(base timeout {timeout}s, backoff x{backoff})")
    finally:
        if not future.done():
            future.cancel()
        transport.close()

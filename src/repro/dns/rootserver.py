"""A B-root-like authoritative root name server.

The passive detector's vantage point is a root DNS service: every
recursive resolver on the Internet occasionally asks it for TLD
delegations, and those arrivals are the passive signal.  This module
implements the server side — a small authoritative engine over a
synthetic root zone — so the simulation closes the loop: client blocks
emit queries, the server answers (referral, NXDOMAIN, ...), and the
telescope records the request stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .message import Header, Message, QClass, QType, RCode, ResourceRecord
from .name import DnsError, Name, ROOT

__all__ = ["Delegation", "RootZone", "RootServer", "ServerStats"]


@dataclass
class Delegation:
    """One TLD delegation: NS names plus their glue addresses."""

    tld: Name
    nameservers: List[Name]
    glue_v4: Dict[Name, int] = field(default_factory=dict)
    glue_v6: Dict[Name, int] = field(default_factory=dict)


class RootZone:
    """The synthetic root zone: a map of TLD -> delegation plus the SOA."""

    def __init__(self) -> None:
        self._delegations: Dict[Name, Delegation] = {}

    def add_delegation(self, delegation: Delegation) -> None:
        if len(delegation.tld) != 1:
            raise ValueError(f"TLD must be a single label: {delegation.tld}")
        self._delegations[delegation.tld] = delegation

    def delegation_for(self, name: Name) -> Optional[Delegation]:
        """Find the delegation covering ``name`` (by its last label)."""
        if not name.labels:
            return None
        return self._delegations.get(Name(name.labels[-1:]))

    def __len__(self) -> int:
        return len(self._delegations)

    @classmethod
    def synthetic(cls, tlds: Sequence[str]) -> "RootZone":
        """Build a zone with two nameservers + glue per TLD."""
        zone = cls()
        for index, tld in enumerate(tlds):
            tld_name = Name.parse(tld)
            ns_names = [Name.parse(f"{letter}.nic.{tld}") for letter in "ab"]
            glue_v4 = {
                ns: (192 << 24) | (175 << 16) | (index << 4) | i
                for i, ns in enumerate(ns_names)
            }
            glue_v6 = {
                ns: (0x2001_0500 << 96) | (index << 16) | i
                for i, ns in enumerate(ns_names)
            }
            zone.add_delegation(Delegation(tld_name, ns_names, glue_v4, glue_v6))
        return zone


@dataclass
class ServerStats:
    """Counters a real root operator would export."""

    queries: int = 0
    referrals: int = 0
    nxdomain: int = 0
    formerr: int = 0
    notimp: int = 0
    apex_answers: int = 0

    def total_responses(self) -> int:
        return (self.referrals + self.nxdomain + self.formerr
                + self.notimp + self.apex_answers)


class RootServer:
    """Authoritative responder over a :class:`RootZone`.

    ``handle_wire`` is the full path (decode request bytes, encode
    response bytes); ``respond`` works on parsed messages for callers
    that skip serialisation.
    """

    #: SOA RDATA is static for the simulation; content is irrelevant to
    #: the outage pipeline but keeps responses structurally complete.
    _SOA_RDATA = b"\x01a\x0croot-servers\x03net\x00" \
                 b"\x05nstld\x08verisign\x03grs\x03com\x00" \
                 b"\x78\x68\x33\x05\x00\x00\x07\x08\x00\x00\x03\x84" \
                 b"\x00\x09\x3a\x80\x00\x01\x51\x80"

    def __init__(self, zone: RootZone) -> None:
        self.zone = zone
        self.stats = ServerStats()

    def handle_wire(self, request_bytes: bytes) -> Optional[bytes]:
        """Decode, answer, and re-encode; None when the input is garbage
        that a real server would drop rather than answer."""
        try:
            request = Message.decode(request_bytes)
        except DnsError:
            self.stats.formerr += 1
            return None
        response = self.respond(request)
        return response.encode() if response is not None else None

    def respond(self, request: Message) -> Optional[Message]:
        """Produce the authoritative response for a parsed request."""
        self.stats.queries += 1
        if request.header.is_response or not request.questions:
            self.stats.formerr += 1
            return self._error(request, RCode.FORMERR)
        if request.header.opcode != 0:
            self.stats.notimp += 1
            return self._error(request, RCode.NOTIMP)

        question = request.questions[0]
        if question.qclass not in (QClass.IN, QClass.ANY):
            self.stats.notimp += 1
            return self._error(request, RCode.NOTIMP)

        if question.name == ROOT:
            return self._apex_answer(request)

        delegation = self.zone.delegation_for(question.name)
        if delegation is None:
            self.stats.nxdomain += 1
            response = self._error(request, RCode.NXDOMAIN)
            response.authority.append(
                ResourceRecord(ROOT, QType.SOA, QClass.IN, 86400, self._SOA_RDATA))
            return response
        return self._referral(request, delegation)

    def _base_response(self, request: Message) -> Message:
        header = Header(
            txid=request.header.txid,
            is_response=True,
            authoritative=True,
            recursion_desired=request.header.recursion_desired,
        )
        return Message(header=header, questions=list(request.questions[:1]))

    def _error(self, request: Message, rcode: int) -> Message:
        response = self._base_response(request)
        response.header.rcode = rcode
        response.header.authoritative = rcode != RCode.NOTIMP
        return response

    def _apex_answer(self, request: Message) -> Message:
        """Answer queries for the root apex itself (SOA/NS)."""
        self.stats.apex_answers += 1
        response = self._base_response(request)
        qtype = request.questions[0].qtype
        if qtype in (QType.SOA, QType.ANY):
            response.answers.append(
                ResourceRecord(ROOT, QType.SOA, QClass.IN, 86400, self._SOA_RDATA))
        if qtype in (QType.NS, QType.ANY):
            for letter in "abcdefghijklm":
                rdata = bytearray()
                Name.parse(f"{letter}.root-servers.net").encode(rdata, None)
                response.answers.append(
                    ResourceRecord(ROOT, QType.NS, QClass.IN, 518400, bytes(rdata)))
        return response

    def _referral(self, request: Message, delegation: Delegation) -> Message:
        """A classic root referral: NS in authority, glue in additional."""
        self.stats.referrals += 1
        response = self._base_response(request)
        response.header.authoritative = False  # referrals are not AA
        for ns_name in delegation.nameservers:
            response.authority.append(ResourceRecord.ns(delegation.tld, ns_name))
            if ns_name in delegation.glue_v4:
                response.additional.append(
                    ResourceRecord.a(ns_name, delegation.glue_v4[ns_name]))
            if ns_name in delegation.glue_v6:
                response.additional.append(
                    ResourceRecord.aaaa(ns_name, delegation.glue_v6[ns_name]))
        return response

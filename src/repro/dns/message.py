"""DNS message wire format: header, questions, resource records.

A compact but real RFC 1035 codec.  The simulated B-root service speaks
this format end-to-end: clients encode query messages, the server
decodes them, and the telescope's capture layer can carry either the raw
wire bytes or the pre-parsed observation tuple.

Only the record types the root zone actually serves (NS, A, AAAA, SOA)
carry typed RDATA; anything else round-trips as opaque bytes, which is
the honest behaviour for a passive observer.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .name import DnsError, Name

__all__ = ["QType", "QClass", "RCode", "Opcode", "Question", "ResourceRecord",
           "Header", "Message"]

_HEADER = struct.Struct("!HHHHHH")


class QType(enum.IntEnum):
    """Query/record types seen at a root server."""

    A = 1
    NS = 2
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    SRV = 33
    DS = 43
    DNSKEY = 48
    ANY = 255


class QClass(enum.IntEnum):
    IN = 1
    CH = 3
    ANY = 255


class Opcode(enum.IntEnum):
    QUERY = 0
    NOTIFY = 4
    UPDATE = 5


class RCode(enum.IntEnum):
    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


@dataclass(frozen=True)
class Question:
    """One question-section entry."""

    name: Name
    qtype: int
    qclass: int = QClass.IN

    def encode(self, buffer: bytearray, compression: Dict) -> None:
        self.name.encode(buffer, compression)
        buffer.extend(struct.pack("!HH", self.qtype, self.qclass))

    @classmethod
    def decode(cls, data: bytes, offset: int) -> Tuple["Question", int]:
        name, offset = Name.decode(data, offset)
        if offset + 4 > len(data):
            raise DnsError("truncated question")
        qtype, qclass = struct.unpack_from("!HH", data, offset)
        return cls(name, qtype, qclass), offset + 4


@dataclass(frozen=True)
class ResourceRecord:
    """One answer/authority/additional record with opaque RDATA bytes."""

    name: Name
    rtype: int
    rclass: int
    ttl: int
    rdata: bytes

    def encode(self, buffer: bytearray, compression: Dict) -> None:
        self.name.encode(buffer, compression)
        buffer.extend(struct.pack("!HHIH", self.rtype, self.rclass,
                                  self.ttl, len(self.rdata)))
        buffer.extend(self.rdata)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> Tuple["ResourceRecord", int]:
        name, offset = Name.decode(data, offset)
        if offset + 10 > len(data):
            raise DnsError("truncated resource record")
        rtype, rclass, ttl, rdlen = struct.unpack_from("!HHIH", data, offset)
        offset += 10
        if offset + rdlen > len(data):
            raise DnsError("RDATA runs past end of message")
        rdata = bytes(data[offset:offset + rdlen])
        return cls(name, rtype, rclass, ttl, rdata), offset + rdlen

    @classmethod
    def ns(cls, owner: Name, nsdname: Name, ttl: int = 518400) -> "ResourceRecord":
        """Build an NS record (RDATA is an uncompressed name)."""
        rdata = bytearray()
        nsdname.encode(rdata, compression=None)
        return cls(owner, QType.NS, QClass.IN, ttl, bytes(rdata))

    @classmethod
    def a(cls, owner: Name, address_value: int, ttl: int = 518400) -> "ResourceRecord":
        """Build an A record from a 32-bit address integer."""
        return cls(owner, QType.A, QClass.IN, ttl, struct.pack("!I", address_value))

    @classmethod
    def aaaa(cls, owner: Name, address_value: int, ttl: int = 518400) -> "ResourceRecord":
        """Build an AAAA record from a 128-bit address integer."""
        return cls(owner, QType.AAAA, QClass.IN, ttl,
                   address_value.to_bytes(16, "big"))


@dataclass
class Header:
    """The 12-byte DNS header."""

    txid: int = 0
    is_response: bool = False
    opcode: int = Opcode.QUERY
    authoritative: bool = False
    truncated: bool = False
    recursion_desired: bool = False
    recursion_available: bool = False
    rcode: int = RCode.NOERROR

    def flags(self) -> int:
        value = (int(self.is_response) << 15) | ((self.opcode & 0xF) << 11)
        value |= int(self.authoritative) << 10
        value |= int(self.truncated) << 9
        value |= int(self.recursion_desired) << 8
        value |= int(self.recursion_available) << 7
        value |= self.rcode & 0xF
        return value

    @classmethod
    def from_flags(cls, txid: int, flags: int) -> "Header":
        return cls(
            txid=txid,
            is_response=bool(flags >> 15),
            opcode=(flags >> 11) & 0xF,
            authoritative=bool((flags >> 10) & 1),
            truncated=bool((flags >> 9) & 1),
            recursion_desired=bool((flags >> 8) & 1),
            recursion_available=bool((flags >> 7) & 1),
            rcode=flags & 0xF,
        )


@dataclass
class Message:
    """A full DNS message (header + four sections)."""

    header: Header = field(default_factory=Header)
    questions: List[Question] = field(default_factory=list)
    answers: List[ResourceRecord] = field(default_factory=list)
    authority: List[ResourceRecord] = field(default_factory=list)
    additional: List[ResourceRecord] = field(default_factory=list)

    def encode(self) -> bytes:
        """Serialise to wire bytes with name compression."""
        buffer = bytearray()
        buffer.extend(_HEADER.pack(
            self.header.txid, self.header.flags(),
            len(self.questions), len(self.answers),
            len(self.authority), len(self.additional)))
        compression: Dict = {}
        for question in self.questions:
            question.encode(buffer, compression)
        for section in (self.answers, self.authority, self.additional):
            for record in section:
                record.encode(buffer, compression)
        return bytes(buffer)

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        """Parse wire bytes; raises :class:`DnsError` on malformed input."""
        if len(data) < _HEADER.size:
            raise DnsError("message shorter than header")
        txid, flags, qdcount, ancount, nscount, arcount = _HEADER.unpack_from(data, 0)
        message = cls(header=Header.from_flags(txid, flags))
        offset = _HEADER.size
        for _ in range(qdcount):
            question, offset = Question.decode(data, offset)
            message.questions.append(question)
        for count, section in ((ancount, message.answers),
                               (nscount, message.authority),
                               (arcount, message.additional)):
            for _ in range(count):
                record, offset = ResourceRecord.decode(data, offset)
                section.append(record)
        return message

    @classmethod
    def query(cls, name: Name, qtype: int, txid: int,
              recursion_desired: bool = False) -> "Message":
        """Build a standard query message."""
        header = Header(txid=txid, recursion_desired=recursion_desired)
        return cls(header=header, questions=[Question(name, qtype)])

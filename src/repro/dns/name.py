"""DNS domain-name wire encoding and decoding.

Implements RFC 1035 label sequences, including message compression
pointers on decode (and optional pointer emission on encode via a shared
compression table).  The passive pipeline decodes query names from the
simulated B-root packet stream, so the decoder is written defensively:
pointer loops, over-long names, and truncated buffers raise
:class:`DnsError` instead of looping or over-reading.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["DnsError", "Name", "ROOT"]

MAX_LABEL = 63
MAX_NAME = 255
_POINTER_MASK = 0xC0


class DnsError(ValueError):
    """Raised on malformed DNS wire data or invalid names."""


class Name:
    """An absolute DNS name as a tuple of byte labels (root = no labels).

    Names compare and hash case-insensitively, as the DNS requires.
    """

    __slots__ = ("labels",)

    def __init__(self, labels: Tuple[bytes, ...] = ()):
        total = 0
        for label in labels:
            if not label:
                raise DnsError("empty interior label")
            if len(label) > MAX_LABEL:
                raise DnsError(f"label too long: {len(label)} bytes")
            total += len(label) + 1
        if total + 1 > MAX_NAME:
            raise DnsError(f"name too long: {total + 1} bytes")
        self.labels = tuple(label.lower() for label in labels)

    @classmethod
    def parse(cls, text: str) -> "Name":
        """Parse presentation format; a lone ``"."`` is the root."""
        text = text.rstrip(".")
        if not text:
            return cls(())
        return cls(tuple(part.encode("ascii") for part in text.split(".")))

    def __str__(self) -> str:
        if not self.labels:
            return "."
        return ".".join(label.decode("ascii", "replace") for label in self.labels) + "."

    def __repr__(self) -> str:
        return f"Name.parse({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Name) and self.labels == other.labels

    def __hash__(self) -> int:
        return hash(self.labels)

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def tld(self) -> Optional[bytes]:
        """The top-level label, or None for the root name."""
        return self.labels[-1] if self.labels else None

    def parent(self) -> "Name":
        """The name with the leftmost label removed (root's parent is root)."""
        return Name(self.labels[1:]) if self.labels else self

    def is_subdomain_of(self, other: "Name") -> bool:
        """True when ``other`` is a suffix of this name (or equal)."""
        if len(other.labels) > len(self.labels):
            return False
        return self.labels[len(self.labels) - len(other.labels):] == other.labels

    def encode(
        self,
        buffer: bytearray,
        compression: Optional[Dict[Tuple[bytes, ...], int]] = None,
    ) -> None:
        """Append the wire form to ``buffer``.

        With a ``compression`` table, known suffixes are emitted as
        pointers and new suffixes are registered (when their offset fits
        in 14 bits), matching how real servers pack responses.
        """
        labels = self.labels
        for index in range(len(labels)):
            suffix = labels[index:]
            if compression is not None and suffix in compression:
                pointer = compression[suffix]
                buffer.append(_POINTER_MASK | (pointer >> 8))
                buffer.append(pointer & 0xFF)
                return
            if compression is not None and len(buffer) < 0x4000:
                compression[suffix] = len(buffer)
            label = labels[index]
            buffer.append(len(label))
            buffer.extend(label)
        buffer.append(0)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> Tuple["Name", int]:
        """Decode a name at ``offset``; returns ``(name, next_offset)``.

        ``next_offset`` is the offset just past the name *in place* —
        i.e. past the pointer if the name was compressed.
        """
        labels: List[bytes] = []
        jumps = 0
        next_offset = -1
        position = offset
        while True:
            if position >= len(data):
                raise DnsError("name runs past end of message")
            length = data[position]
            if length & _POINTER_MASK == _POINTER_MASK:
                if position + 1 >= len(data):
                    raise DnsError("truncated compression pointer")
                if next_offset < 0:
                    next_offset = position + 2
                target = ((length & 0x3F) << 8) | data[position + 1]
                if target >= position:
                    raise DnsError("forward compression pointer")
                jumps += 1
                if jumps > 32:
                    raise DnsError("compression pointer loop")
                position = target
                continue
            if length & _POINTER_MASK:
                raise DnsError(f"reserved label type {length:#x}")
            position += 1
            if length == 0:
                break
            if position + length > len(data):
                raise DnsError("label runs past end of message")
            labels.append(bytes(data[position:position + length]))
            position += length
        if next_offset < 0:
            next_offset = position
        return cls(tuple(labels)), next_offset


#: The DNS root name.
ROOT = Name(())

"""DNS substrate: wire format, query workload model, root server."""

from .message import (
    Header,
    Message,
    Opcode,
    QClass,
    QType,
    Question,
    RCode,
    ResourceRecord,
)
from .name import ROOT, DnsError, Name
from .query import POPULAR_TLDS, QueryModel
from .rootserver import Delegation, RootServer, RootZone, ServerStats
from .server_io import UdpRootServer, udp_query

__all__ = [
    "Header",
    "Message",
    "Opcode",
    "QClass",
    "QType",
    "Question",
    "RCode",
    "ResourceRecord",
    "ROOT",
    "DnsError",
    "Name",
    "POPULAR_TLDS",
    "QueryModel",
    "Delegation",
    "RootServer",
    "RootZone",
    "ServerStats",
    "UdpRootServer",
    "udp_query",
]

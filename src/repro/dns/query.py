"""Root-server query-workload synthesis.

Real B-root traffic is dominated by recursive resolvers asking for TLD
delegations (a Zipf mix of popular TLDs), junk queries for nonexistent
TLDs, and a long tail of qtypes.  This module draws realistic query
names and types so that the passive telescope sees plausible payloads —
the detector itself only needs (timestamp, source), but realistic
payloads let the full decode path be exercised end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .message import Message, QType
from .name import Name

__all__ = ["QueryModel", "POPULAR_TLDS"]

#: TLD popularity skeleton used by the default workload.
POPULAR_TLDS: Tuple[str, ...] = (
    "com", "net", "org", "arpa", "de", "uk", "jp", "cn", "nl", "ru",
    "br", "fr", "it", "edu", "gov", "io", "info", "biz", "au", "in",
)

#: Query-type mix roughly matching published root-traffic breakdowns.
_QTYPE_MIX: Tuple[Tuple[int, float], ...] = (
    (QType.A, 0.45),
    (QType.AAAA, 0.20),
    (QType.NS, 0.08),
    (QType.DS, 0.10),
    (QType.MX, 0.04),
    (QType.SOA, 0.03),
    (QType.TXT, 0.03),
    (QType.PTR, 0.04),
    (QType.SRV, 0.02),
    (QType.DNSKEY, 0.01),
)
_JUNK_FRACTION = 0.12  # queries for nonexistent TLDs (chromium-style noise)

_SLD_SYLLABLES = ("net", "mail", "www", "cdn", "api", "app", "data", "edge",
                  "node", "host", "srv", "dns", "web", "img", "ad")


@dataclass
class QueryModel:
    """Draws (qname, qtype) pairs matching a root server's request mix.

    Parameters
    ----------
    tlds:
        TLD vocabulary, most popular first; popularity is Zipf(1.1).
    junk_fraction:
        Probability a query names a nonexistent TLD.
    """

    tlds: Sequence[str] = POPULAR_TLDS
    junk_fraction: float = _JUNK_FRACTION

    def __post_init__(self) -> None:
        ranks = np.arange(1, len(self.tlds) + 1, dtype=float)
        weights = ranks ** -1.1
        self._tld_weights = weights / weights.sum()
        self._qtypes = np.array([qtype for qtype, _ in _QTYPE_MIX])
        qtype_weights = np.array([weight for _, weight in _QTYPE_MIX])
        self._qtype_weights = qtype_weights / qtype_weights.sum()

    def draw_qtypes(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Vector-draw ``count`` query types."""
        return rng.choice(self._qtypes, size=count, p=self._qtype_weights)

    def draw_qname(self, rng: np.random.Generator) -> Name:
        """Draw a single query name (TLD or junk label)."""
        if rng.random() < self.junk_fraction:
            label = "".join(rng.choice(list("abcdefghijklmnopqrstuvwxyz"), size=10))
            return Name.parse(label)
        tld = str(rng.choice(np.asarray(self.tlds, dtype=object),
                             p=self._tld_weights))
        # Most root queries carry a full name whose answer is a referral.
        if rng.random() < 0.7:
            sld = str(rng.choice(np.asarray(_SLD_SYLLABLES, dtype=object)))
            return Name.parse(f"{sld}{int(rng.integers(0, 100))}.{tld}")
        return Name.parse(tld)

    def draw_queries(self, rng: np.random.Generator, count: int) -> List[Message]:
        """Draw ``count`` complete query messages with random txids."""
        qtypes = self.draw_qtypes(rng, count)
        txids = rng.integers(0, 1 << 16, size=count)
        return [
            Message.query(self.draw_qname(rng), int(qtype), int(txid))
            for qtype, txid in zip(qtypes, txids)
        ]

"""Piecewise-constant up/down timelines and outage events.

Every component of the system — the simulator's ground truth, the
passive detector, the Trinocular and RIPE comparators — reduces a
block's history to the same shape: a span of time partitioned into *up*
and *down* intervals.  This module is the shared algebra over that
shape: construction from transitions, clipping, interval set operations,
event extraction, and duration accounting.  The evaluation package
builds its second-weighted confusion matrices directly on these
primitives.

Conventions: times are float seconds on a simulation clock; intervals
are half-open ``[start, end)``; a timeline covers ``[start, end)`` and
stores only its *down* intervals (sorted, non-overlapping, non-empty).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

__all__ = ["OutageEvent", "Timeline", "merge_intervals", "intersect_intervals",
           "subtract_intervals", "total_duration"]

Interval = Tuple[float, float]


@dataclass(frozen=True, order=True)
class OutageEvent:
    """One contiguous down interval, ``[start, end)``."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "OutageEvent", slack: float = 0.0) -> bool:
        """True when the events intersect, allowing ``slack`` seconds of
        timing disagreement at the edges."""
        return self.start < other.end + slack and other.start < self.end + slack


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Sort and coalesce overlapping/touching intervals; drops empties."""
    cleaned = sorted((s, e) for s, e in intervals if e > s)
    merged: List[Interval] = []
    for start, end in cleaned:
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def intersect_intervals(
    a: Sequence[Interval], b: Sequence[Interval]
) -> List[Interval]:
    """Pairwise intersection of two sorted non-overlapping interval sets."""
    result: List[Interval] = []
    i = j = 0
    while i < len(a) and j < len(b):
        start = max(a[i][0], b[j][0])
        end = min(a[i][1], b[j][1])
        if end > start:
            result.append((start, end))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return result


def subtract_intervals(
    a: Sequence[Interval], b: Sequence[Interval]
) -> List[Interval]:
    """Portions of sorted non-overlapping ``a`` not covered by ``b``."""
    result: List[Interval] = []
    j = 0
    for start, end in a:
        cursor = start
        while j < len(b) and b[j][1] <= cursor:
            j += 1
        k = j
        while k < len(b) and b[k][0] < end:
            if b[k][0] > cursor:
                result.append((cursor, b[k][0]))
            cursor = max(cursor, b[k][1])
            if b[k][1] >= end:
                break
            k += 1
        if cursor < end:
            result.append((cursor, end))
    return result


def total_duration(intervals: Iterable[Interval]) -> float:
    """Sum of interval lengths (assumes non-overlapping input)."""
    return sum(end - start for start, end in intervals)


class Timeline:
    """Up/down state of one block over ``[start, end)``.

    Immutable by convention: all operations return new timelines.
    """

    __slots__ = ("start", "end", "_down")

    def __init__(self, start: float, end: float,
                 down_intervals: Iterable[Interval] = ()) -> None:
        if end < start:
            raise ValueError(f"timeline ends before it starts: [{start}, {end})")
        self.start = float(start)
        self.end = float(end)
        clipped = ((max(s, self.start), min(e, self.end))
                   for s, e in down_intervals)
        self._down: List[Interval] = merge_intervals(clipped)

    # -- construction ----------------------------------------------------

    @classmethod
    def always_up(cls, start: float, end: float) -> "Timeline":
        return cls(start, end, ())

    @classmethod
    def always_down(cls, start: float, end: float) -> "Timeline":
        return cls(start, end, [(start, end)])

    @classmethod
    def from_transitions(
        cls, start: float, end: float,
        transitions: Sequence[Tuple[float, bool]],
        initial_up: bool = True,
    ) -> "Timeline":
        """Build from ``(time, is_up)`` state-change events.

        Transitions outside ``[start, end)`` are clipped; redundant
        transitions (to the current state) are ignored.
        """
        down: List[Interval] = []
        up = initial_up
        down_since = start if not up else None
        for time, is_up in sorted(transitions):
            if is_up == up:
                continue
            up = is_up
            if not up:
                down_since = time
            elif down_since is not None:
                down.append((down_since, time))
                down_since = None
        if down_since is not None:
            down.append((down_since, end))
        return cls(start, end, down)

    # -- inspection -------------------------------------------------------

    @property
    def down_intervals(self) -> List[Interval]:
        return list(self._down)

    @property
    def up_intervals(self) -> List[Interval]:
        """Complement of the down set within the timeline span."""
        ups: List[Interval] = []
        cursor = self.start
        for down_start, down_end in self._down:
            if down_start > cursor:
                ups.append((cursor, down_start))
            cursor = down_end
        if cursor < self.end:
            ups.append((cursor, self.end))
        return ups

    @property
    def span(self) -> float:
        return self.end - self.start

    def down_seconds(self) -> float:
        return total_duration(self._down)

    def up_seconds(self) -> float:
        return self.span - self.down_seconds()

    def availability(self) -> float:
        """Fraction of the span spent up (1.0 for an empty span)."""
        return self.up_seconds() / self.span if self.span > 0 else 1.0

    def is_up_at(self, time: float) -> bool:
        """State at an instant (end-of-span queries use the final state)."""
        if not self.start <= time <= self.end:
            raise ValueError(f"time {time} outside [{self.start}, {self.end}]")
        index = bisect.bisect_right(self._down, (time, float("inf"))) - 1
        if index >= 0:
            down_start, down_end = self._down[index]
            if down_start <= time < down_end:
                return False
        return True

    def events(self, min_duration: float = 0.0) -> List[OutageEvent]:
        """Down intervals as events, optionally dropping short ones."""
        return [OutageEvent(s, e) for s, e in self._down
                if e - s >= min_duration]

    def segments(self) -> Iterator[Tuple[float, float, bool]]:
        """Alternating ``(start, end, is_up)`` covering the whole span."""
        cursor = self.start
        for down_start, down_end in self._down:
            if down_start > cursor:
                yield cursor, down_start, True
            yield down_start, down_end, False
            cursor = down_end
        if cursor < self.end:
            yield cursor, self.end, True

    # -- algebra ----------------------------------------------------------

    def clip(self, start: float, end: float) -> "Timeline":
        """Restrict to a sub-span."""
        start = max(start, self.start)
        end = min(end, self.end)
        return Timeline(start, end, self._down)

    def invert(self) -> "Timeline":
        """Swap up and down."""
        return Timeline(self.start, self.end, self.up_intervals)

    def union_down(self, other: "Timeline") -> "Timeline":
        """Down wherever either timeline is down (spans must match)."""
        self._check_span(other)
        return Timeline(self.start, self.end, self._down + other._down)

    def intersect_down(self, other: "Timeline") -> "Timeline":
        """Down only where both timelines are down (spans must match)."""
        self._check_span(other)
        return Timeline(self.start, self.end,
                        intersect_intervals(self._down, other._down))

    def without_down(self, intervals: Sequence[Interval]) -> "Timeline":
        """Force *up* over the given intervals (quarantine suppression).

        Down time overlapping ``intervals`` is removed; down time outside
        them is preserved exactly.  Used by the vantage sentinel to
        retract verdicts made while the observer itself was unhealthy.
        """
        cleaned = merge_intervals(intervals)
        return Timeline(self.start, self.end,
                        subtract_intervals(self._down, cleaned))

    def drop_short_outages(self, min_duration: float) -> "Timeline":
        """Remove down intervals shorter than ``min_duration``.

        This models a detector that cannot resolve outages below its
        temporal precision — e.g. Trinocular's 11-minute rounds.
        """
        return Timeline(self.start, self.end,
                        [(s, e) for s, e in self._down if e - s >= min_duration])

    def fill_short_ups(self, min_duration: float) -> "Timeline":
        """Merge down intervals separated by an up gap below
        ``min_duration`` (flap damping)."""
        if not self._down:
            return Timeline(self.start, self.end, ())
        filled: List[Interval] = [self._down[0]]
        for start, end in self._down[1:]:
            if start - filled[-1][1] < min_duration:
                filled[-1] = (filled[-1][0], end)
            else:
                filled.append((start, end))
        return Timeline(self.start, self.end, filled)

    def shift(self, delta: float) -> "Timeline":
        """Translate the whole timeline in time by ``delta`` seconds."""
        return Timeline(self.start + delta, self.end + delta,
                        [(s + delta, e + delta) for s, e in self._down])

    def _check_span(self, other: "Timeline") -> None:
        if (self.start, self.end) != (other.start, other.end):
            raise ValueError(
                f"timeline spans differ: [{self.start}, {self.end}) vs "
                f"[{other.start}, {other.end})")

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Timeline)
                and (self.start, self.end) == (other.start, other.end)
                and self._down == other._down)

    def __hash__(self) -> int:
        return hash((self.start, self.end, tuple(self._down)))

    def __repr__(self) -> str:
        return (f"Timeline([{self.start}, {self.end}), "
                f"{len(self._down)} outages, "
                f"availability={self.availability():.4f})")

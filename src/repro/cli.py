"""Command-line interface: simulate, detect, and reproduce experiments.

Examples::

    repro-outage simulate --blocks 500 --out day.pobs
    repro-outage detect day.pobs --train-end 86400
    repro-outage experiment table1 --scale 0.5
    repro-outage report --scale 0.5
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from .core.health import ErrorBudgetExceeded, RunHealthReport
from .core.pipeline import PassiveOutagePipeline
from .obs.explain import (
    EXPLAIN_FORMAT,
    NULL_EXPLAIN,
    ExplainLog,
    format_explain,
    read_explain_jsonl,
    set_explain,
)
from .obs.metrics import (
    NULL_REGISTRY,
    SNAPSHOT_FORMAT,
    MetricsRegistry,
    render_snapshot,
    set_registry,
)
from .obs.server import ObservabilityServer
from .obs.tracing import NULL_TRACER, SpanTracer, set_tracer
from .experiments import (
    run_baseline_comparison,
    run_darknet_fusion,
    run_sensitivity,
    run_figure1,
    run_figure2a,
    run_figure2b,
    run_short_uplift,
    run_table1,
    run_table2,
    run_table3,
    run_tuning_ablation,
    run_week_validation,
)
from .telescope.aggregate import per_block_times
from .telescope.capture import CaptureWriter, read_batches
from .telescope.records import ObservationBatch
from .telescope.stream import merge_streams
from .traffic.internet import FamilyConfig, InternetConfig, SimulatedInternet
from .traffic.outages import IPV4_OUTAGE_MODEL, IPV6_OUTAGE_MODEL

#: Exit code for :class:`ErrorBudgetExceeded` — distinct from generic
#: failure (1) and argparse usage errors (2) so operators can alert on
#: "the run was too degraded to trust" specifically.
EXIT_BUDGET_TRIPPED = 3

#: Exit code for a supervised run that completed *degraded* — blocks
#: lost to repeatedly-dying workers — under ``--strict-coverage``.
#: Distinct from the budget code: 3 means "too much was quarantined to
#: trust the result", 4 means "the result is trustworthy but
#: incomplete, and the operator asked to be paged about holes".
EXIT_DEGRADED_COVERAGE = 4

EXPERIMENTS: Dict[str, Callable] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "figure1": run_figure1,
    "figure2a": run_figure2a,
    "figure2b": run_figure2b,
    "uplift": run_short_uplift,
    "ablation": run_tuning_ablation,
    "baselines": run_baseline_comparison,
    "fusion": run_darknet_fusion,
    "sensitivity": run_sensitivity,
    "week": run_week_validation,
}


class _RunTelemetry:
    """One command's telemetry plane: registry, tracer, explain, server."""

    def __init__(self, registry: object, tracer: object, explain: object,
                 server: Optional[ObservabilityServer]) -> None:
        self.registry = registry
        self.tracer = tracer
        self.explain = explain
        self.server = server


@contextmanager
def _telemetry(args: argparse.Namespace,
               force_metrics: bool = False) -> Iterator[_RunTelemetry]:
    """Install (and on exit, export and uninstall) run telemetry.

    A real registry/tracer/explain log is created only when the
    corresponding ``--metrics-out``/``--trace-out``/``--explain-out``
    flag was given, when ``--obs-port`` asks for the live HTTP endpoint
    (which serves all three, so all three must exist), or under
    ``force_metrics`` — the live monitor always meters so checkpoints
    carry cumulative telemetry.  All are installed as the process
    defaults so internally-constructed pipelines pick them up, and the
    previous defaults are restored afterwards — ``main()`` is called
    repeatedly in-process by the test suite.  Export happens in the
    ``finally`` so a budget-tripped run still writes its telemetry.
    """
    from .core.serialize import atomic_write_text

    metrics_out = getattr(args, "metrics_out", "")
    trace_out = getattr(args, "trace_out", "")
    explain_out = getattr(args, "explain_out", "")
    obs_port = getattr(args, "obs_port", None)
    serve = obs_port is not None
    registry = (MetricsRegistry() if (metrics_out or force_metrics or serve)
                else NULL_REGISTRY)
    tracer = SpanTracer() if (trace_out or serve) else NULL_TRACER
    explain = ExplainLog() if (explain_out or serve) else NULL_EXPLAIN
    previous_registry = set_registry(registry)
    previous_tracer = set_tracer(tracer)
    previous_explain = set_explain(explain)
    server: Optional[ObservabilityServer] = None
    if serve:
        server = ObservabilityServer(port=obs_port, registry=registry,
                                     tracer=tracer, explain=explain).start()
        print(f"observability endpoint: {server.url}", file=sys.stderr)
    try:
        yield _RunTelemetry(registry, tracer, explain, server)
    finally:
        if server is not None:
            server.stop()
        set_registry(previous_registry)
        set_tracer(previous_tracer)
        set_explain(previous_explain)
        if metrics_out and registry.enabled:
            atomic_write_text(metrics_out, registry.to_json())
            print(f"metrics written to {metrics_out}")
        if trace_out and tracer.enabled:
            atomic_write_text(trace_out, tracer.to_chrome_json())
            print(f"trace written to {trace_out}")
        if explain_out and explain.enabled:
            atomic_write_text(explain_out, explain.to_jsonl())
            print(f"explain log written to {explain_out}")


def _metric_value(registry: object, name: str) -> float:
    """Current value of an unlabelled counter/gauge, 0 if unregistered."""
    family = registry.get(name)
    return family.value if family is not None else 0


@contextmanager
def _graceful_stop() -> Iterator[Callable[[], bool]]:
    """SIGTERM/SIGINT set a flag instead of killing the monitor.

    The live paths poll the yielded callable once per record and exit
    through their normal teardown — flushing checkpoints and telemetry
    — rather than dying mid-write.  Previous handlers are restored on
    exit because ``main()`` is called repeatedly in-process by the
    test suite; installation is skipped quietly off the main thread,
    where CPython forbids it.
    """
    stop = {"flag": False}

    def _handler(signum: int, frame: object) -> None:
        stop["flag"] = True

    previous: Dict[int, object] = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _handler)
        except ValueError:
            pass
    try:
        yield lambda: stop["flag"]
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def _cmd_simulate(args: argparse.Namespace) -> int:
    """Build a simulated Internet and write its capture file."""
    config = InternetConfig(
        end=args.days * 86400.0,
        training_seconds=min(86400.0, args.days * 86400.0 / 2.0),
        seed=args.seed,
        ipv4=FamilyConfig(n_blocks=args.blocks,
                          outage_model=IPV4_OUTAGE_MODEL),
        ipv6=(FamilyConfig(n_blocks=args.v6_blocks,
                           outage_model=IPV6_OUTAGE_MODEL)
              if args.v6_blocks else None),
    )
    internet = SimulatedInternet.build(config)
    print(internet.describe())
    # A real vantage point writes records in arrival order, and the
    # streaming consumers (repro-outage live, StreamingDetector) rely
    # on it: group per family, then interleave globally by time.
    per_family: Dict[object, List[ObservationBatch]] = {}
    for profile, times in internet.passive_observations():
        batch = ObservationBatch(
            profile.family, times,
            [profile.key] * len(times))
        per_family.setdefault(profile.family, []).append(batch)
    batches = [ObservationBatch.concatenate(group).sorted_by_time()
               for group in per_family.values() if group]
    records = 0
    with CaptureWriter(args.out) as writer:
        if len(batches) == 1:
            writer.write_batch(batches[0])
            records = len(batches[0])
        else:
            for observation in merge_streams(
                    *(batch.to_observations() for batch in batches)):
                writer.write(observation)
                records += 1
    print(f"wrote {records:,} observations to {args.out}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    """Train per-block models from a capture and save them as JSON."""
    from .core.serialize import save_model

    ipv4, ipv6 = read_batches(args.capture)
    batch = (ipv4 if args.family == 4 else ipv6).sorted_by_time()
    if not len(batch):
        print(f"capture has no IPv{args.family} observations",
              file=sys.stderr)
        return 1
    start = float(batch.times[0])
    end = args.train_end if args.train_end else float(batch.times[-1]) + 1.0
    pipeline = PassiveOutagePipeline()
    model = pipeline.train(batch.family, per_block_times(batch), start, end)
    save_model(model, args.out)
    print(f"trained {len(model.parameters)} blocks "
          f"({model.coverage():.1%} measurable) -> {args.out}")
    return 0


def _write_health_report(path: str,
                         report: Optional[RunHealthReport]) -> None:
    """Atomically write a run health report (no-op without a report)."""
    from .core.serialize import atomic_write_text

    if report is None:
        return
    atomic_write_text(path, report.to_json())
    print(f"health report written to {path}")


def _print_quarantine_summary(report: Optional[RunHealthReport]) -> None:
    if report is None or not report.blocks_quarantined:
        return
    print(f"{report.blocks_quarantined} blocks quarantined "
          f"({report.quarantine_fraction:.1%} of attempted):")
    for entry in report.dead_letters.entries:
        print(f"  block {entry.block_key:#x} [{entry.stage}] "
              f"{entry.error_type}: {entry.error}")


def _cmd_detect(args: argparse.Namespace) -> int:
    """Train on the leading window of a capture, detect on the rest.

    With ``--model``, skips training and uses a saved model instead.
    """
    ipv4, ipv6 = read_batches(args.capture)
    batch = ipv4 if args.family == 4 else ipv6
    if not len(batch):
        print(f"capture has no IPv{args.family} observations",
              file=sys.stderr)
        return 1
    batch = batch.sorted_by_time()
    # Window bounds from the data must survive poisoned records: a
    # single NaN timestamp sorts last and would otherwise become the
    # window end (and poison every block's bin grid, not just its own).
    finite = batch.times[np.isfinite(batch.times)]
    if not len(finite):
        print("capture has no finite timestamps", file=sys.stderr)
        return 1
    start = float(finite[0])
    end = float(finite[-1]) + 1.0
    train_end = args.train_end if args.train_end else (start + end) / 2.0

    supervision = None
    workers = args.workers
    if (args.shard_timeout is not None or args.shard_retries is not None
            or args.shard_max_rss_mb is not None):
        from .parallel import SupervisionPolicy

        supervision = SupervisionPolicy(
            timeout=args.shard_timeout,
            retries=(args.shard_retries
                     if args.shard_retries is not None else 2),
            max_rss_mb=args.shard_max_rss_mb)
        if not workers:
            # Supervision is a property of the parallel path; asking
            # for it implies at least one supervised worker.
            workers = 1

    per_block = per_block_times(batch)
    with _telemetry(args) as telemetry:
        registry, tracer = telemetry.registry, telemetry.tracer
        pipeline = PassiveOutagePipeline(
            max_quarantine_frac=args.max_quarantine_frac,
            metrics=registry, tracer=tracer,
            workers=workers, shard_chunk=args.shard_chunk,
            supervision=supervision)
        try:
            if args.model:
                from .core.serialize import load_model

                model = load_model(args.model)
                evaluate = per_block
                detect_start = start
            else:
                # NaN compares false against the boundary, so a plain
                # t >= split would silently discard poisoned records;
                # keep them on the detection side instead, where the
                # detector quarantines the block and the health report
                # names it.
                train = {k: t[(t < train_end) & np.isfinite(t)]
                         for k, t in per_block.items()}
                evaluate = {k: t[~(t < train_end)]
                            for k, t in per_block.items()}
                model = pipeline.train(batch.family, train, start, train_end)
                detect_start = train_end
            result = pipeline.detect(model, evaluate, detect_start, end)
        except ErrorBudgetExceeded as error:
            print(f"error budget exceeded: {error}", file=sys.stderr)
            if args.health_report:
                _write_health_report(args.health_report, error.report)
            return EXIT_BUDGET_TRIPPED

    print(f"trained {len(model.parameters)} blocks "
          f"({len(model.measurable_keys)} measurable, coverage "
          f"{model.coverage():.1%})")
    _print_quarantine_summary(result.health)
    degraded = False
    for run_name, health in (("train", getattr(model, "health", None)),
                             ("detect", result.health)):
        coverage = health.coverage if health is not None else None
        if coverage is not None and coverage.degraded:
            degraded = True
            print(f"{run_name} coverage degraded: "
                  f"{len(coverage.blocks_lost)}/{coverage.blocks_planned} "
                  f"blocks lost to supervision (workers kept dying); "
                  f"lost blocks are dead-lettered under stage=supervision")
    if args.health_report:
        _write_health_report(args.health_report, result.health)
    events = 0
    for key, block in sorted(result.blocks.items()):
        for event in block.timeline.events(args.min_duration):
            events += 1
            print(f"  block {key:#x}: outage {event.start:,.1f}s "
                  f"-> {event.end:,.1f}s ({event.duration:,.0f}s)")
    print(f"{events} outage events >= {args.min_duration:.0f}s")
    if args.strict_coverage and degraded:
        return EXIT_DEGRADED_COVERAGE
    return 0


def _cmd_live(args: argparse.Namespace) -> int:
    """Replay a capture through the resilient live-monitor path.

    This is the deployment shape: a saved model, a streaming detector
    fed record by record, an optional reorder buffer in front (bounded
    out-of-order tolerance), an optional vantage sentinel (observer
    failure quarantine), and periodic atomic checkpoints so a killed
    monitor resumes mid-stream instead of retraining.
    """
    from .core.serialize import load_model

    model = load_model(args.model)
    if int(model.family) != args.family:
        print(f"model is IPv{int(model.family)}, not IPv{args.family}",
              file=sys.stderr)
        return 1

    if args.reorder_horizon < 0:
        print(f"--reorder-horizon must be >= 0, got {args.reorder_horizon}",
              file=sys.stderr)
        return 1

    # The live monitor always meters (force_metrics): checkpoints carry
    # the cumulative telemetry snapshot whether or not this particular
    # invocation asked for --metrics-out, so counters survive a
    # kill-and-resume regardless of the resuming operator's flags.
    with _telemetry(args, force_metrics=True) as telemetry:
        if args.partitions is not None or args.partition_chunk is not None:
            return _run_live_partitioned(args, model, telemetry)
        return _run_live(args, model, telemetry.registry)


def _live_drift_config(args: argparse.Namespace) -> Optional[object]:
    from .live import DriftConfig

    if args.drift_audit_every <= 0:
        return None
    return DriftConfig(args.drift_audit_every,
                       window_seconds=args.drift_window,
                       drift_factor=args.drift_factor,
                       min_arrivals=args.drift_min_arrivals)


def _print_live_summary(args: argparse.Namespace, results: Dict,
                        registry: object) -> int:
    """Event listing shared by the single and partitioned live paths."""
    swaps = _metric_value(registry, "drift_hot_swaps_total")
    if swaps:
        flagged = _metric_value(registry, "drift_blocks_flagged_total")
        print(f"drift: {flagged:.0f} blocks flagged, "
              f"{swaps:.0f} models hot-swapped")
    events = 0
    for key, block in sorted(results.items()):
        for event in block.timeline.events(args.min_duration):
            events += 1
            print(f"  block {key:#x}: outage {event.start:,.1f}s "
                  f"-> {event.end:,.1f}s ({event.duration:,.0f}s)")
    print(f"{events} outage events >= {args.min_duration:.0f}s")
    return events


def _run_live(args: argparse.Namespace, model: "TrainedModel",
              registry: object) -> int:
    from .core.checkpoint import (
        CheckpointFormatError,
        load_checkpoint_rotated,
        save_checkpoint_rotated,
    )
    from .core.detector import StreamingDetector
    from .core.health import ErrorBudget
    from .core.sentinel import SentinelConfig, VantageSentinel
    from .live import _PROCESS_FAULT_ENV, LiveBlockEngine
    from .telescope.capture import CaptureCorruptionError, CaptureReader
    from .telescope.reorder import LatePolicy, ReorderBuffer

    resume_time = None
    detector = None
    if args.checkpoint and os.path.exists(args.checkpoint):
        try:
            detector = load_checkpoint_rotated(args.checkpoint, model,
                                               metrics=registry,
                                               keep=args.checkpoint_keep)
        except CheckpointFormatError as error:
            print(f"cannot resume from {args.checkpoint}: {error}",
                  file=sys.stderr)
            return 1
        resume_time = detector.last_time
        print(f"resumed from {args.checkpoint} at t={resume_time:,.1f}s")
    if detector is None:
        sentinel = (VantageSentinel(model.train_end, SentinelConfig())
                    if args.sentinel else None)
        detector = StreamingDetector(model.family, model.histories,
                                     model.parameters, model.train_end,
                                     sentinel=sentinel, metrics=registry)
    # The flag wins over a resumed checkpoint's stored budget: the
    # operator invoking the monitor sets this run's tolerance.
    detector.budget = ErrorBudget(args.max_quarantine_frac)

    buffer = (ReorderBuffer(args.reorder_horizon, LatePolicy.COUNT,
                            metrics=registry)
              if args.reorder_horizon > 0 else None)
    fault_plan = None
    if os.environ.get(_PROCESS_FAULT_ENV):
        # Chaos-suite channel, lazy so production never imports it.
        from .testing.faults import load_streaming_faults

        fault_plan = load_streaming_faults(model.parameters)
    engine = LiveBlockEngine(detector, buffer=buffer,
                             drift=_live_drift_config(args),
                             fault_plan=fault_plan)
    # Resume restores the drift auditor but not the reorder buffer: the
    # time-based skip below re-reads everything that was still buffered
    # at checkpoint time, so restoring the buffer would double-feed it.
    engine.restore(detector.restored_extra, buffer_state=False)

    def _save() -> None:
        save_checkpoint_rotated(detector, args.checkpoint,
                                keep=args.checkpoint_keep,
                                extra=engine.checkpoint_extra())

    next_checkpoint = (detector.last_time + args.checkpoint_every
                       if args.checkpoint else float("inf"))
    interval = getattr(args, "metrics_interval", 0.0)
    next_status = (detector.last_time + interval
                   if interval > 0 else float("inf"))
    status_bins = _metric_value(registry, "stream_bins_total")
    interrupted = False
    with _graceful_stop() as stop_requested:
        try:
            with CaptureReader(args.capture,
                               tolerant=args.tolerant) as reader:
                for observation in reader:
                    if stop_requested():
                        interrupted = True
                        break
                    if observation.time < detector.start:
                        continue  # training-window traffic, not live
                    if (resume_time is not None
                            and observation.time <= resume_time):
                        continue  # already accounted before the crash
                    engine.feed(observation)
                    if (args.checkpoint
                            and detector.last_time >= next_checkpoint):
                        _save()
                        next_checkpoint = (detector.last_time
                                           + args.checkpoint_every)
                    if detector.last_time >= next_status:
                        bins = _metric_value(registry, "stream_bins_total")
                        lag = _metric_value(
                            registry, "stream_watermark_lag_seconds")
                        print(f"[live t={detector.last_time:,.0f}s] "
                              f"{(bins - status_bins) / interval:,.2f} "
                              f"windows/s, lag {lag:,.1f}s, "
                              f"{len(detector.dead_letters)} "
                              f"blocks quarantined",
                              file=sys.stderr)
                        status_bins = bins
                        next_status = detector.last_time + interval
                if not interrupted:
                    engine.flush()
                if reader.stopped_early:
                    print(f"capture corrupt past record "
                          f"{reader.records_read}; stopped at last good "
                          f"frame", file=sys.stderr)
        except CaptureCorruptionError as error:
            print(f"corrupt capture: {error}", file=sys.stderr)
            print("hint: pass --tolerant to stop at the last good frame "
                  "instead", file=sys.stderr)
            return 1
        except OSError as error:
            print(f"cannot read capture: {error}", file=sys.stderr)
            return 1
        except ValueError as error:
            print(f"capture is not time-sorted: {error}", file=sys.stderr)
            print("hint: pass --reorder-horizon SECONDS to re-sort bounded "
                  "disorder in-stream", file=sys.stderr)
            return 1

    if interrupted:
        # Graceful SIGTERM/SIGINT: the buffer stays unflushed (its
        # records are re-read on resume by the time-based skip above),
        # the checkpoint lands, and telemetry flushes in _telemetry's
        # finally.  Exit 0: interruption is an operator action.
        print("interrupted: stopping cleanly", file=sys.stderr)
        if args.checkpoint:
            _save()
            print(f"checkpoint saved to {args.checkpoint}", file=sys.stderr)
        print(f"replayed {engine.observed:,} observations to "
              f"t={detector.last_time:,.1f}s")
        return 0

    end = detector.last_time
    try:
        results = detector.finalize(end)
    except ErrorBudgetExceeded as error:
        print(f"error budget exceeded: {error}", file=sys.stderr)
        if args.health_report:
            _write_health_report(args.health_report, detector.last_health)
        if args.checkpoint:
            _save()
            print(f"checkpoint saved to {args.checkpoint}", file=sys.stderr)
        return EXIT_BUDGET_TRIPPED
    _print_quarantine_summary(detector.last_health)
    if args.health_report:
        _write_health_report(args.health_report, detector.last_health)
    if args.checkpoint:
        _save()
        print(f"checkpoint saved to {args.checkpoint}")
    print(f"replayed {engine.observed:,} observations to t={end:,.1f}s")
    if buffer:
        stats = buffer.stats
        print(f"reorder buffer: {stats.out_of_order} out-of-order arrivals "
              f"re-sorted, {stats.late_dropped} beyond-horizon dropped "
              f"(peak occupancy {stats.occupancy_peak})")
    if detector.sentinel is not None:
        windows = detector.sentinel.quarantined_intervals()
        print(f"sentinel: {len(windows)} quarantined feed windows "
              f"({detector.sentinel.quarantined_seconds():,.0f}s)")
        for window_start, window_end in windows:
            print(f"  quarantine {window_start:,.1f}s -> {window_end:,.1f}s")
    _print_live_summary(args, results, registry)
    return 0


def _run_live_partitioned(args: argparse.Namespace, model: "TrainedModel",
                          telemetry: _RunTelemetry) -> int:
    """Live monitoring with the keyspace partitioned across workers."""
    registry = telemetry.registry
    from .live import LivePartitionSupervisor
    from .parallel import ShardWorkerError, SupervisionPolicy
    from .telescope.capture import CaptureCorruptionError

    if not args.checkpoint:
        print("partitioned live requires --checkpoint DIR: per-partition "
              "checkpoints and the run manifest live there",
              file=sys.stderr)
        return 1
    os.makedirs(args.checkpoint, exist_ok=True)
    policy = SupervisionPolicy(
        timeout=args.partition_timeout,
        retries=(args.partition_retries
                 if args.partition_retries is not None else 2),
        max_rss_mb=args.partition_max_rss_mb)
    with _graceful_stop() as stop_requested:
        supervisor = LivePartitionSupervisor(
            model,
            partitions=args.partitions,
            partition_chunk=args.partition_chunk,
            policy=policy,
            checkpoint_dir=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            checkpoint_keep=args.checkpoint_keep,
            reorder_horizon=args.reorder_horizon,
            sentinel=args.sentinel,
            drift=_live_drift_config(args),
            max_quarantine_frac=args.max_quarantine_frac,
            metrics=registry,
            tracer=telemetry.tracer,
            explain=telemetry.explain,
            stop_requested=stop_requested,
            status=lambda line: print(line, file=sys.stderr))
        if telemetry.server is not None:
            # /health now reports this run: per-partition status and
            # watermark lag instead of bare process liveness.
            telemetry.server.health_provider = supervisor.health_document
        try:
            result = supervisor.run(args.capture, tolerant=args.tolerant)
        except CaptureCorruptionError as error:
            print(f"corrupt capture: {error}", file=sys.stderr)
            print("hint: pass --tolerant to stop at the last good frame "
                  "instead", file=sys.stderr)
            return 1
        except OSError as error:
            print(f"cannot read capture: {error}", file=sys.stderr)
            return 1
        except ShardWorkerError as error:
            # A worker's exception is a harness bug, not a block fault
            # (those are dead-lettered in-worker); surface it verbatim.
            print(f"live partition worker failed: {error}", file=sys.stderr)
            return 1
        except ErrorBudgetExceeded as error:
            print(f"error budget exceeded: {error}", file=sys.stderr)
            if args.health_report:
                _write_health_report(args.health_report, error.report)
            return EXIT_BUDGET_TRIPPED

    if result.stopped_early:
        print(f"capture corrupt past record {result.records_read}; "
              f"stopped at last good frame", file=sys.stderr)
    _print_quarantine_summary(result.health)
    if args.health_report:
        _write_health_report(args.health_report, result.health)
    print(f"partitions: {len(supervisor.partitions)} over "
          f"{len(model.parameters)} blocks (plan {supervisor.digest[:12]}), "
          f"{result.restarts} restarts, "
          f"{result.replayed_rows:,} rows replayed")
    if result.manifest_path:
        print(f"manifest: {result.manifest_path}")
    if result.interrupted:
        print("interrupted: partition checkpoints flushed; rerun the same "
              "command to resume", file=sys.stderr)
        print(f"replayed {result.observed:,} observations to "
              f"t={result.end:,.1f}s")
        return 0
    print(f"replayed {result.observed:,} observations to "
          f"t={result.end:,.1f}s")
    if args.sentinel:
        print(f"sentinel: {len(result.sentinel_windows)} quarantined feed "
              f"windows ({result.sentinel_seconds:,.0f}s)")
        for window_start, window_end in result.sentinel_windows:
            print(f"  quarantine {window_start:,.1f}s -> {window_end:,.1f}s")
    _print_live_summary(args, result.results, registry)
    if result.degraded:
        coverage = result.health.coverage
        print(f"live coverage degraded: "
              f"{len(coverage.blocks_lost)}/{coverage.blocks_planned} "
              f"blocks lost to partitions that exhausted their restart "
              f"budget; lost blocks are dead-lettered under stage=stream")
        if args.strict_coverage:
            return EXIT_DEGRADED_COVERAGE
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Replay a capture through the live engine behind the serving plane.

    The deployment shape for consumers: the streaming detector runs
    in-process and the :mod:`repro.serve` plane fronts it — query
    up/down state by address or prefix, subscribe to onset/recovery/
    retraction events over a WebSocket, scrape ``/metrics``, and let a
    load balancer watch ``/ready``.  ``--linger-s`` keeps serving after
    the capture is exhausted (``-1`` = until SIGTERM), which is how the
    smoke example and a demo deployment use it.
    """
    from .core.detector import StreamingDetector
    from .core.serialize import load_model
    from .live import LiveBlockEngine
    from .serve import (
        AdmissionConfig,
        EngineBridge,
        LagPolicy,
        ReadyGate,
        ServeConfig,
        ServingPlane,
    )
    from .telescope.capture import CaptureCorruptionError, CaptureReader
    from .telescope.reorder import LatePolicy, ReorderBuffer

    model = load_model(args.model)
    if int(model.family) != args.family:
        print(f"model is IPv{int(model.family)}, not IPv{args.family}",
              file=sys.stderr)
        return 1
    if args.reorder_horizon < 0:
        print(f"--reorder-horizon must be >= 0, got {args.reorder_horizon}",
              file=sys.stderr)
        return 1

    with _telemetry(args, force_metrics=True) as telemetry:
        registry = telemetry.registry
        detector = StreamingDetector(model.family, model.histories,
                                     model.parameters, model.train_end,
                                     metrics=registry)
        buffer = (ReorderBuffer(args.reorder_horizon, LatePolicy.COUNT,
                                metrics=registry)
                  if args.reorder_horizon > 0 else None)
        engine = LiveBlockEngine(detector, buffer=buffer)
        config = ServeConfig(
            host=args.host, port=args.port,
            admission=AdmissionConfig(
                max_connections=args.max_clients,
                max_subscribers=args.max_subscribers,
                shed_qps=args.shed_qps,
                salt=f"{args.model}|{model.train_end}"),
            lag=LagPolicy(
                stale_after_s=args.stale_after_s,
                fail_after_s=(args.fail_stale_after_s
                              if args.fail_stale_after_s > 0 else None)),
            ready=ReadyGate(max_lag_s=args.max_lag_s))
        plane = ServingPlane(
            model.family, config, registry=registry,
            health_provider=lambda: {
                "status": "serving", "run": "live-serve",
                "watermark": detector.last_time,
                "windows": detector.windows_closed,
                "quarantined": len(detector.dead_letters),
            })
        bridge = EngineBridge(engine, plane,
                              publish_min_interval_s=args.publish_every_s)
        plane.start()
        print(f"serving plane: {plane.url}", file=sys.stderr)
        interrupted = False
        try:
            with _graceful_stop() as stop_requested:
                try:
                    with CaptureReader(args.capture,
                                       tolerant=args.tolerant) as reader:
                        for observation in reader:
                            if stop_requested():
                                interrupted = True
                                break
                            if observation.time < detector.start:
                                continue  # training-window traffic
                            engine.feed(observation)
                            bridge.step()
                except CaptureCorruptionError as error:
                    print(f"corrupt capture: {error}", file=sys.stderr)
                    print("hint: pass --tolerant to stop at the last good "
                          "frame instead", file=sys.stderr)
                    return 1
                except OSError as error:
                    print(f"cannot read capture: {error}", file=sys.stderr)
                    return 1
                except ValueError as error:
                    print(f"capture is not time-sorted: {error}",
                          file=sys.stderr)
                    print("hint: pass --reorder-horizon SECONDS to re-sort "
                          "bounded disorder in-stream", file=sys.stderr)
                    return 1
                if not interrupted:
                    engine.flush()
                    bridge.step(force=True)
                    print(f"replayed {engine.observed:,} observations to "
                          f"t={detector.last_time:,.1f}s; serving",
                          file=sys.stderr)
                    linger = args.linger_s
                    deadline = (time.monotonic() + linger
                                if linger >= 0 else None)
                    while not stop_requested():
                        if deadline is not None \
                                and time.monotonic() >= deadline:
                            break
                        time.sleep(0.05)
        finally:
            # Drain: stop accepting, flush subscriber outboxes, close
            # with 1001 going-away — the SIGTERM rolling-restart path.
            plane.stop(drain=True)
        print(f"served {plane.admission.sheds} sheds, "
              f"{plane.last_event_seq} events; stopping cleanly",
              file=sys.stderr)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    """Run one named experiment and print its artefact.

    Experiments build their pipelines internally, so telemetry reaches
    them through the process-default registry/tracer installed by
    :func:`_telemetry` (components resolve the default at construction).
    """
    runner = EXPERIMENTS[args.name]
    with _telemetry(args):
        # Experiments construct pipelines internally, so --workers
        # reaches them the same way telemetry does: as a process-wide
        # default, restored afterwards.
        from .parallel import set_default_parallelism

        previous = set_default_parallelism(args.workers, args.shard_chunk)
        try:
            result = runner(scale=args.scale)
        except ErrorBudgetExceeded as error:
            # Same contract as `detect`: a run too degraded to trust
            # exits with the distinct budget code, and the telemetry
            # files still land (the _telemetry finally block flushes).
            print(f"error budget exceeded: {error}", file=sys.stderr)
            return EXIT_BUDGET_TRIPPED
        finally:
            set_default_parallelism(*previous)
        print(result)
    return 0


def _render_health_report(document: Dict) -> str:
    """Human-readable rendering of a run health report document.

    Deterministic (pinned by a golden test): stages in recorded order,
    lost blocks and the retry histogram sorted, attempt histories only
    for units that needed more than one attempt (the interesting ones).
    """
    report = RunHealthReport.from_dict(document)
    lines = [f"health report: run={report.run}", f"  {report.summary()}"]
    if report.stages:
        lines.append("stages:")
        for stage in report.stages:
            lines.append(
                f"  {stage.name}: attempted {stage.attempted}, "
                f"succeeded {stage.succeeded}, "
                f"quarantined {stage.quarantined} "
                f"({stage.seconds:.2f}s)")
    if report.sources:
        lines.append("vantages:")
        for name in sorted(report.sources):
            source = report.sources[name]
            line = (f"  {name}: weight {source.weight:.4f}, "
                    f"{source.observations} observations, "
                    f"{source.healthy_bins} healthy / "
                    f"{source.quiet_bins} quiet bins, "
                    f"{source.gated_bins} gated, "
                    f"{source.measurable_blocks} measurable blocks")
            if source.quarantine_windows:
                line += (f", quarantined "
                         f"{source.quarantined_seconds:,.0f}s over "
                         f"{len(source.quarantine_windows)} window(s)")
            lines.append(line)
    coverage = report.coverage
    if coverage is not None:
        lines.append("coverage (supervised run):")
        lines.append(f"  blocks planned    {coverage.blocks_planned}")
        lines.append(f"  blocks delivered  {coverage.blocks_delivered}")
        lost = ", ".join(f"{key:#x}" for key in coverage.blocks_lost)
        lines.append(f"  blocks lost       {len(coverage.blocks_lost)}"
                     + (f": {lost}" if lost else ""))
        lines.append("  retry histogram:")
        for attempts, units in coverage.retry_histogram().items():
            lines.append(f"    {attempts} attempt(s): {units} unit(s)")
        retried = [record for record in coverage.shard_attempts
                   if len(record.outcomes) > 1 or record.status != "done"]
        if retried:
            lines.append("  units beyond one clean attempt:")
            for record in retried:
                outcomes = ",".join(record.outcomes) or "-"
                lines.append(f"    {record.unit}: {outcomes} "
                             f"-> {record.status}")
    return "\n".join(lines)


def _render_live_manifest(document: Dict) -> str:
    """Human-readable rendering of a partitioned live-run manifest.

    Deterministic (pinned by a golden test): partitions in plan order,
    restart outcome histories shown only for partitions that needed
    more than one attempt.
    """
    start = float(document.get("start", 0.0))
    watermark = float(document.get("global_watermark", start))
    partitions = document.get("partitions", [])
    lines = [
        f"live run: status={document.get('status', '?')} "
        f"family=IPv{document.get('family', '?')} "
        f"plan={str(document.get('plan_digest', ''))[:12]}",
        f"  start t={start:,.1f}s, global watermark t={watermark:,.1f}s "
        f"({len(partitions)} partitions)",
        "partitions:",
    ]
    for entry in sorted(partitions, key=lambda item: item.get("index", 0)):
        outcomes = list(entry.get("outcomes", []))
        suffix = ""
        if len(outcomes) > 1 or entry.get("status") == "lost":
            suffix = f" [{','.join(outcomes) or '-'}]"
        lines.append(
            f"  {entry.get('unit', '?')}: {entry.get('status', '?'):<11} "
            f"{entry.get('blocks', 0)} blocks "
            f"({entry.get('measurable', 0)} measurable), "
            f"watermark t={float(entry.get('watermark', start)):,.1f}s, "
            f"{entry.get('windows', 0)} windows, "
            f"{entry.get('restarts', 0)} restarts, "
            f"{entry.get('drift_swaps', 0)} drift swaps{suffix}")
    return "\n".join(lines)


def _render_fusion_state(document: Dict) -> str:
    """Per-source sentinel and reliability state of a fused checkpoint.

    Deterministic (pinned by a golden test): sources in roster order,
    quarantine windows in time order.  State is rehydrated through the
    same ``from_dict`` path the restorer uses, so what this prints is
    what a resumed detector would actually trust.
    """
    from .fusion import SourceMonitor

    fusion = document["fusion"]
    names = list(fusion.get("sources", []))
    lines = [f"fused vantages ({len(names)}, "
             f"primary {fusion.get('primary', '?')}):"]
    for name in names:
        monitor = SourceMonitor.from_dict(fusion["monitors"][name])
        sentinel = monitor.sentinel
        state = "healthy"
        if sentinel.suspect_since is not None:
            state = f"SUSPECT since t={sentinel.suspect_since:,.1f}s"
        lines.append(
            f"  {name}: weight {monitor.weight:.4f} ({state}), "
            f"{monitor.observations} observations, "
            f"{monitor.healthy_bins} healthy / "
            f"{monitor.quiet_bins} quiet bins, "
            f"{monitor.gated_bins} gated")
        for left, right in sentinel.quarantined_intervals():
            lines.append(f"    quarantined [{left:,.1f}s, {right:,.1f}s)")
    return "\n".join(lines)


def _cmd_inspect(args: argparse.Namespace) -> int:
    """Pretty-print a metrics snapshot, health report, or checkpoint."""
    explain_block: Optional[int] = None
    if getattr(args, "explain", None):
        try:
            explain_block = int(args.explain, 0)
        except ValueError:
            print(f"--explain takes a block key (decimal or 0x hex), "
                  f"got {args.explain!r}", file=sys.stderr)
            return 1
    # Explain exports are JSONL (header line + one event per line), so
    # they dispatch on the first line before the single-document parse.
    try:
        with open(args.path, "r", encoding="utf-8") as handle:
            first_line = handle.readline().strip()
        header = json.loads(first_line) if first_line else None
    except (OSError, json.JSONDecodeError):
        header = None
    if (isinstance(header, dict)
            and header.get("format") == EXPLAIN_FORMAT):
        try:
            events = read_explain_jsonl(args.path)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"cannot read {args.path}: {error}", file=sys.stderr)
            return 1
        print(format_explain(events, block=explain_block))
        return 0
    if explain_block is not None:
        print(f"{args.path} is not a {EXPLAIN_FORMAT} export; --explain "
              f"applies to --explain-out files", file=sys.stderr)
        return 1
    try:
        with open(args.path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read {args.path}: {error}", file=sys.stderr)
        return 1
    if not isinstance(document, dict):
        print(f"{args.path} is neither a metrics snapshot nor a checkpoint",
              file=sys.stderr)
        return 1
    from .live import LIVE_MANIFEST_FORMAT

    if document.get("format") == SNAPSHOT_FORMAT:
        snapshot = document
    elif document.get("format") == LIVE_MANIFEST_FORMAT:
        print(_render_live_manifest(document))
        return 0
    elif "stages" in document and "dead_letters" in document:
        # A --health-report document: no format marker of its own, but
        # its two mandatory sections distinguish it from the other two
        # inspectable shapes.
        print(_render_health_report(document))
        return 0
    elif "format_version" in document:
        fused = document.get("fusion")
        if fused is not None:
            print(f"fused checkpoint {args.path} "
                  f"(t={float(document.get('last_time', 0.0)):,.1f}s)")
            print(_render_fusion_state(document))
        snapshot = document.get("metrics")
        if snapshot is None:
            if fused is not None:
                return 0
            print(f"{args.path} is a checkpoint without embedded telemetry "
                  f"(it was written by a monitor with metrics off)",
                  file=sys.stderr)
            return 1
        if fused is None:
            print(f"embedded telemetry from checkpoint {args.path} "
                  f"(t={float(document.get('last_time', 0.0)):,.1f}s)")
        else:
            print("embedded telemetry:")
    else:
        print(f"{args.path} is neither a metrics snapshot nor a checkpoint",
              file=sys.stderr)
        return 1
    print(render_snapshot(snapshot))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Run every experiment in sequence (the full paper reproduction)."""
    for name, runner in EXPERIMENTS.items():
        print(f"=== {name} " + "=" * max(0, 60 - len(name)))
        print(runner(scale=args.scale))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-outage",
        description="Passive Internet outage detection (IMC 2022 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate",
                              help="simulate an Internet and write a capture")
    simulate.add_argument("--blocks", type=int, default=500,
                          help="IPv4 /24 block count")
    simulate.add_argument("--v6-blocks", type=int, default=0,
                          help="IPv6 /48 block count")
    simulate.add_argument("--days", type=float, default=2.0,
                          help="simulated days (first half is training)")
    simulate.add_argument("--seed", type=int, default=42)
    simulate.add_argument("--out", default="capture.pobs",
                          help="output capture path")
    simulate.set_defaults(func=_cmd_simulate)

    train = sub.add_parser("train",
                           help="train per-block models from a capture")
    train.add_argument("capture", help="capture file from 'simulate'")
    train.add_argument("--family", type=int, choices=(4, 6), default=4)
    train.add_argument("--train-end", type=float, default=0.0,
                       help="end of the training window (default: capture end)")
    train.add_argument("--out", default="model.json",
                       help="output model path")
    train.set_defaults(func=_cmd_train)

    detect = sub.add_parser("detect",
                            help="detect outages in a capture file")
    detect.add_argument("capture", help="capture file from 'simulate'")
    detect.add_argument("--family", type=int, choices=(4, 6), default=4)
    detect.add_argument("--train-end", type=float, default=0.0,
                        help="training/detection boundary (default: middle)")
    detect.add_argument("--model", default="",
                        help="saved model from 'train' (skips retraining)")
    detect.add_argument("--min-duration", type=float, default=300.0,
                        help="only print outages at least this long")
    detect.add_argument("--health-report", default="",
                        help="write the run health report (JSON) here")
    detect.add_argument("--max-quarantine-frac", type=float, default=0.5,
                        help="fail (exit 3) when more than this fraction "
                             "of blocks is quarantined (1.0 disables)")
    detect.add_argument("--workers", type=int, default=None,
                        help="shard blocks across N worker processes "
                             "(output is bit-identical to --workers 1; "
                             "0 forces the sequential path)")
    detect.add_argument("--shard-chunk", type=int, default=None,
                        help="blocks per shard for --workers (default: "
                             "population/16, independent of N)")
    detect.add_argument("--shard-timeout", type=float, default=None,
                        help="supervise shards: wall-clock seconds one "
                             "shard attempt may run before being killed "
                             "and retried (implies --workers 1 if unset)")
    detect.add_argument("--shard-retries", type=int, default=None,
                        help="supervised attempts beyond the first before "
                             "a failing shard is bisected (default 2)")
    detect.add_argument("--shard-max-rss-mb", type=float, default=None,
                        help="supervise shards: kill an attempt whose "
                             "resident set exceeds this many MB")
    detect.add_argument("--strict-coverage", action="store_true",
                        help="exit 4 when a supervised run completes "
                             "degraded (blocks lost to dying workers)")
    detect.add_argument("--metrics-out", default="",
                        help="write the run's metrics snapshot (JSON) here")
    detect.add_argument("--trace-out", default="",
                        help="write a Chrome-trace JSON of the run's "
                             "stage spans here")
    detect.add_argument("--explain-out", default="",
                        help="write the decision-provenance explain log "
                             "(JSONL) here")
    detect.add_argument("--obs-port", type=int, default=None,
                        help="serve /metrics, /metrics.json, /health, "
                             "/trace, /events on this port while the run "
                             "is live (0 = ephemeral)")
    detect.set_defaults(func=_cmd_detect)

    live = sub.add_parser("live",
                          help="replay a capture through the resilient "
                               "live-monitor path")
    live.add_argument("capture", help="capture file to replay as a stream")
    live.add_argument("--model", required=True,
                      help="saved model from 'train'")
    live.add_argument("--family", type=int, choices=(4, 6), default=4)
    live.add_argument("--checkpoint", default="",
                      help="checkpoint path (a directory in partitioned "
                           "mode); resumes from it when present")
    live.add_argument("--checkpoint-every", type=float, default=3600.0,
                      help="stream-seconds between checkpoints")
    live.add_argument("--checkpoint-keep", type=int, default=3,
                      help="checkpoint generations kept per detector "
                           "(resume falls back past corrupt ones)")
    live.add_argument("--partitions", type=int, default=None,
                      help="partition the keyspace across this many "
                           "supervised worker processes")
    live.add_argument("--partition-chunk", type=int, default=None,
                      help="blocks per partition (overrides --partitions; "
                           "the plan hashes the population, not the "
                           "worker count)")
    live.add_argument("--partition-timeout", type=float, default=None,
                      help="seconds of heartbeat silence (with work "
                           "outstanding) before a partition counts as "
                           "hung")
    live.add_argument("--partition-retries", type=int, default=None,
                      help="restarts-from-checkpoint granted per "
                           "partition before its blocks are dead-lettered "
                           "as lost coverage (default 2)")
    live.add_argument("--partition-max-rss-mb", type=float, default=None,
                      help="kill and restart a partition whose RSS "
                           "exceeds this many MB")
    live.add_argument("--strict-coverage", action="store_true",
                      help="exit 4 when partitions exhausted their "
                           "restart budget and blocks were lost")
    live.add_argument("--drift-audit-every", type=float, default=0.0,
                      help="audit per-block arrival rates for drift every "
                           "this many stream-seconds (0 disables)")
    live.add_argument("--drift-window", type=float, default=None,
                      help="rate-audit lookback window (default: the "
                           "audit interval)")
    live.add_argument("--drift-factor", type=float, default=2.0,
                      help="flag a block whose windowed rate differs from "
                           "its trained rate by at least this factor")
    live.add_argument("--drift-min-arrivals", type=int, default=20,
                      help="minimum windowed arrivals before a block's "
                           "rate is judged at all")
    live.add_argument("--sentinel", action="store_true",
                      help="quarantine feed-level quiet periods "
                           "(observer failure) instead of reporting "
                           "mass outages")
    live.add_argument("--reorder-horizon", type=float, default=0.0,
                      help="re-sort out-of-order arrivals within this "
                           "many seconds")
    live.add_argument("--tolerant", action="store_true",
                      help="stop cleanly at the last good frame of a "
                           "corrupt capture")
    live.add_argument("--min-duration", type=float, default=300.0,
                      help="only print outages at least this long")
    live.add_argument("--health-report", default="",
                      help="write the run health report (JSON) here")
    live.add_argument("--max-quarantine-frac", type=float, default=0.5,
                      help="fail (exit 3) when more than this fraction "
                           "of blocks is quarantined (1.0 disables)")
    live.add_argument("--metrics-out", default="",
                      help="write the run's metrics snapshot (JSON) here")
    live.add_argument("--trace-out", default="",
                      help="write a Chrome-trace JSON of the run's "
                           "stage spans here")
    live.add_argument("--metrics-interval", type=float, default=0.0,
                      help="print a telemetry one-liner to stderr every "
                           "this many stream-seconds (0 disables)")
    live.add_argument("--explain-out", default="",
                      help="write the decision-provenance explain log "
                           "(JSONL) here")
    live.add_argument("--obs-port", type=int, default=None,
                      help="serve /metrics, /metrics.json, /health, "
                           "/trace, /events on this port while the run "
                           "is live (0 = ephemeral)")
    live.set_defaults(func=_cmd_live)

    serve = sub.add_parser("serve",
                           help="replay a capture behind the query/"
                                "subscribe serving plane")
    serve.add_argument("capture", help="capture file to replay as a stream")
    serve.add_argument("--model", required=True,
                       help="saved model from 'train'")
    serve.add_argument("--family", type=int, choices=(4, 6), default=4)
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for the serving plane")
    serve.add_argument("--port", type=int, default=0,
                       help="serving-plane port (0 = ephemeral; the bound "
                            "URL is printed to stderr)")
    serve.add_argument("--max-clients", type=int, default=1024,
                       help="connection ceiling; excess connects are shed "
                            "with 503 + Retry-After")
    serve.add_argument("--max-subscribers", type=int, default=256,
                       help="WebSocket subscription ceiling")
    serve.add_argument("--max-lag-s", type=float, default=60.0,
                       help="/ready flips not-ready when the published "
                            "snapshot is older than this")
    serve.add_argument("--shed-qps", type=float, default=0.0,
                       help="per-endpoint query token-bucket rate "
                            "(0 disables shedding)")
    serve.add_argument("--stale-after-s", type=float, default=30.0,
                       help="stamp responses degraded:stale past this "
                            "snapshot age")
    serve.add_argument("--fail-stale-after-s", type=float, default=0.0,
                       help="refuse queries (503) past this snapshot age "
                            "(0 = always serve-stale-with-flag)")
    serve.add_argument("--publish-every-s", type=float, default=0.25,
                       help="minimum seconds between snapshot "
                            "publications while replaying")
    serve.add_argument("--linger-s", type=float, default=-1.0,
                       help="keep serving this long after the capture is "
                            "exhausted (-1 = until SIGTERM/SIGINT)")
    serve.add_argument("--reorder-horizon", type=float, default=0.0,
                       help="re-sort out-of-order arrivals within this "
                            "many seconds")
    serve.add_argument("--tolerant", action="store_true",
                       help="stop cleanly at the last good frame of a "
                            "corrupt capture")
    serve.add_argument("--metrics-out", default="",
                       help="write the run's metrics snapshot (JSON) here")
    serve.set_defaults(func=_cmd_serve)

    experiment = sub.add_parser("experiment",
                                help="reproduce one paper table/figure")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--scale", type=float, default=1.0,
                            help="population scale factor (1.0 = recorded)")
    experiment.add_argument("--workers", type=int, default=None,
                            help="default worker count for pipelines the "
                                 "experiment builds internally")
    experiment.add_argument("--shard-chunk", type=int, default=None,
                            help="blocks per shard for --workers")
    experiment.add_argument("--metrics-out", default="",
                            help="write the run's metrics snapshot "
                                 "(JSON) here")
    experiment.add_argument("--trace-out", default="",
                            help="write a Chrome-trace JSON of the run's "
                                 "stage spans here")
    experiment.add_argument("--explain-out", default="",
                            help="write the decision-provenance explain "
                                 "log (JSONL) here")
    experiment.add_argument("--obs-port", type=int, default=None,
                            help="serve /metrics, /metrics.json, /health, "
                                 "/trace, /events on this port while the "
                                 "run is live (0 = ephemeral)")
    experiment.set_defaults(func=_cmd_experiment)

    inspect = sub.add_parser("inspect",
                             help="pretty-print a metrics snapshot, a "
                                  "health report, a live-run manifest, "
                                  "or a checkpoint's embedded telemetry")
    inspect.add_argument("path",
                         help="metrics JSON from --metrics-out, a health "
                              "report from --health-report, a live "
                              "manifest from a partitioned run's "
                              "checkpoint dir, a checkpoint file, or an "
                              "explain JSONL from --explain-out")
    inspect.add_argument("--explain", default=None, metavar="BLOCK",
                         help="render the decision-provenance audit trail "
                              "for one block (decimal or 0x hex key) from "
                              "an --explain-out JSONL export")
    inspect.set_defaults(func=_cmd_inspect)

    report = sub.add_parser("report", help="reproduce every table and figure")
    report.add_argument("--scale", type=float, default=1.0)
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

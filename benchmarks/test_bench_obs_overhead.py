"""Telemetry overhead benchmark: the no-op registry must be free.

Not a paper artefact — this pins the cost contract of the ``repro.obs``
subsystem: a detector constructed without a registry runs against
``NULL_REGISTRY``, whose counters and histograms are no-op calls, so an
uninstrumented deployment must pay (essentially) nothing for the
instrumentation hooks compiled into the hot path.

The guard here is an assertion, not just a number: the no-op-metered
``guarded_belief_pass`` must run within 5% of the unmetered one.  Both
sides are measured as a best-of-N minimum (minimum, not mean, because
scheduler noise only ever adds time), and a small absolute slack floor
keeps the ratio test meaningful when a single pass is microseconds.

``pytest benchmarks/test_bench_obs_overhead.py -s`` also prints the
measured timings, and CI saves them as the ``BENCH_obs.json`` artefact.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core.belief import guarded_belief_pass
from repro.core.pipeline import PassiveOutagePipeline
from repro.net.addr import Family
from repro.obs.explain import ExplainLog
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.tracing import SpanTracer

N_BLOCKS = 2000
N_BINS = 288          # one day of five-minute bins
REPEATS = 9
MAX_OVERHEAD_FRAC = 0.05
ABSOLUTE_SLACK_SECONDS = 2e-4
DAY = 86400.0
#: The full plane (registry + tracer + explain, all enabled) may cost
#: something real, but observability must never dominate detection.
MAX_PLANE_FRAC = 0.5


def save_artefact(section, timings):
    """Merge one benchmark section into the BENCH_obs.json artefact."""
    artefact = os.environ.get("REPRO_BENCH_OBS_OUT")
    if not artefact:
        return
    document = {}
    if os.path.exists(artefact):
        with open(artefact, "r", encoding="utf-8") as handle:
            try:
                document = json.load(handle)
            except ValueError:
                document = {}
    if not isinstance(document, dict):
        document = {}
    document[section] = timings
    with open(artefact, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    counts = rng.poisson(3.0, size=(N_BLOCKS, N_BINS)).astype(np.int32)
    return {
        "counts": counts,
        "p_empty_up": np.full(N_BLOCKS, 0.01),
        "noise_nonempty": np.full(N_BLOCKS, 1e-5),
        "prior_down": np.full(N_BLOCKS, 0.002),
        "prior_up_recovery": np.full(N_BLOCKS, 0.08),
    }


def paired_overhead(repeats, first, second):
    """Median per-round difference between two closures.

    Machine throughput drifts on the scale of a whole benchmark run
    (frequency scaling, noisy neighbours), so timing all of A then all
    of B attributes the drift to whichever ran second — enough to fail
    a 5 % budget on its own.  Instead each round times the closures
    back to back, when conditions are as equal as they get, and the
    overhead estimate is the *median* of the per-round differences: a
    real constant overhead appears in every pair, while a drift spike
    lands in a single round and is discarded.  Returns the estimate
    plus each side's best-of-N for reporting.
    """
    diffs = []
    best_first = best_second = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        first()
        first_s = time.perf_counter() - start
        start = time.perf_counter()
        second()
        second_s = time.perf_counter() - start
        diffs.append(second_s - first_s)
        best_first = min(best_first, first_s)
        best_second = min(best_second, second_s)
    diffs.sort()
    return diffs[len(diffs) // 2], best_first, best_second


def test_null_registry_overhead_under_five_percent(workload):
    """Filter 2,000 blocks x 288 bins with and without no-op metrics."""
    def bare():
        guarded_belief_pass(**workload)

    def metered():
        guarded_belief_pass(**workload, metrics=NULL_REGISTRY)

    # Warm both paths before timing.
    bare()
    metered()
    overhead, bare_s, metered_s = paired_overhead(REPEATS, bare, metered)
    budget = bare_s * MAX_OVERHEAD_FRAC + ABSOLUTE_SLACK_SECONDS

    timings = {
        "workload": f"guarded_belief_pass {N_BLOCKS}x{N_BINS}",
        "repeats": REPEATS,
        "bare_best_seconds": bare_s,
        "noop_metered_best_seconds": metered_s,
        "overhead_median_pair_seconds": overhead,
        "overhead_budget_seconds": budget,
        "max_overhead_frac": MAX_OVERHEAD_FRAC,
    }
    print("\nobs overhead:", json.dumps(timings, indent=2))
    save_artefact("null_registry", timings)

    assert overhead <= budget, (
        f"no-op registry added {overhead * 1e3:.3f}ms to a "
        f"{bare_s * 1e3:.3f}ms pass (budget {budget * 1e3:.3f}ms); "
        f"the NULL_REGISTRY fast path has regressed")


def test_real_registry_records_and_stays_bounded(workload):
    """Sanity companion: a live registry counts the work it observed.

    No latency assertion here — a real histogram observe is allowed to
    cost something — but the recorded totals must match the workload,
    proving the benchmark above exercised the instrumented branch.
    """
    registry = MetricsRegistry()
    guarded_belief_pass(**workload, metrics=registry)
    assert (registry.get("belief_bins_total").labels(path="single").value
            == N_BLOCKS * N_BINS)
    ((_, histogram),) = registry.get("belief_pass_seconds").series()
    assert histogram.count == 1
    assert histogram.sum > 0


@pytest.fixture(scope="module")
def detection_workload():
    """A small trained model plus the stream it detects over."""
    rng = np.random.default_rng(7)
    per_block = {
        key << 8: np.sort(rng.uniform(0.0, DAY,
                                      rng.poisson(0.05 * DAY)))
        for key in range(8)
    }
    model = PassiveOutagePipeline(aggregation_levels=0).train(
        Family.IPV4, per_block, 0.0, DAY)
    return model, per_block


def test_full_observability_plane_cost_is_bounded(detection_workload):
    """Detect with the whole plane enabled vs the no-op defaults.

    The null-object test above pins the *off* switch near zero; this
    pins the *on* switch to a sane ceiling — registry, tracer, and
    explain log together must stay a fraction of the detection work
    itself, or piggybacked telemetry would throttle live partitions.
    """
    model, per_block = detection_workload

    def plane_off():
        PassiveOutagePipeline(aggregation_levels=0).detect(
            model, per_block, 0.0, DAY)

    def plane_on():
        pipeline = PassiveOutagePipeline(
            aggregation_levels=0, metrics=MetricsRegistry(),
            tracer=SpanTracer())
        pipeline.detector.explain = ExplainLog()
        pipeline.detect(model, per_block, 0.0, DAY)

    plane_off()
    plane_on()
    overhead, off_s, on_s = paired_overhead(REPEATS, plane_off, plane_on)
    budget = off_s * MAX_PLANE_FRAC + ABSOLUTE_SLACK_SECONDS

    timings = {
        "workload": f"batch detect {len(per_block)} blocks x 1 day",
        "repeats": REPEATS,
        "plane_off_best_seconds": off_s,
        "plane_on_best_seconds": on_s,
        "overhead_median_pair_seconds": overhead,
        "overhead_budget_seconds": budget,
        "max_plane_frac": MAX_PLANE_FRAC,
    }
    print("\nplane cost:", json.dumps(timings, indent=2))
    save_artefact("full_plane", timings)

    assert overhead <= budget, (
        f"the enabled observability plane added {overhead * 1e3:.3f}ms "
        f"to a {off_s * 1e3:.3f}ms detect "
        f"(budget {budget * 1e3:.3f}ms)")
    # The timed run really exercised the instrumented branches.
    registry, tracer = MetricsRegistry(), SpanTracer()
    pipeline = PassiveOutagePipeline(aggregation_levels=0,
                                     metrics=registry, tracer=tracer)
    pipeline.detector.explain = ExplainLog()
    pipeline.detect(model, per_block, 0.0, DAY)
    assert (registry.get("belief_bins_total").labels(path="single").value
            > 0)
    assert any(span.name == "detect" for span in tracer.spans)

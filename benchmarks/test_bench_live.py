"""Partitioned live throughput benchmark: 4 partitions vs in-process.

Not a paper artefact — this pins the performance contract of the
``repro.live`` subsystem: on a machine with spare cores, streaming a
synthetic weeklong 1,536-block capture through four supervised
partition workers must not be slower than the single-process streaming
detector.  The partitioned parent does strictly less work per record
(an owner lookup and a batched pipe send) than the detector's bin
arithmetic, so if partitioning ever stops paying for its plumbing the
routing or replay bookkeeping has regressed.

The equivalence contract (bit-for-bit identical verdicts, merged
health, counters) is pinned separately by ``tests/test_live.py``; this
file asserts only the throughput.  On hosts without enough cores the
assertion is skipped but the timings are still printed and written to
the artefact.

``pytest benchmarks/test_bench_live.py -s`` prints the measured
timings, and CI saves them as the ``BENCH_live.json`` artefact.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core.detector import StreamingDetector
from repro.core.pipeline import PassiveOutagePipeline
from repro.live import LivePartitionSupervisor
from repro.net.addr import Family
from repro.obs.metrics import NULL_REGISTRY
from repro.telescope.capture import CaptureReader, CaptureWriter
from repro.telescope.records import ObservationBatch

WEEK = 7 * 86400.0
DAY = 86400.0
N_BLOCKS = 1536
PARTITIONS = 4
REPEATS = 2               # best-of-N; spawn cost is paid on every run
MIN_CORES = PARTITIONS + 1  # workers plus the routing parent


def poisson_times(rng, rate, start, end):
    n = rng.poisson(rate * (end - start))
    return np.sort(rng.uniform(start, end, n))


@pytest.fixture(scope="module")
def weeklong_live(tmp_path_factory):
    """A model trained on day one, plus the full week as a capture.

    Days two through seven replay as the live stream.  Rates are kept
    low (~0.002/s per block) so the stream totals a couple of million
    records — enough that per-record overhead dominates any fixed
    cost, small enough that the benchmark stays in CI budget.
    """
    rng = np.random.default_rng(31)
    per_block = {k << 8: poisson_times(rng, 0.0015 + 0.0001 * (k % 8),
                                       0.0, WEEK)
                 for k in range(N_BLOCKS)}
    trainer = PassiveOutagePipeline(aggregation_levels=0, workers=0)
    model = trainer.train(Family.IPV4,
                          {key: times[times < DAY]
                           for key, times in per_block.items()},
                          0.0, DAY)

    batch = ObservationBatch.concatenate([
        ObservationBatch(Family.IPV4, times, [key] * len(times))
        for key, times in per_block.items()
    ]).sorted_by_time()
    capture = str(tmp_path_factory.mktemp("bench_live") / "week.pobs")
    with CaptureWriter(capture) as writer:
        writer.write_batch(batch)
    return model, capture, len(batch)


def timed_single(model, capture):
    best, observed = float("inf"), 0
    for _ in range(REPEATS):
        detector = StreamingDetector(model.family, model.histories,
                                     model.parameters, model.train_end,
                                     sentinel=None, metrics=NULL_REGISTRY)
        observed = 0
        start = time.perf_counter()
        with CaptureReader(capture) as reader:
            for observation in reader:
                if observation.time < detector.start:
                    continue
                detector.observe(observation)
                observed += 1
        detector.finalize(detector.last_time)
        best = min(best, time.perf_counter() - start)
    return best, observed


def timed_partitioned(model, capture):
    best = float("inf")
    for _ in range(REPEATS):
        supervisor = LivePartitionSupervisor(
            model, partitions=PARTITIONS, metrics=NULL_REGISTRY)
        start = time.perf_counter()
        result = supervisor.run(capture)
        best = min(best, time.perf_counter() - start)
        assert not result.degraded and result.restarts == 0
    return best


def test_partitioned_live_keeps_up_with_single_process(weeklong_live):
    model, capture, records = weeklong_live
    single_s, observed = timed_single(model, capture)
    pooled_s = timed_partitioned(model, capture)

    speedup = single_s / pooled_s if pooled_s > 0 else float("inf")
    cores = os.cpu_count() or 1
    timings = {
        "workload": f"streaming live {N_BLOCKS} blocks x 1 week",
        "records": records,
        "live_records": observed,
        "repeats": REPEATS,
        "cpu_count": cores,
        "partitions": PARTITIONS,
        "single_process_best_seconds": single_s,
        "partitioned_best_seconds": pooled_s,
        "single_records_per_second": observed / single_s,
        "partitioned_records_per_second": observed / pooled_s,
        "speedup": speedup,
        "asserted": cores >= MIN_CORES,
    }
    print("\nlive partition throughput:", json.dumps(timings, indent=2))
    artefact = os.environ.get("REPRO_BENCH_LIVE_OUT")
    if artefact:
        with open(artefact, "w", encoding="utf-8") as handle:
            json.dump(timings, handle, indent=2)
            handle.write("\n")

    if cores < MIN_CORES:
        pytest.skip(f"{cores} CPU(s): {PARTITIONS} partition workers plus "
                    f"a routing parent cannot beat one process without "
                    f"spare cores")
    assert speedup >= 1.0, (
        f"partitioned live ran {pooled_s:.2f}s vs {single_s:.2f}s "
        f"single-process ({speedup:.2f}x); partitioning no longer pays "
        f"for its routing and replay bookkeeping")

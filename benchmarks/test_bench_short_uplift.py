"""Secondary claim: short outages add up.

Paper: adding the previously-omitted 5–11-minute outages increases
total observed outage duration by ~20 %.
"""

from repro.experiments import run_short_uplift


def test_bench_short_uplift(benchmark, bench_scale):
    result = benchmark.pedantic(run_short_uplift,
                                kwargs={"scale": bench_scale},
                                rounds=1, iterations=1)
    print()
    print(result.text)
    print("  [paper: ~20% increase]")
    assert result.short_events > 0
    assert 0.08 < result.uplift < 0.40

"""Table 2: long-duration outage confusion matrix on dense blocks.

Paper: precision 0.99, recall 0.99, TNR 0.96 (seconds).
"""

from repro.experiments import run_table2


def test_bench_table2(benchmark, bench_scale):
    result = benchmark.pedantic(run_table2, kwargs={"scale": bench_scale},
                                rounds=1, iterations=1)
    print()
    print(result.text)
    print(f"  [paper: precision {result.paper['precision']}, "
          f"recall {result.paper['recall']}, tnr {result.paper['tnr']}]")
    confusion = result.confusion
    assert confusion.precision > 0.995
    assert confusion.recall > 0.995
    assert confusion.tnr > 0.85

"""Baseline comparison: our detector vs CUSUM and Chocolatine.

The paper's framing: prior passive systems are "too inflexible, fixed
parameters across the whole internet with CUSUM-like change detection",
or operate at AS granularity (Chocolatine).  All three run over the
same simulated day and are scored against the same truth.
"""

from repro.experiments import run_baseline_comparison


def test_bench_baselines(benchmark, bench_scale):
    result = benchmark.pedantic(run_baseline_comparison,
                                kwargs={"scale": bench_scale},
                                rounds=1, iterations=1)
    print()
    print(result.text)
    assert result.ours.tnr >= result.cusum.tnr - 0.05
    assert result.chocolatine.tnr < 0.3
    assert result.ours.precision > 0.995

"""Extension bench: darknet fusion (the poster's stated future work).

Adding a darknet telescope as a second passive source raises coverage
(blocks sparse at one vantage are loud at the other) and outage
detection, at unchanged precision.  Two fusion shapes run side by
side: the naive packet-merge retrain, and the deployable
evidence-fusion layer (``repro.fusion``: per-source models and
sentinels, reliability-weighted log-likelihoods).  The layered
detector path must clear the same precision bar as the merge while
strictly beating the DNS-only coverage — otherwise graceful
degradation was bought with accuracy, which is not a trade this
system makes.

``pytest benchmarks/test_bench_fusion.py -s`` prints the comparison,
and CI saves it as the ``BENCH_fusion.json`` artefact.
"""

import json
import os

from repro.experiments import run_darknet_fusion


def test_bench_fusion(benchmark, bench_scale):
    result = benchmark.pedantic(run_darknet_fusion,
                                kwargs={"scale": bench_scale},
                                rounds=1, iterations=1)
    print()
    print(result.text)

    out = os.environ.get("REPRO_BENCH_FUSION_OUT")
    if out:
        with open(out, "w") as handle:
            json.dump({
                "scale": bench_scale,
                "coverage": {
                    "dns": result.dns_coverage,
                    "darknet": result.darknet_coverage,
                    "merged": result.fused_coverage,
                    "layered": result.layered_coverage,
                },
                "precision": {
                    "dns": result.dns_confusion.precision,
                    "darknet": result.darknet_confusion.precision,
                    "merged": result.fused_confusion.precision,
                    "layered": result.layered_confusion.precision,
                },
                "tnr": {
                    "dns": result.dns_confusion.tnr,
                    "darknet": result.darknet_confusion.tnr,
                    "merged": result.fused_confusion.tnr,
                    "layered": result.layered_confusion.tnr,
                },
            }, handle, indent=2, sort_keys=True)

    assert result.fused_coverage >= result.dns_coverage
    assert result.fused_confusion.tnr >= result.dns_confusion.tnr - 0.02
    assert result.fused_confusion.precision > 0.995
    # The fused detector path: no precision paid for fault tolerance,
    # and strictly more of the population measurable than DNS alone.
    assert result.layered_coverage > result.dns_coverage
    assert result.layered_confusion.tnr >= result.dns_confusion.tnr - 0.02
    assert result.layered_confusion.precision > 0.995

"""Extension bench: darknet fusion (the poster's stated future work).

Adding a darknet telescope as a second passive source raises coverage
(blocks sparse at one vantage are loud at the other) and outage
detection, at unchanged precision.
"""

from repro.experiments import run_darknet_fusion


def test_bench_fusion(benchmark, bench_scale):
    result = benchmark.pedantic(run_darknet_fusion,
                                kwargs={"scale": bench_scale},
                                rounds=1, iterations=1)
    print()
    print(result.text)
    assert result.fused_coverage >= result.dns_coverage
    assert result.fused_confusion.tnr >= result.dns_confusion.tnr - 0.02
    assert result.fused_confusion.precision > 0.995

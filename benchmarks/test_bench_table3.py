"""Table 3: short-duration outage confusion matrix vs RIPE, by events.

Paper: precision 0.97692, recall 0.9453, TNR 0.7341 (events).
"""

from repro.experiments import run_table3


def test_bench_table3(benchmark, bench_scale):
    result = benchmark.pedantic(run_table3, kwargs={"scale": bench_scale},
                                rounds=1, iterations=1)
    print()
    print(result.text)
    print(f"  [paper: precision {result.paper['precision']}, "
          f"recall {result.paper['recall']}, tnr {result.paper['tnr']}] "
          f"({result.compared_blocks} blocks with both signals)")
    confusion = result.confusion
    assert confusion.precision > 0.9
    assert confusion.recall > 0.88
    assert confusion.tnr > 0.55

"""Benchmark configuration.

Every benchmark regenerates one of the paper's artefacts and prints it,
so ``pytest benchmarks/ --benchmark-only -s`` reproduces the full
evaluation.  ``BENCH_SCALE`` shrinks the simulated populations relative
to the calibrated scale-1.0 runs recorded in EXPERIMENTS.md; override
with ``REPRO_BENCH_SCALE=1.0`` for the full-size run.
"""

import os

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE

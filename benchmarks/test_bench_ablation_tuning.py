"""Ablation: per-block parameter tuning vs homogeneous parameters.

The design choice DESIGN.md calls out: prior passive systems share one
parameter set across the Internet.  A fixed fine bin keeps precision
but collapses coverage to the dense slice; a fixed coarse bin recovers
coverage but loses short-outage sensitivity.  Per-block tuning holds
both.
"""

from repro.experiments import run_tuning_ablation


def test_bench_ablation_tuning(benchmark, bench_scale):
    result = benchmark.pedantic(run_tuning_ablation,
                                kwargs={"scale": bench_scale},
                                rounds=1, iterations=1)
    print()
    print(result.text)
    assert result.tuned_coverage > result.homogeneous[300.0] + 0.3
    assert result.tuned_coverage >= result.homogeneous[3600.0]
    assert result.tuned_confusion.precision > 0.995

"""Micro-benchmarks of the pipeline's hot paths.

Not a paper artefact — these track the throughput that makes a
country-scale deployment feasible: the vectorised belief filter, the
binning kernel, capture serialisation, and the DNS codec.
"""

import io

import numpy as np
import pytest

from repro.core.belief import vector_belief_pass
from repro.dns.message import Message, QType
from repro.dns.name import Name
from repro.dns.rootserver import RootServer, RootZone
from repro.net.addr import Family
from repro.telescope.aggregate import BinGrid, binned_counts
from repro.telescope.capture import read_batches, write_batches
from repro.telescope.records import ObservationBatch


@pytest.fixture(scope="module")
def count_matrix():
    rng = np.random.default_rng(0)
    counts = rng.poisson(3.0, size=(5000, 288)).astype(np.int32)
    return counts


def test_bench_vector_belief_pass(benchmark, count_matrix):
    """Filter 5,000 blocks x 288 five-minute bins (one day)."""
    n_blocks = count_matrix.shape[0]
    p_empty = np.full(n_blocks, 0.01)
    noise = np.full(n_blocks, 1e-5)
    prior_down = np.full(n_blocks, 0.002)
    prior_up = np.full(n_blocks, 0.08)
    states, _ = benchmark(vector_belief_pass, count_matrix, p_empty, noise,
                          prior_down, prior_up)
    assert states.shape == count_matrix.shape


def test_bench_binned_counts(benchmark):
    """Bin 1M arrivals across 2,000 blocks."""
    rng = np.random.default_rng(1)
    keys = list(range(2000))
    per_block = {key: np.sort(rng.uniform(0, 86400.0, 500))
                 for key in keys}
    grid = BinGrid(0, 86400.0, 300.0)
    counts = benchmark(binned_counts, keys, per_block, grid)
    assert counts.sum() == 2000 * 500


def test_bench_capture_roundtrip(benchmark):
    """Serialise + parse 200k observations."""
    rng = np.random.default_rng(2)
    batch = ObservationBatch(
        Family.IPV4,
        np.sort(rng.uniform(0, 86400.0, 200_000)),
        rng.integers(0, 1 << 24, 200_000).astype(np.uint64))

    def roundtrip():
        buffer = io.BytesIO()
        write_batches(buffer, batch)
        buffer.seek(0)
        return read_batches(buffer)

    got4, _ = benchmark(roundtrip)
    assert len(got4) == 200_000


def test_bench_dns_server(benchmark):
    """Answer 1,000 root queries through the full wire path."""
    server = RootServer(RootZone.synthetic(["com", "net", "org", "io"]))
    queries = [Message.query(Name.parse(f"host{i}.com"), QType.A, i).encode()
               for i in range(1000)]

    def serve():
        return sum(server.handle_wire(q) is not None for q in queries)

    answered = benchmark(serve)
    assert answered == 1000


def test_bench_streaming_detector(benchmark):
    """Stream one day of observations for 200 blocks through the
    online detector (the deployment path's throughput)."""
    from repro.core.detector import StreamingDetector
    from repro.core.history import train_histories
    from repro.core.parameters import ParameterPlanner
    from repro.telescope.records import Observation
    from repro.traffic.sources import poisson_times

    rng = np.random.default_rng(3)
    day = 86400.0
    train = {key: poisson_times(rng, 0.05, 0, day) for key in range(200)}
    histories = train_histories(train, 0, day)
    parameters = ParameterPlanner().plan(histories)
    rows = sorted(
        Observation(float(t), Family.IPV4, int(key) << 8)
        for key, times in train.items() for t in times)

    def stream_day():
        detector = StreamingDetector(Family.IPV4, histories, parameters,
                                     0.0)
        for row in rows:
            detector.observe(row)
        return detector.finalize(day)

    results = benchmark(stream_day)
    assert len(results) == sum(p.measurable for p in parameters.values())

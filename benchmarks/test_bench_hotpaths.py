"""Micro-benchmarks of the pipeline's hot paths.

Not a paper artefact — these track the throughput that makes a
country-scale deployment feasible: the vectorised belief filter, the
binning kernel, capture serialisation, and the DNS codec.
"""

import io

import numpy as np
import pytest

from repro.core.belief import vector_belief_pass
from repro.dns.message import Message, QType
from repro.dns.name import Name
from repro.dns.rootserver import RootServer, RootZone
from repro.net.addr import Family
from repro.telescope.aggregate import BinGrid, binned_counts
from repro.telescope.capture import read_batches, write_batches
from repro.telescope.records import ObservationBatch


@pytest.fixture(scope="module")
def count_matrix():
    rng = np.random.default_rng(0)
    counts = rng.poisson(3.0, size=(5000, 288)).astype(np.int32)
    return counts


def test_bench_vector_belief_pass(benchmark, count_matrix):
    """Filter 5,000 blocks x 288 five-minute bins (one day)."""
    n_blocks = count_matrix.shape[0]
    p_empty = np.full(n_blocks, 0.01)
    noise = np.full(n_blocks, 1e-5)
    prior_down = np.full(n_blocks, 0.002)
    prior_up = np.full(n_blocks, 0.08)
    states, _ = benchmark(vector_belief_pass, count_matrix, p_empty, noise,
                          prior_down, prior_up)
    assert states.shape == count_matrix.shape


def test_bench_binned_counts(benchmark):
    """Bin 1M arrivals across 2,000 blocks."""
    rng = np.random.default_rng(1)
    keys = list(range(2000))
    per_block = {key: np.sort(rng.uniform(0, 86400.0, 500))
                 for key in keys}
    grid = BinGrid(0, 86400.0, 300.0)
    counts = benchmark(binned_counts, keys, per_block, grid)
    assert counts.sum() == 2000 * 500


def test_bench_capture_roundtrip(benchmark):
    """Serialise + parse 200k observations."""
    rng = np.random.default_rng(2)
    batch = ObservationBatch(
        Family.IPV4,
        np.sort(rng.uniform(0, 86400.0, 200_000)),
        rng.integers(0, 1 << 24, 200_000).astype(np.uint64))

    def roundtrip():
        buffer = io.BytesIO()
        write_batches(buffer, batch)
        buffer.seek(0)
        return read_batches(buffer)

    got4, _ = benchmark(roundtrip)
    assert len(got4) == 200_000


def test_bench_dns_server(benchmark):
    """Answer 1,000 root queries through the full wire path."""
    server = RootServer(RootZone.synthetic(["com", "net", "org", "io"]))
    queries = [Message.query(Name.parse(f"host{i}.com"), QType.A, i).encode()
               for i in range(1000)]

    def serve():
        return sum(server.handle_wire(q) is not None for q in queries)

    answered = benchmark(serve)
    assert answered == 1000


def test_bench_streaming_detector(benchmark):
    """Stream one day of observations for 200 blocks through the
    online detector (the deployment path's throughput)."""
    from repro.core.detector import StreamingDetector
    from repro.core.history import train_histories
    from repro.core.parameters import ParameterPlanner
    from repro.telescope.records import Observation
    from repro.traffic.sources import poisson_times

    rng = np.random.default_rng(3)
    day = 86400.0
    train = {key: poisson_times(rng, 0.05, 0, day) for key in range(200)}
    histories = train_histories(train, 0, day)
    parameters = ParameterPlanner().plan(histories)
    rows = sorted(
        Observation(float(t), Family.IPV4, int(key) << 8)
        for key, times in train.items() for t in times)

    def stream_day():
        detector = StreamingDetector(Family.IPV4, histories, parameters,
                                     0.0)
        for row in rows:
            detector.observe(row)
        return detector.finalize(day)

    results = benchmark(stream_day)
    assert len(results) == sum(p.measurable for p in parameters.values())


# ---------------------------------------------------------------------------
# columnar streaming belief engine: scalar-vs-columnar speedup gate
# ---------------------------------------------------------------------------

#: the acceptance floor for this PR: batching all bin closes that share
#: a boundary must cut streaming bin-close wall time (and the batched
#: tune stage) by at least this factor on the weeklong synthetic.
BELIEF_SPEEDUP_FLOOR = 5.0
WEEK = 7 * 86400.0
GRID_SECONDS = 300.0
#: tuned bin ladder (all multiples of the drive grid, so every close
#: lands inside a timed ``advance`` call rather than packet catch-up).
BELIEF_LADDER = (300.0, 600.0, 1200.0, 1800.0, 3600.0, 7200.0)


def save_belief_artefact(section, payload):
    """Merge one section into the BENCH_belief.json artefact."""
    import json
    import os

    artefact = os.environ.get("REPRO_BENCH_BELIEF_OUT")
    if not artefact:
        return
    document = {}
    if os.path.exists(artefact):
        with open(artefact, "r", encoding="utf-8") as handle:
            try:
                document = json.load(handle)
            except ValueError:
                document = {}
    if not isinstance(document, dict):
        document = {}
    document[section] = payload
    with open(artefact, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")


@pytest.fixture(scope="module")
def belief_population(bench_scale):
    """A 1,536-block weeklong synthetic population (scaled), mixed
    across the bin ladder, half diurnal, plus its observation stream."""
    from repro.core.history import BlockHistory
    from repro.core.parameters import BlockParameters
    from repro.telescope.records import Observation

    rng = np.random.default_rng(17)
    n_blocks = max(64, int(1536 * bench_scale))
    histories = {}
    parameters = {}
    times_list = []
    keys_list = []
    for index in range(n_blocks):
        key = index + 1
        bin_seconds = BELIEF_LADDER[index % len(BELIEF_LADDER)]
        rate = 1.0 / 1800.0
        diurnal = None
        weekly = None
        if index % 2 == 0:
            profile = 1.0 + 0.4 * np.sin(
                2 * np.pi * (np.arange(24) + index % 24) / 24.0)
            diurnal = profile / profile.mean()
            week_profile = 1.0 + 0.1 * np.cos(
                2 * np.pi * np.arange(7) / 7.0)
            weekly = week_profile / week_profile.mean()
        histories[key] = BlockHistory(
            mean_rate=rate, observed_count=int(rate * WEEK),
            training_seconds=WEEK, median_gap=1.0 / rate,
            p95_gap=3.0 / rate, max_gap=5.0 / rate,
            burstiness=1.0 + (index % 4) * 0.5,
            diurnal_profile=diurnal, weekly_profile=weekly)
        parameters[key] = BlockParameters(
            bin_seconds=bin_seconds,
            p_empty_up=float(np.exp(-rate * bin_seconds)),
            noise_nonempty=1e-4, prior_down=0.01,
            prior_up_recovery=0.05)
        count = rng.poisson(rate * WEEK)
        times_list.append(rng.uniform(0.0, WEEK, count))
        keys_list.append(np.full(count, key, dtype=np.int64))
    times = np.concatenate(times_list)
    keys = np.concatenate(keys_list)
    order = np.argsort(times, kind="stable")
    observations = [
        Observation(float(t), Family.IPV4, int(k) << 8)
        for t, k in zip(times[order], keys[order])
    ]
    return histories, parameters, observations


def _timed_streaming_run(histories, parameters, observations, columnar):
    """Drive one engine over the weeklong stream; return the summed
    wall time of the ``advance`` calls (= streaming bin-close time,
    since the packet feed between grid points closes zero bins) and
    the detector for equivalence checks."""
    import time as _time

    from repro.core.detector import StreamingDetector

    detector = StreamingDetector(Family.IPV4, histories, parameters, 0.0,
                                 sentinel=None, columnar=columnar)
    wall = 0.0
    i = 0
    total = len(observations)
    boundary = GRID_SECONDS
    while boundary <= WEEK:
        while i < total and observations[i].time <= boundary:
            detector.observe(observations[i])
            i += 1
        clock = _time.perf_counter()
        detector.advance(boundary)
        wall += _time.perf_counter() - clock
        boundary += GRID_SECONDS
    return wall, detector


def test_bench_columnar_bin_close_speedup(belief_population):
    """The tentpole gate: columnar batched bin closes must beat the
    scalar per-block loop by >= 5x on the weeklong synthetic — while
    producing bit-identical detector state."""
    from repro.core.checkpoint import detector_to_json

    histories, parameters, observations = belief_population
    scalar_wall, scalar_det = _timed_streaming_run(
        histories, parameters, observations, columnar=False)
    columnar_wall, columnar_det = _timed_streaming_run(
        histories, parameters, observations, columnar=True)

    assert detector_to_json(scalar_det) == detector_to_json(columnar_det)
    assert scalar_det.windows_closed == columnar_det.windows_closed

    speedup = scalar_wall / columnar_wall
    payload = {
        "blocks": len(parameters),
        "bins_closed": scalar_det.windows_closed,
        "before": {"engine": "scalar", "bin_close_seconds": scalar_wall},
        "after": {"engine": "columnar",
                  "bin_close_seconds": columnar_wall},
        "speedup": speedup,
        "floor": BELIEF_SPEEDUP_FLOOR,
    }
    save_belief_artefact("streaming_bin_close", payload)
    print(f"\nstreaming bin close: scalar {scalar_wall:.3f}s, columnar "
          f"{columnar_wall:.3f}s, speedup {speedup:.1f}x "
          f"({scalar_det.windows_closed} bins, {len(parameters)} blocks)")
    assert speedup >= BELIEF_SPEEDUP_FLOOR, (
        f"columnar bin close speedup {speedup:.2f}x under the "
        f"{BELIEF_SPEEDUP_FLOOR}x floor")


def test_bench_tune_batch_speedup(belief_population):
    """The tune-stage gate: ``plan_batch`` must beat the per-block
    ``plan`` loop by >= 5x — while planning identical parameters."""
    import time as _time

    from repro.core.parameters import ParameterPlanner

    histories, _, _ = belief_population
    planner = ParameterPlanner()

    # Best-of-N on both sides: the tune stage is milliseconds, so one
    # scheduler hiccup would otherwise decide the gate.
    scalar_wall = float("inf")
    for _ in range(5):
        clock = _time.perf_counter()
        scalar_planned = planner.plan(histories)
        scalar_wall = min(scalar_wall, _time.perf_counter() - clock)

    batch_wall = float("inf")
    for _ in range(5):
        clock = _time.perf_counter()
        batch_planned, batch_errors = planner.plan_batch(histories)
        batch_wall = min(batch_wall, _time.perf_counter() - clock)

    assert not batch_errors
    assert batch_planned == scalar_planned

    speedup = scalar_wall / batch_wall
    payload = {
        "blocks": len(histories),
        "before": {"engine": "plan_block loop",
                   "tune_seconds": scalar_wall},
        "after": {"engine": "plan_batch", "tune_seconds": batch_wall},
        "speedup": speedup,
        "floor": BELIEF_SPEEDUP_FLOOR,
    }
    save_belief_artefact("tune", payload)
    print(f"\ntune: scalar {scalar_wall:.3f}s, batched {batch_wall:.3f}s, "
          f"speedup {speedup:.1f}x ({len(histories)} blocks)")
    assert speedup >= BELIEF_SPEEDUP_FLOOR, (
        f"plan_batch speedup {speedup:.2f}x under the "
        f"{BELIEF_SPEEDUP_FLOOR}x floor")

"""Figure 2b: coverage relative to the best prior system per family.

Paper: our IPv4 coverage is ~19.6 % of Trinocular's 5.1 M probeable
/24s; our IPv6 coverage is ~17 % of the Gasser hitlist's 74,373 /48s —
similar fractions for both families.
"""

from repro.experiments import run_figure2b


def test_bench_figure2b(benchmark, bench_scale):
    result = benchmark.pedantic(run_figure2b, kwargs={"scale": bench_scale},
                                rounds=1, iterations=1)
    print()
    print(result.text)
    print("  [paper: IPv4 19.6% of Trinocular, IPv6 17% of Gasser]")
    assert 0.10 < result.ipv4.fraction_of_prior < 0.35
    assert 0.10 < result.ipv6.fraction_of_prior < 0.35
    # the two families land in the same coverage band
    ratio = result.ipv4.fraction_of_prior / result.ipv6.fraction_of_prior
    assert 0.5 < ratio < 2.5

"""Ablation bench: sensitivity of the tuning target.

The empty-bin target is the reproduction's one free parameter; the
sweep must show the default on a plateau (metrics move smoothly, no
knife edge) with the expected coverage/quality trade direction.
"""

from repro.experiments import run_sensitivity


def test_bench_sensitivity(benchmark, bench_scale):
    result = benchmark.pedantic(run_sensitivity,
                                kwargs={"scale": bench_scale},
                                rounds=1, iterations=1)
    print()
    print(result.text)
    coverages = [coverage for _, coverage, _, _ in result.rows]
    precisions = [precision for _, _, precision, _ in result.rows]
    # Looser targets (listed first) admit more blocks.
    assert coverages == sorted(coverages, reverse=True)
    # Precision stays on a plateau across the whole sweep.
    assert max(precisions) - min(precisions) < 0.005
    assert min(precisions) > 0.995

"""Figure 1: trading temporal precision for coverage.

Paper: coverage rises with the time-bin size, reaching ~90 % of
observed B-root blocks at coarse bins; dense blocks keep better
precision than sparse ones.
"""

from repro.experiments import run_figure1
from repro.traffic.rates import DensityClass


def test_bench_figure1(benchmark, bench_scale):
    result = benchmark.pedantic(run_figure1, kwargs={"scale": bench_scale},
                                rounds=1, iterations=1)
    print()
    print(result.text)
    coverages = [point.coverage for point in result.points]
    assert coverages == sorted(coverages), "coverage must grow with bin size"
    assert result.coverage_at_coarsest > 0.8
    assert result.coverage_at_finest < 0.5
    dense = result.precision_by_density[DensityClass.DENSE]
    sparse = result.precision_by_density[DensityClass.SPARSE]
    assert dense.tnr > sparse.tnr

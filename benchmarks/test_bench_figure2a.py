"""Figure 2a: outage rate, IPv4 vs IPv6.

Paper: 167,851 measurable IPv4 /24s of which 5.5 % have a >= 10-minute
outage; 11,918 measurable IPv6 /48s of which 12 % do.  The claim is the
*ordering*: the IPv6 outage rate exceeds IPv4's while IPv4 dominates in
absolute measurable blocks.
"""

from repro.experiments import run_figure2a


def test_bench_figure2a(benchmark, bench_scale):
    result = benchmark.pedantic(run_figure2a, kwargs={"scale": bench_scale},
                                rounds=1, iterations=1)
    print()
    print(result.text)
    print("  [paper: IPv4 167,851 measurable @ 5.5%; "
          "IPv6 11,918 measurable @ 12%]")
    assert result.ipv4.measurable_blocks > 5 * result.ipv6.measurable_blocks
    assert result.ipv6.outage_rate > result.ipv4.outage_rate
    assert 0.02 < result.ipv4.outage_rate < 0.10
    assert 0.05 < result.ipv6.outage_rate < 0.20

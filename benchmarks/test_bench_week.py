"""Validation bench: the paper's seven-day operating window.

Paper: "We compare seven days (2019-01-09 to 2019-01-15)".  The
confusion metrics must hold up day after day under the rolling
drift-refresh loop, not just on the calibrated single day.
"""

from repro.experiments import run_week_validation


def test_bench_week_validation(benchmark, bench_scale):
    result = benchmark.pedantic(run_week_validation,
                                kwargs={"scale": bench_scale},
                                rounds=1, iterations=1)
    print()
    print(result.text)
    assert result.worst_precision > 0.995
    for _, confusion in result.daily:
        assert confusion.tnr > 0.4

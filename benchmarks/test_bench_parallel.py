"""Sharded pipeline speedup benchmark: 4 workers vs 1.

Not a paper artefact — this pins the performance contract of the
``repro.parallel`` subsystem: on a machine with at least four cores,
detecting a synthetic weeklong population with ``workers=4`` must beat
the identical sharded run at ``workers=1`` by at least 1.5x.  Both
sides execute the *same* shard plan (same chunk size over the same
sorted keyspace), so the comparison isolates the process pool itself:
pickling payloads out, spawning workers, and folding shard documents
back in.  The equivalence contract (bit-for-bit identical output) is
pinned separately by ``tests/test_parallel.py``; this file asserts the
parallelism is worth its overhead.

On hosts with fewer than four CPUs the speedup assertion is skipped —
a spawn pool cannot beat in-process execution without spare cores —
but the timings are still printed and written to the artefact, so a
constrained runner still documents what it measured.

``pytest benchmarks/test_bench_parallel.py -s`` prints the measured
timings, and CI saves them as the ``BENCH_parallel.json`` artefact.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core.pipeline import PassiveOutagePipeline
from repro.net.addr import Family

WEEK = 7 * 86400.0
N_BLOCKS = 1536
SHARD_CHUNK = 48          # 32 shards: divides evenly across 4 workers
POOL_WORKERS = 4
REPEATS = 2               # best-of-N; spawn cost is paid on every run
MIN_SPEEDUP = 1.5


def poisson_times(rng, rate, start, end):
    n = rng.poisson(rate * (end - start))
    return np.sort(rng.uniform(start, end, n))


@pytest.fixture(scope="module")
def weeklong():
    """A trained model plus one simulated week of traffic to detect on.

    1,536 blocks with rates cycling over a decade — enough belief-pass
    and event-refinement work per shard that the pool's spawn cost is
    noise against the compute, as it would be against a real telescope
    day.
    """
    rng = np.random.default_rng(23)
    per_block = {k << 8: poisson_times(rng, 0.01 + 0.0005 * (k % 96),
                                       0.0, WEEK)
                 for k in range(N_BLOCKS)}
    trainer = PassiveOutagePipeline(aggregation_levels=0, workers=0)
    model = trainer.train(Family.IPV4, per_block, 0.0, WEEK)
    return model, per_block


def timed_detect(model, per_block, workers):
    """Best-of-N wall time for one sharded detect at ``workers``."""
    pipeline = PassiveOutagePipeline(
        aggregation_levels=0, workers=workers, shard_chunk=SHARD_CHUNK)
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = pipeline.detect(model, per_block, 0.0, WEEK)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_four_workers_beat_one_by_1_5x(weeklong):
    """Time the identical shard plan at workers=1 and workers=4."""
    model, per_block = weeklong
    single_s, single = timed_detect(model, per_block, 1)
    pooled_s, pooled = timed_detect(model, per_block, POOL_WORKERS)

    # Same plan, same verdicts: the pool changed nothing but the clock.
    assert pooled.blocks.keys() == single.blocks.keys()
    for key in single.blocks:
        assert pooled.blocks[key].timeline == single.blocks[key].timeline

    speedup = single_s / pooled_s if pooled_s > 0 else float("inf")
    cores = os.cpu_count() or 1
    timings = {
        "workload": f"sharded detect {N_BLOCKS} blocks x 1 week",
        "shard_chunk": SHARD_CHUNK,
        "repeats": REPEATS,
        "cpu_count": cores,
        "workers": POOL_WORKERS,
        "single_worker_best_seconds": single_s,
        "pooled_best_seconds": pooled_s,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "asserted": cores >= POOL_WORKERS,
    }
    print("\nparallel speedup:", json.dumps(timings, indent=2))
    artefact = os.environ.get("REPRO_BENCH_PARALLEL_OUT")
    if artefact:
        with open(artefact, "w", encoding="utf-8") as handle:
            json.dump(timings, handle, indent=2)
            handle.write("\n")

    if cores < POOL_WORKERS:
        pytest.skip(f"{cores} CPU(s): a {POOL_WORKERS}-worker pool cannot "
                    f"beat in-process execution without spare cores")
    assert speedup >= MIN_SPEEDUP, (
        f"4-worker detect ran {pooled_s:.2f}s vs {single_s:.2f}s "
        f"single-worker ({speedup:.2f}x, need {MIN_SPEEDUP}x); "
        f"the shard pool no longer pays for its overhead")

"""Serving-plane delivery latency and overload benchmark.

Not a paper artefact — this pins the performance contract of the
``repro.serve`` subsystem along the two axes that matter for a
monitoring consumer:

* **fanout latency**: with N subscribers attached, the p99 wall-clock
  delay between an event's publication (``emitted_at``, stamped by the
  broker) and its arrival at a subscriber's socket must stay small —
  the event stream is the pager path;
* **overload**: when queries arrive faster than the admission budget,
  the plane sheds with fast 503s instead of queueing, so the p99 of
  *completed* requests stays bounded.  A serving plane whose p99
  explodes under overload has stopped shedding and started buffering.

``pytest benchmarks/test_bench_serve.py -s`` prints the measured
timings, and CI saves them as the ``BENCH_serve.json`` artefact.
"""

import json
import os
import threading
import time

from repro.net.blocks import Block
from repro.serve import (
    AdmissionConfig,
    BlockServingState,
    EventSpec,
    ServeConfig,
    ServingPlane,
    SyncServeClient,
)
from repro.serve.client import http_get

from conftest import BENCH_SCALE

V4 = Block.parse("0.0.0.0/0").family
EVENTS_PER_S = 200.0
PUBLISH_S = max(1.0, 2.0 * BENCH_SCALE)
SUBSCRIBER_SWEEP = [max(1, int(n * BENCH_SCALE)) for n in (2, 8, 32)]
SHED_THREADS = 4
SHED_REQUESTS = max(20, int(80 * BENCH_SCALE))  # per thread
#: generous CI-safe bound; interactive hosts measure low milliseconds.
SHED_P99_BOUND_S = 0.5


def quantile(samples, q):
    ordered = sorted(samples)
    return ordered[int(q * (len(ordered) - 1))] if ordered else float("nan")


def start_plane(**overrides):
    plane = ServingPlane(V4, ServeConfig(port=0, **overrides))
    plane.start()
    return plane


def measure_fanout(n_subscribers):
    """p99 publication-to-socket latency with N attached subscribers."""
    plane = start_plane()
    key = 0xC00002
    plane.publish({key: BlockServingState(up=True)}, watermark=0.0)
    latencies = [[] for _ in range(n_subscribers)]
    errors = []
    total_events = int(EVENTS_PER_S * PUBLISH_S)

    def consume(slot):
        try:
            with SyncServeClient("127.0.0.1", plane.port,
                                 timeout=30.0) as client:
                assert client.accepted
                for message in client.messages():
                    if message.get("type") != "event":
                        continue
                    latencies[slot].append(
                        time.monotonic() - message["emitted_at"])
                    if message["seq"] >= total_events:
                        return
        except Exception as error:  # surfaced after join
            errors.append((slot, error))

    threads = [threading.Thread(target=consume, args=(slot,), daemon=True)
               for slot in range(n_subscribers)]
    for thread in threads:
        thread.start()
    while plane.subscriber_count < n_subscribers:
        time.sleep(0.01)

    # Pace publication in 20 ms batches; emitted_at is stamped on the
    # loop thread at fanout, so client-side deltas are pure delivery.
    batch = max(1, int(EVENTS_PER_S * 0.02))
    published = 0
    start = time.monotonic()
    while published < total_events:
        specs = [EventSpec(kind="onset" if (published + i) % 2 else
                           "recovery", time=float(published + i),
                           block=str(Block(V4, key, 24)), key=key)
                 for i in range(min(batch, total_events - published))]
        plane.emit(specs, watermark=float(published))
        published += len(specs)
        next_at = start + published / EVENTS_PER_S
        delay = next_at - time.monotonic()
        if delay > 0:
            time.sleep(delay)
    for thread in threads:
        thread.join(timeout=30.0)
    plane.stop(drain=False)
    assert not errors, errors
    flat = [sample for per_sub in latencies for sample in per_sub]
    assert len(flat) == n_subscribers * total_events
    return {
        "subscribers": n_subscribers,
        "events_per_s": EVENTS_PER_S,
        "events": total_events,
        "deliveries": len(flat),
        "p50_ms": round(quantile(flat, 0.50) * 1e3, 3),
        "p99_ms": round(quantile(flat, 0.99) * 1e3, 3),
        "max_ms": round(max(flat) * 1e3, 3),
    }


def measure_shedding():
    """Request p99 while hammering past the admission budget."""
    plane = start_plane(admission=AdmissionConfig(shed_qps=50.0,
                                                  shed_burst=10.0,
                                                  salt="bench"))
    plane.publish({0xC00002: BlockServingState(up=True)}, watermark=0.0)
    outcomes = []  # (status, seconds) per completed request
    lock = threading.Lock()

    def hammer():
        for _ in range(SHED_REQUESTS):
            begin = time.monotonic()
            status, _, _ = http_get("127.0.0.1", plane.port,
                                    "/v1/state?address=192.0.2.1")
            elapsed = time.monotonic() - begin
            with lock:
                outcomes.append((status, elapsed))

    threads = [threading.Thread(target=hammer) for _ in range(SHED_THREADS)]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - start
    plane.stop(drain=False)

    served = [seconds for status, seconds in outcomes if status == 200]
    shed = [seconds for status, seconds in outcomes if status == 503]
    assert served and shed, (
        f"overload run must both serve and shed "
        f"({len(served)} served, {len(shed)} shed)")
    all_p99 = quantile([seconds for _, seconds in outcomes], 0.99)
    return {
        "threads": SHED_THREADS,
        "requests": len(outcomes),
        "offered_qps": round(len(outcomes) / wall, 1),
        "admitted": len(served),
        "shed": len(shed),
        "served_p99_ms": round(quantile(served, 0.99) * 1e3, 3),
        "shed_p99_ms": round(quantile(shed, 0.99) * 1e3, 3),
        "all_p99_ms": round(all_p99 * 1e3, 3),
        "p99_bound_ms": SHED_P99_BOUND_S * 1e3,
    }


def test_serve_fanout_and_shedding_latency():
    fanout = [measure_fanout(n) for n in SUBSCRIBER_SWEEP]
    shedding = measure_shedding()
    timings = {
        "workload": (f"event fanout {EVENTS_PER_S:.0f}/s x "
                     f"{PUBLISH_S:.1f}s; overload {SHED_THREADS} "
                     f"threads vs 50 qps budget"),
        "bench_scale": BENCH_SCALE,
        "fanout": fanout,
        "shedding": shedding,
    }
    print("\nserving plane latency:", json.dumps(timings, indent=2))
    artefact = os.environ.get("REPRO_BENCH_SERVE_OUT")
    if artefact:
        with open(artefact, "w", encoding="utf-8") as handle:
            json.dump(timings, handle, indent=2)
            handle.write("\n")

    # Shedding keeps p99 bounded: the 503s are cheap refusals, so even
    # 4x the admission budget cannot drag completed-request latency.
    assert shedding["all_p99_ms"] <= SHED_P99_BOUND_S * 1e3, (
        f"p99 {shedding['all_p99_ms']:.1f}ms over the "
        f"{SHED_P99_BOUND_S * 1e3:.0f}ms bound under overload — the "
        f"plane is queueing instead of shedding")
    # Delivery latency must not collapse with fanout width: the widest
    # sweep still delivers within the same order of magnitude.
    assert fanout[-1]["p99_ms"] < 250.0, fanout[-1]

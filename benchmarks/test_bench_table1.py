"""Table 1: long-duration outage confusion matrix vs Trinocular.

Paper: precision 0.9999, recall 0.9985, TNR 0.84178 (seconds).
"""

from repro.experiments import run_table1


def test_bench_table1(benchmark, bench_scale):
    result = benchmark.pedantic(run_table1, kwargs={"scale": bench_scale},
                                rounds=1, iterations=1)
    print()
    print(result.text)
    print(f"  [paper: precision {result.paper['precision']}, "
          f"recall {result.paper['recall']}, tnr {result.paper['tnr']}]")
    confusion = result.confusion
    assert confusion.precision > 0.995
    assert confusion.recall > 0.99
    assert 0.7 < confusion.tnr <= 1.0
